//! Program loading and simulation drivers.
//!
//! A [`Machine`] couples architectural state (CPU + memory) with the
//! [`TimingCore`]. Three drivers are provided:
//!
//! * [`Machine::run_functional`] — fast architectural execution only
//!   (SystemSim's "turbo mode");
//! * [`Machine::run_timed`] — full timing simulation;
//! * [`Machine::run_sampled`] — SMARTS-style uniform sampling: long
//!   functional fast-forward, a timed warm-up whose counters are
//!   discarded, and a short measured window, repeated across the program
//!   (the paper's Section V methodology).
//!
//! Guest misbehaviour — an undecodable word, an out-of-bounds or
//! misaligned access — surfaces as a typed [`Trap`] carrying the faulting
//! PC and cycle; a runaway kernel is cut off by the configurable
//! [`Watchdog`] and reported as a graceful [`StopReason::Watchdog`]
//! outcome. Neither path panics, which is what the fault-injection
//! harness ([`crate::fault`]) relies on. [`Machine::checkpoint`] /
//! [`Machine::restore`] serialize the complete simulation state for
//! bit-exact resume.

#![deny(clippy::unwrap_used)]

use crate::config::CoreConfig;
use crate::core::{CoreState, Retired, StaticTiming, TimingCore};
use crate::counters::{ClassCounts, Counters, StallBreakdown};
use crate::fuse::{self, DriveStop as FuseDriveStop, FusedCache, FusionStats};
use crate::oracle::{Divergence, Lockstep, LockstepMode};
use crate::telemetry::GuestProfiler;
use crate::trace::{self, JsonlSink, PipeViewSink, RingSink, SymbolMap, Tracer};
use ppc_isa::exec::MemFault;
use ppc_isa::reg::CondReg;
use ppc_isa::{decode, step, CpuState, Instruction, Memory};
use std::fmt;

/// Which watchdog budget expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogKind {
    /// The cycle budget (timed runs only).
    Cycles,
    /// The committed-instruction budget.
    Instructions,
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `trap`.
    Halted,
    /// The instruction budget passed to the run call was exhausted.
    Budget,
    /// A [`Watchdog`] budget expired — the graceful "Timeout" outcome for
    /// runaway kernels; counters and heatmaps remain readable.
    Watchdog(WatchdogKind),
    /// The lockstep oracle caught the fast path disagreeing with the
    /// reference semantics; the [`Divergence`] record is available from
    /// [`Machine::take_divergence`]. Only possible when a
    /// non-[`LockstepMode::Off`] mode is installed.
    Diverged,
}

/// Result of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Instructions executed during this call.
    pub executed: u64,
    /// Whether the program hit `trap`.
    pub halted: bool,
    /// Why the run returned.
    pub stop: StopReason,
}

/// What raised a [`Trap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapCause {
    /// Data access fault (out-of-bounds or misaligned).
    Mem(MemFault),
    /// The PC points at a word that does not decode.
    BadInstruction,
    /// The PC itself is not 4-byte aligned, so there is no instruction
    /// word to decode in the first place.
    MisalignedFetch,
}

/// A program-check trap: the typed, recoverable outcome of guest
/// misbehaviour, reported with the faulting PC and the cycle it was
/// detected at (0 in functional mode, where no clock advances).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trap {
    /// What went wrong.
    pub cause: TrapCause,
    /// The PC of the faulting instruction.
    pub pc: u32,
    /// Cycle count when the trap was detected.
    pub cycle: u64,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.cause {
            TrapCause::Mem(m) => {
                write!(f, "trap at pc {:#010x}, cycle {}: {m}", self.pc, self.cycle)
            }
            TrapCause::BadInstruction => {
                write!(
                    f,
                    "trap at pc {:#010x}, cycle {}: undecodable instruction",
                    self.pc, self.cycle
                )
            }
            TrapCause::MisalignedFetch => {
                write!(
                    f,
                    "trap at pc {:#010x}, cycle {}: misaligned fetch address",
                    self.pc, self.cycle
                )
            }
        }
    }
}

impl std::error::Error for Trap {}

/// Cycle/instruction watchdog budgets. `None` disables a budget. The
/// cycle budget is only checked in timed runs (functional mode has no
/// clock); the instruction budget counts instructions executed across
/// *all* run calls on the machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Watchdog {
    /// Stop once the cycle counter passes this value.
    pub max_cycles: Option<u64>,
    /// Stop once the lifetime instruction count passes this value.
    pub max_instructions: Option<u64>,
}

/// SMARTS-style sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Distance between measurement windows, in instructions.
    pub period: u64,
    /// Timed warm-up instructions before each window (counters discarded).
    pub warmup: u64,
    /// Measured instructions per window.
    pub detail: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig { period: 100_000, warmup: 2_000, detail: 1_000 }
    }
}

/// Estimates produced by a sampled run.
#[derive(Debug, Clone)]
pub struct SampledRun {
    /// Counters accumulated over the measured windows only.
    pub measured: Counters,
    /// Total instructions executed (all modes).
    pub total_instructions: u64,
    /// Estimated total cycles (measured CPI × total instructions).
    pub estimated_cycles: u64,
    /// Whether the program halted.
    pub halted: bool,
    /// Why the run returned.
    pub stop: StopReason,
}

impl SampledRun {
    /// The IPC estimate from the measured windows.
    pub fn ipc(&self) -> f64 {
        self.measured.ipc()
    }
}

/// A region of PCs attributed to one function for profiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRegion {
    /// Function name.
    pub name: String,
    /// First byte address (inclusive).
    pub start: u32,
    /// Last byte address (exclusive).
    pub end: u32,
}

/// Per-function attribution state: the regions and, for each, the
/// `(cycles, instructions)` charged so far.
type ProfileState = (Vec<ProfileRegion>, Vec<(u64, u64)>);

/// Checkpoint memory-page granularity: all-zero pages are elided.
const PAGE: usize = 4096;

/// Complete serializable simulation state, produced by
/// [`Machine::checkpoint`] and reinstalled by [`Machine::restore`].
/// Resuming from a checkpoint is bit-exact: a run of `N` instructions
/// equals a run of `k`, a checkpoint/restore, and a run of `N - k`.
///
/// The tracer and symbol table are deliberately excluded (live I/O and
/// presentation-only data); the restoring machine keeps its own.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// FNV-1a digest of the [`CoreConfig`], guarding against restoring
    /// into a differently-configured machine.
    pub config_digest: u64,
    /// General-purpose registers.
    pub gpr: [u32; 32],
    /// Condition register.
    pub cr: u32,
    /// Link register.
    pub lr: u32,
    /// Count register.
    pub ctr: u32,
    /// Program counter.
    pub pc: u32,
    /// Simulated memory size in bytes.
    pub mem_size: usize,
    /// Sparse memory image: `(base_address, bytes)` per nonzero 4 KiB page.
    pub pages: Vec<(u32, Vec<u8>)>,
    /// Base address of the pre-decoded code region.
    pub code_base: u32,
    /// Length of the decode table in words (rebuilt on restore by
    /// re-decoding memory, so injected code faults survive the round
    /// trip).
    pub code_len: usize,
    /// Whether the program had halted.
    pub halted: bool,
    /// Lifetime committed-instruction count.
    pub insns_total: u64,
    /// Watchdog budgets in effect.
    pub watchdog: Watchdog,
    /// Per-function attribution state, if profiling was enabled.
    pub profile: Option<ProfileState>,
    /// Last commit cycle charged to a profile region.
    pub last_commit_seen: u64,
    /// The timing core's complete microarchitectural state.
    pub core: CoreState,
}

/// FNV-1a digest of a core configuration's debug rendering; guards
/// [`Machine::restore`] against configuration mismatches.
pub fn config_digest(cfg: &CoreConfig) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{cfg:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sentinel stored in invalid decode slots. Never executed: the run
/// loops consult `run_len` first, and a zero run length routes to the
/// [`TrapCause::BadInstruction`] path without touching `decoded`.
const INVALID_SLOT: Instruction = Instruction::Trap;

/// Region-index sentinel: this code word belongs to no profile region.
const NO_REGION: u32 = u32::MAX;

/// Whether `insn` ends a straight-line run (control may leave the
/// fall-through path after it).
fn is_block_terminator(insn: &Instruction) -> bool {
    insn.is_branch() || matches!(insn, Instruction::Trap)
}

/// Build the dense decode table and the basic-block run-length table
/// from per-word decode results.
///
/// `run_len[i]` is the number of instructions that can be executed
/// starting at slot `i` before control can leave the fall-through path:
/// `0` marks an undecodable word, a branch or `trap` counts as `1`, and
/// a straight-line instruction extends the run that follows it. The run
/// loops use it to dispatch whole blocks without per-instruction fetch
/// checks; a zero is the illegal-instruction sentinel that keeps the
/// hit path free of `Option` tests.
fn code_tables(slots: &[Option<Instruction>]) -> (Vec<Instruction>, Vec<u32>) {
    let decoded: Vec<Instruction> = slots.iter().map(|s| s.unwrap_or(INVALID_SLOT)).collect();
    let mut run_len = vec![0u32; slots.len()];
    for i in (0..slots.len()).rev() {
        run_len[i] = match &slots[i] {
            None => 0,
            Some(insn) if is_block_terminator(insn) => 1,
            Some(_) => 1 + run_len.get(i + 1).copied().unwrap_or(0),
        };
    }
    (decoded, run_len)
}

/// Build the static timing sidecar and the per-class counter prefix sums
/// over the decoded image. `prefix[i]` holds the summed class counts of
/// slots `0..i`, so a block execution spanning slots `[i, i+n)` folds its
/// per-class counter increments with a single subtraction at block exit
/// instead of per-instruction increments.
fn timing_tables(decoded: &[Instruction]) -> (Vec<StaticTiming>, Vec<ClassCounts>) {
    let timing: Vec<StaticTiming> = decoded.iter().map(StaticTiming::of).collect();
    let mut prefix = Vec::with_capacity(decoded.len() + 1);
    let mut acc = ClassCounts::default();
    prefix.push(acc);
    for t in &timing {
        acc.add(&t.class_counts());
        prefix.push(acc);
    }
    (timing, prefix)
}

/// A loaded program plus simulation state.
pub struct Machine {
    cpu: CpuState,
    mem: Memory,
    core: TimingCore,
    /// Pre-decoded image (indexed by `(pc - base) / 4`). Invalid words
    /// hold [`INVALID_SLOT`] and are guarded by a zero in `run_len`, so
    /// the fetch hit path reads the instruction with no `Option` test.
    decoded: Vec<Instruction>,
    /// Straight-line run length per slot (see [`code_tables`]); `0`
    /// marks an undecodable word.
    run_len: Vec<u32>,
    /// Static timing sidecar, parallel to `decoded` (see
    /// [`StaticTiming`]); rebuilt together with the decode table.
    timing: Vec<StaticTiming>,
    /// Per-class counter prefix sums over the image (see
    /// [`timing_tables`]); `decoded.len() + 1` entries.
    class_prefix: Vec<ClassCounts>,
    code_base: u32,
    halted: bool,
    /// Optional per-function cycle/instruction attribution.
    profile: Option<ProfileState>,
    /// Dense per-code-word region index ([`NO_REGION`] = unattributed);
    /// rebuilt whenever the regions or the code image change.
    region_index: Vec<u32>,
    last_commit_seen: u64,
    /// Optional symbol table for symbolized heatmaps and trace dumps.
    symbols: Option<SymbolMap>,
    /// Instructions executed across all run calls (watchdog bookkeeping).
    insns_total: u64,
    watchdog: Watchdog,
    /// Lockstep oracle checker (`None` = [`LockstepMode::Off`]). Like
    /// the tracer, harness state: excluded from checkpoints.
    lockstep: Option<Lockstep>,
    /// Guest sampling profiler (`None` = disabled; one pointer test per
    /// retired block). Harness state: excluded from checkpoints.
    profiler: Option<Box<GuestProfiler>>,
    /// Lazily-compiled fused superinstruction blocks (DESIGN §16),
    /// parallel to `decoded`. Derived state: cleared whenever the
    /// decode table changes and excluded from checkpoints.
    fused: FusedCache,
    /// Whether `run_functional` dispatches through the fused
    /// direct-threaded tier (on by default; [`Machine::set_fusion`]).
    fusion_enabled: bool,
    /// Fusion-bug injection hook: PC of a pair's second constituent to
    /// compile deliberately wrong ([`Machine::inject_fusion_bug`]).
    fusion_sabotage: Option<u32>,
}

impl Machine {
    /// Create a machine with `image` loaded at `base`, starting execution
    /// at `entry`, with `mem_size` bytes of simulated memory.
    ///
    /// The image is pre-decoded at load time; executing self-modifying
    /// code is not supported.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit below `mem_size`. Production
    /// callers that load untrusted layouts should use
    /// [`Machine::try_new`].
    pub fn new(cfg: CoreConfig, image: &[u8], base: u32, entry: u32, mem_size: usize) -> Self {
        Self::try_new(cfg, image, base, entry, mem_size)
            .expect("program image must fit in simulated memory")
    }

    /// Like [`Machine::new`], but an image that does not fit in memory is
    /// reported as a typed [`MemFault`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns the out-of-bounds [`MemFault`] when the image does not fit
    /// below `mem_size`.
    pub fn try_new(
        cfg: CoreConfig,
        image: &[u8],
        base: u32,
        entry: u32,
        mem_size: usize,
    ) -> Result<Self, MemFault> {
        let mut mem = Memory::new(mem_size);
        mem.write_bytes(base, image)?;
        let slots: Vec<Option<Instruction>> = image
            .chunks(4)
            .map(|c| {
                if c.len() == 4 {
                    decode(u32::from_le_bytes(c.try_into().expect("4 bytes"))).ok()
                } else {
                    None
                }
            })
            .collect();
        let (decoded, run_len) = code_tables(&slots);
        let (timing, class_prefix) = timing_tables(&decoded);
        let mut core = TimingCore::new(cfg);
        core.set_code_region(base, decoded.len());
        let fused = FusedCache::new(decoded.len());
        Ok(Machine {
            cpu: CpuState::new(entry),
            mem,
            core,
            decoded,
            run_len,
            timing,
            class_prefix,
            code_base: base,
            halted: false,
            profile: None,
            region_index: Vec::new(),
            last_commit_seen: 0,
            symbols: None,
            insns_total: 0,
            watchdog: Watchdog::default(),
            lockstep: None,
            profiler: None,
            fused,
            fusion_enabled: true,
            fusion_sabotage: None,
        })
    }

    /// Install a guest sampling profiler attributing one sample per
    /// `period` retired instructions to the retiring basic block's start
    /// PC (see [`GuestProfiler`]). Replaces any previous profiler.
    /// Profiler state is harness state — like the tracer and the
    /// lockstep oracle it is excluded from [`Machine::checkpoint`].
    pub fn set_sampling_profiler(&mut self, period: u64) {
        self.profiler = Some(Box::new(GuestProfiler::new(period)));
        // Hammock superinstructions change profiler block boundaries,
        // so they are only legal while no profiler is attached; drop
        // any blocks compiled under the other setting.
        self.fused.clear();
    }

    /// Remove and return the sampling profiler, disabling sampling and
    /// restoring the untouched fast paths.
    pub fn take_profiler(&mut self) -> Option<Box<GuestProfiler>> {
        self.fused.clear();
        self.profiler.take()
    }

    /// The installed sampling profiler, if any.
    pub fn profiler(&self) -> Option<&GuestProfiler> {
        self.profiler.as_deref()
    }

    /// Install a lockstep verification mode (see [`LockstepMode`]).
    /// [`LockstepMode::Off`] removes the checker entirely, restoring the
    /// untouched fast run loops; any previously recorded divergence is
    /// discarded.
    pub fn set_lockstep(&mut self, mode: LockstepMode) {
        self.lockstep = Lockstep::new(mode);
    }

    /// The active lockstep mode.
    pub fn lockstep_mode(&self) -> LockstepMode {
        self.lockstep.as_ref().map_or(LockstepMode::Off, Lockstep::mode)
    }

    /// Remove and return the divergence recorded by the last run that
    /// stopped with [`StopReason::Diverged`].
    pub fn take_divergence(&mut self) -> Option<Divergence> {
        self.lockstep.as_mut().and_then(Lockstep::take_divergence)
    }

    /// Install `insn` in the pre-decoded table at `pc` *without*
    /// touching the backing memory — a model of a fast-path pre-decode
    /// defect (the class of bug the lockstep oracle exists to catch:
    /// the oracle fetches and decodes the raw memory word, so it sees
    /// the correct instruction while the fast path executes the wrong
    /// one). Returns `false` when `pc` is outside the code region.
    ///
    /// Note that [`Machine::restore`] rebuilds the decode table from
    /// memory and therefore silently repairs an injected decode bug;
    /// triage flows must re-apply it after every restore (see
    /// [`crate::oracle::shrink_divergence`]).
    pub fn inject_decode_bug(&mut self, pc: u32, insn: Instruction) -> bool {
        let idx = pc.wrapping_sub(self.code_base) as usize / 4;
        if !pc.is_multiple_of(4) || idx >= self.decoded.len() {
            return false;
        }
        self.patch_code_slot(idx, Some(insn));
        true
    }

    /// Enable or disable the fused direct-threaded functional tier
    /// (DESIGN §16). On by default; disabling falls back to the scalar
    /// per-instruction block loop, which is architecturally identical —
    /// the toggle exists for A/B throughput measurement and for the
    /// fusion-legality tests. Compiled blocks are dropped on any
    /// change of setting.
    pub fn set_fusion(&mut self, enabled: bool) {
        if self.fusion_enabled != enabled {
            self.fused.clear();
        }
        self.fusion_enabled = enabled;
    }

    /// Whether the fused functional tier is enabled.
    pub fn fusion_enabled(&self) -> bool {
        self.fusion_enabled
    }

    /// Fused-tier throughput counters accumulated across run calls
    /// (unchecked functional runs; the lockstep-checked loop verifies
    /// fused ops but does not count toward these).
    pub fn fusion_stats(&self) -> FusionStats {
        self.fused.stats()
    }

    /// Compile the fusion pair whose *second* constituent sits at `pc`
    /// deliberately wrong — a `cmp`+branch pair gets its branch sense
    /// inverted, a `cmp`+`isel` pair gets its select arms swapped —
    /// modelling a broken fusion rule for the lockstep oracle to catch
    /// (the fused-tier analogue of [`Machine::inject_decode_bug`]).
    /// Returns `false` when `pc` is outside the code region.
    ///
    /// Like a decode bug, [`Machine::restore`] silently repairs it
    /// (the cache is rebuilt clean); triage flows must re-apply it
    /// after every restore.
    pub fn inject_fusion_bug(&mut self, pc: u32) -> bool {
        let idx = pc.wrapping_sub(self.code_base) as usize / 4;
        if !pc.is_multiple_of(4) || idx >= self.decoded.len() {
            return false;
        }
        self.fusion_sabotage = Some(pc);
        self.fused.clear();
        true
    }

    /// Install watchdog budgets (see [`Watchdog`]). A budget that is
    /// already exceeded makes the next run call return immediately with
    /// [`StopReason::Watchdog`].
    pub fn set_watchdog(&mut self, watchdog: Watchdog) {
        self.watchdog = watchdog;
    }

    /// The active watchdog budgets.
    pub fn watchdog(&self) -> Watchdog {
        self.watchdog
    }

    /// Instructions executed across all run calls on this machine.
    pub fn insns_total(&self) -> u64 {
        self.insns_total
    }

    /// Split borrow of the architectural state for the lane gang
    /// (DESIGN §18): the gang steps `cpu`/`mem` op-major across lanes
    /// while the decode tables and fused cache stay shared gang-side.
    #[inline]
    pub(crate) fn lane_state(&mut self) -> (&mut CpuState, &mut Memory) {
        (&mut self.cpu, &mut self.mem)
    }

    /// The derived tables a gang shares across lanes: decode table,
    /// run-length sidecar, and the code base address.
    pub(crate) fn lane_tables(&self) -> (&[Instruction], &[u32], u32) {
        (&self.decoded, &self.run_len, self.code_base)
    }

    /// Credit `n` gang-retired instructions to this lane's lifetime
    /// count, exactly as the scalar run loops do per block.
    #[inline]
    pub(crate) fn lane_note_retired(&mut self, n: u64) {
        self.insns_total += n;
    }

    /// Mark the lane halted (a `trap` retired inside the gang).
    #[inline]
    pub(crate) fn lane_set_halted(&mut self) {
        self.halted = true;
    }

    /// Why this machine cannot join a lane gang, if anything: the gang
    /// runs the unchecked fused path only, so per-instruction harness
    /// state (oracle, guest profiler, armed sabotage) forces the scalar
    /// path instead.
    pub(crate) fn lane_gang_blocker(&self) -> Option<&'static str> {
        if self.lockstep.is_some() {
            Some("lockstep oracle attached")
        } else if self.profiler.is_some() {
            Some("guest profiler attached")
        } else if self.fusion_sabotage.is_some() {
            Some("fusion sabotage armed")
        } else {
            None
        }
    }

    /// Enable per-function profiling over the given regions. Committed
    /// instructions and commit-cycle deltas are attributed to the region
    /// containing their PC.
    pub fn set_profile_regions(&mut self, regions: Vec<ProfileRegion>) {
        let n = regions.len();
        self.profile = Some((regions, vec![(0, 0); n]));
        self.rebuild_region_index();
    }

    /// Recompute the dense PC→region table from the active profile
    /// regions: one entry per code word, holding the index of the first
    /// region containing it (matching the linear first-match scan this
    /// table replaces on the retire path).
    fn rebuild_region_index(&mut self) {
        self.region_index = match &self.profile {
            None => Vec::new(),
            Some((regions, _)) => (0..self.decoded.len())
                .map(|i| {
                    let pc = self.code_base.wrapping_add((i as u32) * 4);
                    regions
                        .iter()
                        .position(|r| pc >= r.start && pc < r.end)
                        .map_or(NO_REGION, |p| p as u32)
                })
                .collect(),
        };
    }

    /// Profiling results as `(name, instructions, cycles)`, in region
    /// order. Empty when profiling was never enabled.
    pub fn profile_results(&self) -> Vec<(String, u64, u64)> {
        match &self.profile {
            None => Vec::new(),
            Some((regions, counts)) => {
                regions.iter().zip(counts).map(|(r, &(i, c))| (r.name.clone(), i, c)).collect()
            }
        }
    }

    /// Architectural CPU state.
    pub fn cpu(&self) -> &CpuState {
        &self.cpu
    }

    /// Mutable CPU state (for setting up kernel arguments in registers).
    pub fn cpu_mut(&mut self) -> &mut CpuState {
        &mut self.cpu
    }

    /// Simulated memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable simulated memory (for serializing workload inputs).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Timing counters accumulated so far.
    pub fn counters(&self) -> Counters {
        self.core.counters()
    }

    /// Whether the program has executed `trap`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Enable Figure-2-style interval sampling (committed instructions per
    /// sample point).
    pub fn set_interval_sampling(&mut self, insns: u64) {
        self.core.set_interval_sampling(insns);
    }

    /// Enable per-PC conditional-branch statistics.
    pub fn set_branch_site_profiling(&mut self, on: bool) {
        self.core.set_branch_site_profiling(on);
    }

    /// Per-PC branch statistics, sorted by mispredictions (largest first).
    /// Empty unless [`Machine::set_branch_site_profiling`] was enabled.
    pub fn branch_sites(&self) -> Vec<(u32, crate::core::BranchSite)> {
        self.core.branch_sites()
    }

    /// Enable per-PC attribution of every stall class (see
    /// [`crate::core::TimingCore::set_stall_site_profiling`]).
    pub fn set_stall_site_profiling(&mut self, on: bool) {
        self.core.set_stall_site_profiling(on);
    }

    /// Per-PC stall breakdowns, hottest site first. Empty unless
    /// [`Machine::set_stall_site_profiling`] was enabled.
    pub fn stall_sites(&self) -> Vec<(u32, StallBreakdown)> {
        self.core.stall_sites()
    }

    /// Install a symbol table (from `ppc-asm`'s `Assembled::symbol_table`)
    /// so heatmaps and trace dumps print `function+offset`.
    pub fn set_symbols(&mut self, symbols: SymbolMap) {
        self.symbols = Some(symbols);
    }

    /// The installed symbol table, if any.
    pub fn symbols(&self) -> Option<&SymbolMap> {
        self.symbols.as_ref()
    }

    /// Render the per-PC stall heatmap (top `top` sites), symbolized when a
    /// symbol table was installed. Empty output unless
    /// [`Machine::set_stall_site_profiling`] was enabled.
    pub fn stall_heatmap(&self, top: usize) -> String {
        trace::render_stall_heatmap(&self.stall_sites(), self.symbols.as_ref(), top)
    }

    /// Install a pipeline event tracer ([`Tracer::Off`] disables tracing).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.core.set_tracer(tracer);
    }

    /// Trace the last `n` committed instructions into a ring buffer
    /// (post-mortem dumps; replaces any previous tracer).
    pub fn trace_last(&mut self, n: usize) {
        self.core.set_tracer(Tracer::Ring(RingSink::new(n)));
    }

    /// Stream gem5-O3-pipeview-style text to `out` (replaces any previous
    /// tracer).
    pub fn trace_pipeview(&mut self, out: impl std::io::Write + 'static) {
        self.core.set_tracer(Tracer::PipeView(PipeViewSink::new(Box::new(out))));
    }

    /// Stream JSONL records to `out` (replaces any previous tracer).
    pub fn trace_jsonl(&mut self, out: impl std::io::Write + 'static) {
        self.core.set_tracer(Tracer::Jsonl(JsonlSink::new(Box::new(out))));
    }

    /// The active tracer.
    pub fn tracer(&self) -> &Tracer {
        self.core.tracer()
    }

    /// Mutable access to the active tracer (e.g. to flush it).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        self.core.tracer_mut()
    }

    /// Remove and return the active tracer, disabling tracing. Flush the
    /// returned tracer with [`Tracer::finish`] to surface deferred I/O
    /// errors.
    pub fn take_tracer(&mut self) -> Tracer {
        self.core.take_tracer()
    }

    /// Construct a [`Trap`] at `pc`, stamped with the core's current
    /// commit cycle (0 when no timed run has advanced the clock).
    fn trap(&self, cause: TrapCause, pc: u32) -> Trap {
        Trap { cause, pc, cycle: self.core.counters().cycles }
    }

    /// Whether the lifetime instruction budget has expired.
    fn insn_budget_expired(&self) -> bool {
        self.watchdog.max_instructions.is_some_and(|limit| self.insns_total >= limit)
    }

    /// Resolve `pc` against the dense pre-decoded table: the slot index
    /// and the straight-line run length starting there. Misalignment is
    /// checked *before* any index arithmetic and reported as its own
    /// [`TrapCause::MisalignedFetch`]; an in-range but undecodable word
    /// (run length `0`) and an out-of-image PC both stay
    /// [`TrapCause::BadInstruction`].
    #[inline]
    fn fetch_decode(&self, pc: u32) -> Result<(usize, u32), Trap> {
        if !pc.is_multiple_of(4) {
            return Err(self.trap(TrapCause::MisalignedFetch, pc));
        }
        let idx = (pc.wrapping_sub(self.code_base) / 4) as usize;
        match self.run_len.get(idx) {
            Some(&run) if run > 0 => Ok((idx, run)),
            _ => Err(self.trap(TrapCause::BadInstruction, pc)),
        }
    }

    /// How many instructions of a run of length `run` may execute before
    /// the caller's budget or the instruction watchdog must be rechecked.
    /// The watchdog was checked non-expired just before, so the remaining
    /// allowance is at least one instruction.
    #[inline]
    fn block_quota(&self, run: u32, remaining_budget: u64) -> u64 {
        let mut n = u64::from(run).min(remaining_budget);
        if let Some(limit) = self.watchdog.max_instructions {
            n = n.min(limit - self.insns_total);
        }
        n
    }

    /// Run functionally (no timing) for at most `max_insns` instructions.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on memory faults or undecodable instructions.
    pub fn run_functional(&mut self, max_insns: u64) -> Result<RunResult, Trap> {
        if self.lockstep.is_some() {
            // Lockstep checking runs in its own per-instruction loop so
            // this hot path stays untouched when the mode is Off.
            return self.run_functional_checked(max_insns);
        }
        let mut executed = 0;
        let mut stop = StopReason::Budget;
        'blocks: while executed < max_insns && !self.halted {
            if self.insn_budget_expired() {
                stop = StopReason::Watchdog(WatchdogKind::Instructions);
                break;
            }
            if self.fusion_enabled {
                // Fused direct-threaded tier (DESIGN §16): hand the PC
                // to the fused dispatch loop, which compiles blocks on
                // first dispatch and executes their superinstruction
                // arrays back to back without per-instruction fetch or
                // match. It returns for anything needing the slow path:
                // traps, halts, self-modifying stores, and blocks whose
                // full retire bound no longer fits the remaining
                // budget/watchdog allowance (those run scalar below, so
                // mid-block budget cuts land exactly where the scalar
                // loop puts them).
                let mut allowance = max_insns - executed;
                if let Some(limit) = self.watchdog.max_instructions {
                    allowance = allowance.min(limit - self.insns_total);
                }
                let Machine {
                    cpu,
                    mem,
                    fused,
                    decoded,
                    run_len,
                    profiler,
                    fusion_sabotage,
                    code_base,
                    ..
                } = &mut *self;
                let dr = fused.drive(
                    cpu,
                    mem,
                    decoded,
                    run_len,
                    *code_base,
                    profiler.is_none(),
                    *fusion_sabotage,
                    allowance,
                    profiler.as_deref_mut(),
                );
                executed += dr.executed;
                self.insns_total += dr.executed;
                match dr.stop {
                    FuseDriveStop::Fault(f) => {
                        // Like the scalar loop: prior retires stay
                        // counted in `insns_total`, no profiler flush,
                        // and the trap carries the faulting PC (already
                        // parked by the fused executor).
                        let pc = self.cpu.pc;
                        return Err(self.trap(TrapCause::Mem(f), pc));
                    }
                    FuseDriveStop::Halted => {
                        self.halted = true;
                        continue 'blocks;
                    }
                    FuseDriveStop::StoredCode { addr, width } => {
                        self.repair_stored_code(addr, width);
                        continue 'blocks;
                    }
                    FuseDriveStop::Refetch => {
                        if executed >= max_insns || self.insn_budget_expired() {
                            continue 'blocks;
                        }
                        self.fused.note_scalar_block();
                    }
                }
            }
            // Dispatch one straight-line block: within it the PC only
            // ever advances by 4 (the terminator, if any, is the last
            // instruction of the run), so fetch, alignment, and budget
            // checks are hoisted to the block boundary.
            let (idx, run) = self.fetch_decode(self.cpu.pc)?;
            let quota = self.block_quota(run, max_insns - executed);
            let block_pc = self.cpu.pc;
            let block_start = executed;
            for k in 0..quota as usize {
                let pc = self.cpu.pc;
                let insn = self.decoded[idx + k];
                let ev = step(&mut self.cpu, &mut self.mem, &insn)
                    .map_err(|m| self.trap(TrapCause::Mem(m), pc))?;
                executed += 1;
                self.insns_total += 1;
                if ev.halted {
                    self.halted = true;
                    break;
                }
                if let Some((addr, width, true)) = ev.mem {
                    if self.repair_stored_code(addr, width) {
                        // The decode tables just changed: drop the rest
                        // of the block quota and re-fetch at the
                        // already-advanced PC.
                        if let Some(p) = &mut self.profiler {
                            p.on_block(block_pc, (executed - block_start) as u32);
                        }
                        continue 'blocks;
                    }
                }
            }
            if let Some(p) = &mut self.profiler {
                p.on_block(block_pc, (executed - block_start) as u32);
            }
        }
        if self.halted {
            stop = StopReason::Halted;
        }
        Ok(RunResult { executed, halted: self.halted, stop })
    }

    /// Run with full timing for at most `max_insns` instructions.
    ///
    /// Dispatches to the block-batched retire loop when nothing requires
    /// per-instruction visits — no lockstep oracle, no per-function
    /// profiling, no cycle watchdog, no tracer, no interval sampling —
    /// and otherwise to the per-instruction reference loop
    /// ([`Machine::run_timed_pinned`]). Both paths drive the same
    /// pipeline scheduler and are cycle-exact to each other: identical
    /// counters, stall partitions, site heatmaps, and checkpoints.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on memory faults or undecodable instructions.
    pub fn run_timed(&mut self, max_insns: u64) -> Result<RunResult, Trap> {
        if self.lockstep.is_some() {
            // See `run_functional`: the checked loop is separate.
            return self.run_timed_checked(max_insns);
        }
        if self.profile.is_some()
            || self.watchdog.max_cycles.is_some()
            || self.core.needs_per_insn_retire()
        {
            return self.run_timed_pinned(max_insns);
        }
        self.run_timed_batched(max_insns)
    }

    /// The per-instruction timed loop: every retirement folds its own
    /// counters and runs its own watchdog/profiling checks. This is the
    /// reference the batched path must match bit-for-bit (the
    /// cycle-exactness tests pin one side of the comparison to it), and
    /// the fallback whenever a per-instruction observer is active. With a
    /// lockstep oracle installed it defers to the checked loop, exactly
    /// like [`Machine::run_timed`].
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on memory faults or undecodable instructions.
    pub fn run_timed_pinned(&mut self, max_insns: u64) -> Result<RunResult, Trap> {
        if self.lockstep.is_some() {
            return self.run_timed_checked(max_insns);
        }
        let mut executed = 0;
        let mut stop = StopReason::Budget;
        let max_cycles = self.watchdog.max_cycles;
        let profiling = self.profile.is_some();
        'blocks: while executed < max_insns && !self.halted {
            if self.insn_budget_expired() {
                stop = StopReason::Watchdog(WatchdogKind::Instructions);
                break;
            }
            // Block dispatch, as in `run_functional`; see there.
            let (idx, run) = self.fetch_decode(self.cpu.pc)?;
            let quota = self.block_quota(run, max_insns - executed);
            let block_pc = self.cpu.pc;
            let block_start = executed;
            for k in 0..quota as usize {
                let pc = self.cpu.pc;
                let insn = self.decoded[idx + k];
                let ev = step(&mut self.cpu, &mut self.mem, &insn)
                    .map_err(|m| self.trap(TrapCause::Mem(m), pc))?;
                let commit = self.core.retire(Retired { insn: &insn, pc, event: ev });
                if profiling {
                    self.attribute_profile(idx + k, commit);
                }
                executed += 1;
                self.insns_total += 1;
                if ev.halted {
                    self.halted = true;
                    break;
                }
                if max_cycles.is_some_and(|limit| commit >= limit) {
                    stop = StopReason::Watchdog(WatchdogKind::Cycles);
                    self.sample_block_timed(block_pc, executed - block_start);
                    break 'blocks;
                }
                if let Some((addr, width, true)) = ev.mem {
                    if self.repair_stored_code(addr, width) {
                        // See `run_functional`: re-fetch after the
                        // tables changed. The watchdog was already
                        // checked above, so stop ordering is identical.
                        self.sample_block_timed(block_pc, executed - block_start);
                        continue 'blocks;
                    }
                }
            }
            self.sample_block_timed(block_pc, executed - block_start);
        }
        if self.halted {
            stop = StopReason::Halted;
        }
        Ok(RunResult { executed, halted: self.halted, stop })
    }

    /// Feed one retired block to the sampling profiler (timed paths):
    /// the block's start PC, retired length, and the core's last commit
    /// cycle. A single `Option` test per block when disabled.
    #[inline]
    fn sample_block_timed(&mut self, block_pc: u32, len: u64) {
        if let Some(p) = &mut self.profiler {
            let commit = self.core.last_commit();
            p.on_block_timed(block_pc, len as u32, commit);
        }
    }

    /// Fold the per-class counters of `n` just-executed instructions from
    /// block slots `[idx, idx + n)` into the core via the sidecar's
    /// prefix sums. Must run against the same decode tables those
    /// instructions were executed from (i.e. *before* any repair).
    #[inline]
    fn flush_block_counts(&mut self, idx: usize, n: usize) {
        if n > 0 {
            let d = self.class_prefix[idx + n].minus(&self.class_prefix[idx]);
            self.core.flush_block(d);
        }
    }

    /// The block-batched timed loop. Each straight-line block retires
    /// through the precomputed [`StaticTiming`] sidecar; the per-class
    /// counter increments are folded once per block from the prefix sums
    /// (flushed early when a trap, a halt, or a self-modifying store cuts
    /// the block short), and budget/watchdog checks run once per block
    /// via the same quota logic as the other loops. Only entered when no
    /// per-instruction observer is active, so hoisting those checks
    /// cannot change observable behaviour.
    fn run_timed_batched(&mut self, max_insns: u64) -> Result<RunResult, Trap> {
        /// Why the block loop stopped before exhausting its quota.
        enum Cut {
            Quota,
            Halt,
            Fault(MemFault, u32),
            StoredCode(u32, u32),
        }
        let mut executed = 0;
        let mut stop = StopReason::Budget;
        while executed < max_insns && !self.halted {
            if self.insn_budget_expired() {
                stop = StopReason::Watchdog(WatchdogKind::Instructions);
                break;
            }
            let (idx, run) = self.fetch_decode(self.cpu.pc)?;
            let quota = self.block_quota(run, max_insns - executed) as usize;
            let block_pc = self.cpu.pc;
            // Code-region bounds for the self-modifying-store check
            // (`store_touches_code`, inlined), read before `self` is
            // split into disjoint field borrows below.
            let code_lo = u64::from(self.code_base);
            let code_hi = code_lo + (self.decoded.len() as u64) * 4;
            // Split borrows: `step` mutates cpu/mem while the decode and
            // timing tables are read in lockstep. Iterating the two
            // slices zipped (instead of indexing per instruction) drops
            // the bounds checks and the sidecar copy from the hot loop.
            let Machine { cpu, mem, core, decoded, timing, .. } = &mut *self;
            let mut n = 0usize;
            let mut cut = Cut::Quota;
            for (insn, st) in decoded[idx..idx + quota].iter().zip(&timing[idx..idx + quota]) {
                let pc = cpu.pc;
                let ev = match step(cpu, mem, insn) {
                    Ok(ev) => ev,
                    Err(m) => {
                        cut = Cut::Fault(m, pc);
                        break;
                    }
                };
                core.retire_batched(st, pc, ev);
                n += 1;
                if ev.halted {
                    cut = Cut::Halt;
                    break;
                }
                if st.is_store() {
                    if let Some((addr, width, true)) = ev.mem {
                        let lo = u64::from(addr);
                        let hi = lo + u64::from(width.max(1)) - 1;
                        if lo < code_hi && hi >= code_lo {
                            cut = Cut::StoredCode(addr, width);
                            break;
                        }
                    }
                }
            }
            // Fold the block's counters against the *pre-repair* prefix
            // sums (its instructions executed under the old tables — a
            // store may patch an earlier, already-executed slot of this
            // very block), and before any trap is constructed so the trap
            // is stamped with an up-to-date cycle count, exactly as the
            // per-instruction loop would produce.
            self.flush_block_counts(idx, n);
            self.insns_total += n as u64;
            self.sample_block_timed(block_pc, n as u64);
            match cut {
                Cut::Fault(m, pc) => return Err(self.trap(TrapCause::Mem(m), pc)),
                Cut::Halt => {
                    executed += n as u64;
                    self.halted = true;
                }
                Cut::StoredCode(addr, width) => {
                    executed += n as u64;
                    self.repair_stored_code(addr, width);
                }
                Cut::Quota => executed += n as u64,
            }
        }
        if self.halted {
            stop = StopReason::Halted;
        }
        Ok(RunResult { executed, halted: self.halted, stop })
    }

    /// Functional run with lockstep verification: per-instruction
    /// dispatch (no block hoisting — correctness checking, not speed),
    /// with every commit the sampler selects re-derived by the oracle
    /// and compared. Architecturally identical to [`Machine::run_functional`]
    /// up to the first divergence, which stops the run with
    /// [`StopReason::Diverged`].
    fn run_functional_checked(&mut self, max_insns: u64) -> Result<RunResult, Trap> {
        let mut executed = 0;
        let mut stop = StopReason::Budget;
        let code_base = self.code_base;
        'run: while executed < max_insns && !self.halted {
            if self.insn_budget_expired() {
                stop = StopReason::Watchdog(WatchdogKind::Instructions);
                break;
            }
            let (idx, _run) = self.fetch_decode(self.cpu.pc)?;
            if self.fusion_enabled {
                // Verify the *fused* tier at op granularity: execute
                // each store-free superinstruction with the fused
                // handler, then let the oracle replay its constituents
                // against the reference semantics
                // (`Lockstep::verify_fused`). Store-bearing ops and
                // partial-budget tails break out to the scalar
                // per-instruction body below, which always makes
                // progress.
                let handle = {
                    let Machine { fused, decoded, run_len, profiler, fusion_sabotage, .. } =
                        &mut *self;
                    fused.handle_at(
                        idx,
                        decoded,
                        run_len,
                        code_base,
                        profiler.is_none(),
                        *fusion_sabotage,
                    )
                };
                let n_ops = self.fused.block(handle).ops.len();
                let mut ran = false;
                for k in 0..n_ops {
                    if executed >= max_insns || self.halted || self.insn_budget_expired() {
                        break;
                    }
                    let entry = self.fused.block(handle).ops[k];
                    let mut allowance = max_insns - executed;
                    if let Some(limit) = self.watchdog.max_instructions {
                        allowance = allowance.min(limit - self.insns_total);
                    }
                    if entry.op.has_store() || u64::from(entry.op.max_weight()) > allowance {
                        break;
                    }
                    let pre = self.cpu.clone();
                    let base_index = self.insns_total;
                    let opr = fuse::run_op(&entry, &mut self.cpu, &mut self.mem)
                        .map_err(|m| self.trap(TrapCause::Mem(m), entry.pc))?;
                    executed += u64::from(opr.retired);
                    self.insns_total += u64::from(opr.retired);
                    ran = true;
                    let mut due = false;
                    if let Some(ls) = self.lockstep.as_mut() {
                        // One ring entry and one sampling draw per
                        // retired constituent, like the scalar loop.
                        for j in 0..opr.retired {
                            ls.note_commit(entry.pc.wrapping_add(4 * j));
                            due |= ls.check_due();
                        }
                    }
                    if due {
                        if let Some(ls) = self.lockstep.as_mut() {
                            if ls.verify_fused(
                                &pre,
                                &self.cpu,
                                &mut self.mem,
                                &self.decoded,
                                code_base,
                                opr.retired,
                                base_index,
                            ) {
                                stop = StopReason::Diverged;
                                break 'run;
                            }
                        }
                    }
                    if opr.halted {
                        self.halted = true;
                        break;
                    }
                }
                if ran {
                    continue 'run;
                }
            }
            let pc = self.cpu.pc;
            let insn = self.decoded[idx];
            let check = self.lockstep.as_mut().is_some_and(Lockstep::check_due);
            let pre = if check { Some(self.cpu.clone()) } else { None };
            let ev = step(&mut self.cpu, &mut self.mem, &insn)
                .map_err(|m| self.trap(TrapCause::Mem(m), pc))?;
            executed += 1;
            self.insns_total += 1;
            if let Some(ls) = self.lockstep.as_mut() {
                ls.note_commit(pc);
                if let Some(pre) = &pre {
                    if ls.verify_commit(
                        pre,
                        &self.cpu,
                        &mut self.mem,
                        &insn,
                        ev,
                        self.insns_total - 1,
                    ) {
                        stop = StopReason::Diverged;
                        break;
                    }
                }
            }
            if ev.halted {
                self.halted = true;
                break;
            }
            if let Some((addr, width, true)) = ev.mem {
                // Same self-modifying-code repair as the unchecked loop;
                // the next iteration re-fetches anyway.
                self.repair_stored_code(addr, width);
            }
        }
        if self.halted {
            stop = StopReason::Halted;
        }
        Ok(RunResult { executed, halted: self.halted, stop })
    }

    /// Timed run with lockstep verification; retires the same commit
    /// stream as [`Machine::run_timed`], so counters are identical to an
    /// unchecked run up to the first divergence.
    fn run_timed_checked(&mut self, max_insns: u64) -> Result<RunResult, Trap> {
        let mut executed = 0;
        let mut stop = StopReason::Budget;
        let max_cycles = self.watchdog.max_cycles;
        let profiling = self.profile.is_some();
        while executed < max_insns && !self.halted {
            if self.insn_budget_expired() {
                stop = StopReason::Watchdog(WatchdogKind::Instructions);
                break;
            }
            let (idx, _run) = self.fetch_decode(self.cpu.pc)?;
            let pc = self.cpu.pc;
            let insn = self.decoded[idx];
            let check = self.lockstep.as_mut().is_some_and(Lockstep::check_due);
            let pre = if check { Some(self.cpu.clone()) } else { None };
            let ev = step(&mut self.cpu, &mut self.mem, &insn)
                .map_err(|m| self.trap(TrapCause::Mem(m), pc))?;
            let commit = self.core.retire(Retired { insn: &insn, pc, event: ev });
            if profiling {
                self.attribute_profile(idx, commit);
            }
            executed += 1;
            self.insns_total += 1;
            if let Some(ls) = self.lockstep.as_mut() {
                ls.note_commit(pc);
                if let Some(pre) = &pre {
                    if ls.verify_commit(
                        pre,
                        &self.cpu,
                        &mut self.mem,
                        &insn,
                        ev,
                        self.insns_total - 1,
                    ) {
                        stop = StopReason::Diverged;
                        break;
                    }
                }
            }
            if ev.halted {
                self.halted = true;
                break;
            }
            if max_cycles.is_some_and(|limit| commit >= limit) {
                stop = StopReason::Watchdog(WatchdogKind::Cycles);
                break;
            }
            if let Some((addr, width, true)) = ev.mem {
                // Same self-modifying-code repair as the unchecked loop;
                // the next iteration re-fetches anyway.
                self.repair_stored_code(addr, width);
            }
        }
        if self.halted {
            stop = StopReason::Halted;
        }
        Ok(RunResult { executed, halted: self.halted, stop })
    }

    /// Charge one committed instruction (at code slot `slot`, committing
    /// at cycle `commit`) to its profile region via the dense index.
    /// Only called when profiling is enabled.
    fn attribute_profile(&mut self, slot: usize, commit: u64) {
        let delta = commit.saturating_sub(self.last_commit_seen);
        self.last_commit_seen = self.last_commit_seen.max(commit);
        let region = self.region_index.get(slot).copied().unwrap_or(NO_REGION);
        if region != NO_REGION {
            if let Some((_, counts)) = &mut self.profile {
                counts[region as usize].0 += 1;
                counts[region as usize].1 += delta;
            }
        }
    }

    /// Run to completion (or `budget` instructions) with SMARTS-style
    /// uniform sampling and return the measured estimate.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on memory faults or undecodable instructions.
    ///
    /// # Panics
    ///
    /// Panics if `sampling.detail` is zero or the warm-up and detail
    /// windows do not fit in the period.
    pub fn run_sampled(
        &mut self,
        sampling: SamplingConfig,
        budget: u64,
    ) -> Result<SampledRun, Trap> {
        assert!(sampling.detail > 0, "detail window must be non-empty");
        assert!(
            sampling.warmup + sampling.detail <= sampling.period,
            "warm-up plus detail must fit in the sampling period"
        );
        let mut total = 0u64;
        let mut stop = StopReason::Budget;
        let mut measured = Counters::default();
        'outer: while total < budget && !self.halted {
            // Fast-forward.
            let ff = sampling.period - sampling.warmup - sampling.detail;
            let r = self.run_functional(ff.min(budget - total))?;
            total += r.executed;
            if matches!(r.stop, StopReason::Watchdog(_) | StopReason::Diverged) {
                stop = r.stop;
                break;
            }
            if self.halted || total >= budget {
                break;
            }
            // Timed warm-up: run with timing but discard the counter delta.
            let before_warm = self.core.counters();
            let r = self.run_timed(sampling.warmup.min(budget - total))?;
            total += r.executed;
            let _ = before_warm; // warm-up deltas are deliberately dropped
            if matches!(r.stop, StopReason::Watchdog(_) | StopReason::Diverged) {
                stop = r.stop;
                break;
            }
            if self.halted || total >= budget {
                break;
            }
            // Measured window.
            let before = self.core.counters();
            let r = self.run_timed(sampling.detail.min(budget - total))?;
            total += r.executed;
            let after = self.core.counters();
            measured.merge(&delta(&after, &before));
            if matches!(r.stop, StopReason::Watchdog(_) | StopReason::Diverged) {
                stop = r.stop;
                break 'outer;
            }
        }
        if self.halted {
            stop = StopReason::Halted;
        }
        let cpi = if measured.instructions == 0 {
            1.0
        } else {
            measured.cycles as f64 / measured.instructions as f64
        };
        Ok(SampledRun {
            estimated_cycles: (cpi * total as f64) as u64,
            measured,
            total_instructions: total,
            halted: self.halted,
            stop,
        })
    }

    // ---- Fault-injection hooks (see `crate::fault`) -------------------

    /// Flip one bit of the instruction word at `pc`, updating the backing
    /// memory *and* the pre-decoded table together (the decode table is
    /// the authority at fetch time, so both must agree). Returns `false`
    /// when `pc` is outside the code region.
    pub fn flip_code_bit(&mut self, pc: u32, bit: u32) -> bool {
        let idx = pc.wrapping_sub(self.code_base) as usize / 4;
        if !pc.is_multiple_of(4) || idx >= self.decoded.len() {
            return false;
        }
        let addr = self.code_base.wrapping_add((idx as u32) * 4);
        let Ok(word) = self.mem.load_u32(addr) else {
            return false;
        };
        let word = word ^ (1 << (bit & 31));
        if self.mem.store_u32(addr, word).is_err() {
            return false;
        }
        self.patch_code_slot(idx, decode(word).ok());
        true
    }

    /// Install a new decode result at `slot` and repair the run-length
    /// table: the slot's own entry, then every straight-line predecessor
    /// whose run flows into it (stopping at the previous terminator or
    /// invalid word — runs upstream of those are unaffected). The static
    /// timing sidecar and its class-count prefix sums are repaired in the
    /// same step (slot entry plus the prefix suffix from `slot` on —
    /// patching is rare, so the linear suffix rebuild stays off every hot
    /// path).
    fn patch_code_slot(&mut self, slot: usize, insn: Option<Instruction>) {
        self.run_len[slot] = match &insn {
            None => 0,
            Some(i) if is_block_terminator(i) => 1,
            Some(_) => 1 + self.run_len.get(slot + 1).copied().unwrap_or(0),
        };
        self.decoded[slot] = insn.unwrap_or(INVALID_SLOT);
        self.timing[slot] = StaticTiming::of(&self.decoded[slot]);
        for i in slot..self.decoded.len() {
            let mut p = self.class_prefix[i];
            p.add(&self.timing[i].class_counts());
            self.class_prefix[i + 1] = p;
        }
        let mut i = slot;
        while i > 0 {
            i -= 1;
            if self.run_len[i] == 0 || is_block_terminator(&self.decoded[i]) {
                break;
            }
            self.run_len[i] = 1 + self.run_len[i + 1];
        }
        // Fused blocks are compiled from the decode table, so every
        // writer that repairs the table invalidates them the same way.
        // Patching is already an O(image) slow path; dropping the whole
        // cache (blocks recompile lazily) keeps the invariant simple.
        self.fused.clear();
    }

    /// Whether a store of `width` bytes at `addr` overlaps the pre-decoded
    /// code region (the read-only test the batched loop uses before it
    /// flushes its block accumulators and repairs the tables).
    #[inline]
    fn store_touches_code(&self, addr: u32, width: u32) -> bool {
        let base = u64::from(self.code_base);
        let end = base + (self.decoded.len() as u64) * 4;
        let lo = u64::from(addr);
        let hi = lo + u64::from(width.max(1)) - 1;
        lo < end && hi >= base
    }

    /// Re-decode every code slot a just-executed store touched. The
    /// decode and run-length tables are derived from memory, and every
    /// writer must repair them — including the program's own stores
    /// (self-modifying code; in practice a fault-corrupted wild store
    /// landing in the code region). Returns whether any slot changed,
    /// so block dispatch can re-fetch. No-op for the overwhelmingly
    /// common store outside the code region.
    pub(crate) fn repair_stored_code(&mut self, addr: u32, width: u32) -> bool {
        if !self.store_touches_code(addr, width) {
            return false;
        }
        let base = u64::from(self.code_base);
        let end = base + (self.decoded.len() as u64) * 4;
        let lo = u64::from(addr);
        let hi = lo + u64::from(width.max(1)) - 1;
        let first = (lo.max(base) - base) / 4;
        let last = (hi.min(end - 1) - base) / 4;
        for slot in first..=last {
            let word_addr = self.code_base.wrapping_add((slot as u32) * 4);
            let insn = self.mem.load_u32(word_addr).ok().and_then(|w| decode(w).ok());
            self.patch_code_slot(slot as usize, insn);
        }
        true
    }

    /// Flip one bit of a data byte (out-of-range addresses are ignored).
    /// Flipping bytes inside the code region repairs the decode table
    /// the same way an executed store would; use
    /// [`Machine::flip_code_bit`] for word-aligned instruction faults.
    pub fn flip_data_bit(&mut self, addr: u32, bit: u32) {
        self.mem.flip_bit(addr, bit);
        self.repair_stored_code(addr, 1);
    }

    /// Flip one bit of an architectural register. `reg % 35` selects
    /// GPR0–31, then CR, LR, CTR.
    pub fn flip_reg_bit(&mut self, reg: u64, bit: u32) {
        let mask = 1u32 << (bit & 31);
        match reg % 35 {
            r @ 0..=31 => self.cpu.gpr[r as usize] ^= mask,
            32 => self.cpu.cr = CondReg(self.cpu.cr.0 ^ mask),
            33 => self.cpu.lr ^= mask,
            _ => self.cpu.ctr ^= mask,
        }
    }

    /// Corrupt one branch-predictor counter bit (see
    /// [`TimingCore::corrupt_predictor`]).
    pub fn corrupt_predictor(&mut self, selector: u64) {
        self.core.corrupt_predictor(selector);
    }

    /// Invalidate one cache line across the hierarchy (see
    /// [`TimingCore::drop_cache_line`]). Returns whether a valid line was
    /// dropped.
    pub fn drop_cache_line(&mut self, selector: u64) -> bool {
        self.core.drop_cache_line(selector)
    }

    // ---- Checkpoint / resume ------------------------------------------

    /// Capture the complete simulation state. See [`Checkpoint`].
    pub fn checkpoint(&self) -> Checkpoint {
        let bytes = self.mem.bytes();
        let mut pages = Vec::new();
        for (i, page) in bytes.chunks(PAGE).enumerate() {
            if page.iter().any(|&b| b != 0) {
                pages.push(((i * PAGE) as u32, page.to_vec()));
            }
        }
        Checkpoint {
            config_digest: config_digest(self.core.config()),
            gpr: self.cpu.gpr,
            cr: self.cpu.cr.0,
            lr: self.cpu.lr,
            ctr: self.cpu.ctr,
            pc: self.cpu.pc,
            mem_size: bytes.len(),
            pages,
            code_base: self.code_base,
            code_len: self.decoded.len(),
            halted: self.halted,
            insns_total: self.insns_total,
            watchdog: self.watchdog,
            profile: self.profile.clone(),
            last_commit_seen: self.last_commit_seen,
            core: self.core.snapshot(),
        }
    }

    /// Reinstall a checkpoint taken from an identically-configured
    /// machine. The decode table is rebuilt by re-decoding the restored
    /// memory image. The tracer and symbol table are untouched.
    ///
    /// # Errors
    ///
    /// Returns a message when the configuration digest, memory size, or
    /// any microarchitectural table shape does not match; the machine is
    /// left in an unspecified (but non-panicking) state on error.
    pub fn restore(&mut self, ck: &Checkpoint) -> Result<(), String> {
        let digest = config_digest(self.core.config());
        if ck.config_digest != digest {
            return Err(format!(
                "checkpoint config digest {:#018x} does not match machine {digest:#018x}",
                ck.config_digest
            ));
        }
        if ck.mem_size != self.mem.size() {
            return Err(format!(
                "checkpoint memory size {} does not match machine {}",
                ck.mem_size,
                self.mem.size()
            ));
        }
        let mem = self.mem.bytes_mut();
        mem.fill(0);
        for (addr, data) in &ck.pages {
            let start = *addr as usize;
            let end = start.checked_add(data.len()).ok_or("checkpoint page overflows")?;
            if end > mem.len() {
                return Err(format!("checkpoint page at {addr:#x} exceeds memory"));
            }
            mem[start..end].copy_from_slice(data);
        }
        self.cpu.gpr = ck.gpr;
        self.cpu.cr = CondReg(ck.cr);
        self.cpu.lr = ck.lr;
        self.cpu.ctr = ck.ctr;
        self.cpu.pc = ck.pc;
        self.code_base = ck.code_base;
        let slots: Vec<Option<Instruction>> = (0..ck.code_len)
            .map(|i| {
                let addr = ck.code_base.wrapping_add((i as u32) * 4);
                self.mem.load_u32(addr).ok().and_then(|w| decode(w).ok())
            })
            .collect();
        let (decoded, run_len) = code_tables(&slots);
        let (timing, class_prefix) = timing_tables(&decoded);
        self.decoded = decoded;
        self.run_len = run_len;
        self.timing = timing;
        self.class_prefix = class_prefix;
        // The fused cache is derived from the decode table (and an
        // injected fusion bug is harness state, like a decode bug):
        // rebuild clean for the restored image.
        self.fused.reset(self.decoded.len());
        self.fusion_sabotage = None;
        self.halted = ck.halted;
        self.insns_total = ck.insns_total;
        self.watchdog = ck.watchdog;
        self.profile = ck.profile.clone();
        self.rebuild_region_index();
        self.last_commit_seen = ck.last_commit_seen;
        self.core.set_code_region(ck.code_base, ck.code_len);
        self.core.restore(&ck.core)
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.cpu.pc)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

/// Counter delta `after - before` (interval fields excluded).
fn delta(after: &Counters, before: &Counters) -> Counters {
    let mut d = Counters {
        cycles: after.cycles - before.cycles,
        instructions: after.instructions - before.instructions,
        fxu_ops: after.fxu_ops - before.fxu_ops,
        lsu_ops: after.lsu_ops - before.lsu_ops,
        loads: after.loads - before.loads,
        stores: after.stores - before.stores,
        compares: after.compares - before.compares,
        predicated_ops: after.predicated_ops - before.predicated_ops,
        ..Counters::default()
    };
    d.branches.total = after.branches.total - before.branches.total;
    d.branches.conditional = after.branches.conditional - before.branches.conditional;
    d.branches.taken = after.branches.taken - before.branches.taken;
    d.branches.direction_mispredictions =
        after.branches.direction_mispredictions - before.branches.direction_mispredictions;
    d.branches.target_mispredictions =
        after.branches.target_mispredictions - before.branches.target_mispredictions;
    d.stalls.fxu = after.stalls.fxu - before.stalls.fxu;
    d.stalls.load = after.stalls.load - before.stalls.load;
    d.stalls.branch_mispredict = after.stalls.branch_mispredict - before.stalls.branch_mispredict;
    d.stalls.taken_branch = after.stalls.taken_branch - before.stalls.taken_branch;
    d.stalls.icache = after.stalls.icache - before.stalls.icache;
    d.stalls.window_full = after.stalls.window_full - before.stalls.window_full;
    d.stalls.other = after.stalls.other - before.stalls.other;
    d.l1i.accesses = after.l1i.accesses - before.l1i.accesses;
    d.l1i.misses = after.l1i.misses - before.l1i.misses;
    d.l1d.accesses = after.l1d.accesses - before.l1d.accesses;
    d.l1d.misses = after.l1d.misses - before.l1d.misses;
    d.l2.accesses = after.l2.accesses - before.l2.accesses;
    d.l2.misses = after.l2.misses - before.l2.misses;
    d.btac.lookups = after.btac.lookups - before.btac.lookups;
    d.btac.predictions = after.btac.predictions - before.btac.predictions;
    d.btac.correct = after.btac.correct - before.btac.correct;
    d.btac.incorrect = after.btac.incorrect - before.btac.incorrect;
    d
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ppc_isa::Gpr;

    fn machine(src: &str) -> Machine {
        let prog = ppc_asm::assemble(src, 0x1000).expect("test program assembles");
        Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 1 << 20)
    }

    const COUNT_LOOP: &str = "
entry:
    li r3, 0
    li r4, 1000
    mtctr r4
loop:
    addi r3, r3, 1
    bdnz loop
    trap
";

    #[test]
    fn functional_and_timed_agree_architecturally() {
        let mut f = machine(COUNT_LOOP);
        let mut t = machine(COUNT_LOOP);
        let rf = f.run_functional(u64::MAX).unwrap();
        let rt = t.run_timed(u64::MAX).unwrap();
        assert!(rf.halted && rt.halted);
        assert_eq!(rf.executed, rt.executed);
        assert_eq!(f.cpu().reg(Gpr(3)), 1000);
        assert_eq!(t.cpu().reg(Gpr(3)), 1000);
        assert_eq!(f.cpu().pc, t.cpu().pc);
    }

    #[test]
    fn timed_run_produces_plausible_cycle_counts() {
        let mut m = machine(COUNT_LOOP);
        m.run_timed(u64::MAX).unwrap();
        let c = m.counters();
        // ~2004 instructions; a tight dependent loop with a taken branch
        // per iteration cannot exceed 1 IPC here and must not be absurdly
        // slow either.
        assert!(c.instructions > 2000);
        assert!(c.cycles > c.instructions / 5, "cycles {}", c.cycles);
        assert!(c.cycles < c.instructions * 20, "cycles {}", c.cycles);
        // bdnz is almost always taken and perfectly predictable.
        assert!(c.branches.misprediction_rate() < 0.01);
        assert!(c.branches.taken_fraction() > 0.99);
    }

    #[test]
    fn budget_stops_early() {
        let mut m = machine(COUNT_LOOP);
        let r = m.run_timed(100).unwrap();
        assert_eq!(r.executed, 100);
        assert!(!r.halted);
        let r2 = m.run_timed(u64::MAX).unwrap();
        assert!(r2.halted);
        assert_eq!(m.cpu().reg(Gpr(3)), 1000);
    }

    #[test]
    fn bad_instruction_reports_pc() {
        let mut m = Machine::new(CoreConfig::power5(), &[0, 0, 0, 0], 0x1000, 0x1000, 1 << 16);
        let err = m.run_timed(10).unwrap_err();
        assert_eq!(err.cause, TrapCause::BadInstruction);
        assert_eq!(err.pc, 0x1000);
        assert!(format!("{err}").contains("0x00001000"));
    }

    #[test]
    fn misaligned_pc_reports_distinct_trap() {
        let mut m = machine(COUNT_LOOP);
        m.cpu_mut().pc = 0x1002;
        let err = m.run_timed(10).unwrap_err();
        assert_eq!(err.cause, TrapCause::MisalignedFetch);
        assert_eq!(err.pc, 0x1002);
        assert!(format!("{err}").contains("misaligned fetch"));
        // Functional mode reports the same distinct cause — including for
        // a misaligned PC pointing outside the code image, which must not
        // fold back into BadInstruction.
        let mut f = machine(COUNT_LOOP);
        f.cpu_mut().pc = 0x9_0001;
        assert_eq!(f.run_functional(10).unwrap_err().cause, TrapCause::MisalignedFetch);
        // An aligned PC outside the image is still a BadInstruction.
        let mut b = machine(COUNT_LOOP);
        b.cpu_mut().pc = 0x9_0000;
        assert_eq!(b.run_timed(10).unwrap_err().cause, TrapCause::BadInstruction);
    }

    #[test]
    fn sampling_profiler_observes_every_retired_instruction() {
        // Functional, batched-timed, and pinned-timed paths all feed the
        // profiler the same retirement stream: identical instruction
        // totals and identical hottest region (the loop body).
        let mut f = machine(COUNT_LOOP);
        f.set_sampling_profiler(16);
        let rf = f.run_functional(u64::MAX).unwrap();
        let pf = f.take_profiler().unwrap();
        assert_eq!(pf.insns(), rf.executed);
        assert!(f.profiler().is_none());

        let mut b = machine(COUNT_LOOP);
        b.set_sampling_profiler(16);
        let rb = b.run_timed(u64::MAX).unwrap();
        let pb = b.take_profiler().unwrap();
        assert_eq!(pb.insns(), rb.executed);
        assert_eq!(pb.insns(), pf.insns());

        let mut p = machine(COUNT_LOOP);
        p.set_sampling_profiler(16);
        let rp = p.run_timed_pinned(u64::MAX).unwrap();
        let pp = p.take_profiler().unwrap();
        assert_eq!(pp.insns(), rp.executed);

        // The loop block at `loop:` (0x100c) dominates; both timed paths
        // agree on the hottest PC-region and the sample total.
        let rep_b = pb.report(None);
        let rep_p = pp.report(None);
        assert_eq!(rep_b.hot_regions[0].name, "0x0000100c");
        assert_eq!(rep_b.hot_regions[0].name, rep_p.hot_regions[0].name);
        assert_eq!(rep_b.total_samples, rep_p.total_samples);
        assert!(rep_b.retire_latency.count() > 0);
        assert!(rep_b.block_len.max() <= 5);
    }

    #[test]
    fn run_length_table_matches_block_structure() {
        // COUNT_LOOP decodes to li, li, mtctr, addi, bdnz, trap: one
        // five-instruction run ending at the branch, then the trap block.
        let m = machine(COUNT_LOOP);
        assert_eq!(m.run_len, vec![5, 4, 3, 2, 1, 1]);
    }

    #[test]
    fn patching_code_repairs_run_lengths() {
        let mut m = machine(COUNT_LOOP);
        // Invalidate the mtctr slot: upstream runs must now stop there.
        m.patch_code_slot(2, None);
        assert_eq!(m.run_len, vec![2, 1, 0, 2, 1, 1]);
        // Patch a straight-line instruction back in: full runs return.
        m.patch_code_slot(2, Some(Instruction::Add { rt: Gpr(5), ra: Gpr(5), rb: Gpr(5) }));
        assert_eq!(m.run_len, vec![5, 4, 3, 2, 1, 1]);
    }

    #[test]
    fn memory_fault_surfaces_with_pc_and_cycle() {
        let mut m = machine("entry:\n li r3, 1\n lwz r3, 0(r4)\n trap\n");
        m.cpu_mut().gpr[4] = 0xFFFF_0000; // out of the 1 MiB memory
        let err = m.run_timed(10).unwrap_err();
        assert!(matches!(err.cause, TrapCause::Mem(_)));
        assert_eq!(err.pc, 0x1004);
        // One instruction committed before the fault; the clock advanced.
        assert!(err.cycle > 0, "trap cycle not stamped");
    }

    #[test]
    fn try_new_rejects_oversized_image_without_panicking() {
        let image = vec![0u8; 64];
        let err = Machine::try_new(CoreConfig::power5(), &image, 0xFFF0, 0xFFF0, 1 << 12);
        assert!(err.is_err());
    }

    #[test]
    fn instruction_watchdog_times_out_gracefully() {
        let mut m = machine(COUNT_LOOP);
        m.set_watchdog(Watchdog { max_instructions: Some(500), ..Watchdog::default() });
        let r = m.run_timed(u64::MAX).unwrap();
        assert_eq!(r.stop, StopReason::Watchdog(WatchdogKind::Instructions));
        assert!(!r.halted);
        assert_eq!(r.executed, 500);
        assert_eq!(m.insns_total(), 500);
        // Counters remain readable — this is the partial-report path.
        assert!(m.counters().instructions >= 500);
        // Watchdog also guards functional runs.
        let r2 = m.run_functional(u64::MAX).unwrap();
        assert_eq!(r2.stop, StopReason::Watchdog(WatchdogKind::Instructions));
        assert_eq!(r2.executed, 0);
    }

    #[test]
    fn cycle_watchdog_times_out_gracefully() {
        let mut m = machine(COUNT_LOOP);
        m.set_watchdog(Watchdog { max_cycles: Some(300), ..Watchdog::default() });
        let r = m.run_timed(u64::MAX).unwrap();
        assert_eq!(r.stop, StopReason::Watchdog(WatchdogKind::Cycles));
        assert!(!r.halted);
        assert!(m.counters().cycles >= 300);
        // Clearing the budget lets the program finish.
        m.set_watchdog(Watchdog::default());
        let r2 = m.run_timed(u64::MAX).unwrap();
        assert_eq!(r2.stop, StopReason::Halted);
        assert_eq!(m.cpu().reg(Gpr(3)), 1000);
    }

    #[test]
    fn sampled_run_reports_watchdog_stop() {
        let mut m = machine(COUNT_LOOP);
        m.set_watchdog(Watchdog { max_instructions: Some(100), ..Watchdog::default() });
        let s =
            m.run_sampled(SamplingConfig { period: 50, warmup: 10, detail: 10 }, u64::MAX).unwrap();
        assert!(!s.halted);
        assert_eq!(s.stop, StopReason::Watchdog(WatchdogKind::Instructions));
        assert!(s.total_instructions <= 100);
    }

    #[test]
    fn checkpoint_resume_is_bit_exact() {
        // Gold: run to completion in one go.
        let mut gold = machine(COUNT_LOOP);
        gold.set_stall_site_profiling(true);
        let rg = gold.run_timed(u64::MAX).unwrap();

        // Split: run 700 instructions, checkpoint, restore into a fresh
        // machine, finish there.
        let mut first = machine(COUNT_LOOP);
        first.set_stall_site_profiling(true);
        first.run_timed(700).unwrap();
        let ck = first.checkpoint();

        let mut resumed = machine(COUNT_LOOP);
        resumed.set_stall_site_profiling(true);
        resumed.restore(&ck).unwrap();
        assert_eq!(resumed.insns_total(), 700);
        let rr = resumed.run_timed(u64::MAX).unwrap();

        assert_eq!(rg.executed, 700 + rr.executed);
        assert_eq!(gold.counters(), resumed.counters());
        assert_eq!(gold.cpu().pc, resumed.cpu().pc);
        assert_eq!(gold.cpu().gpr, resumed.cpu().gpr);
        assert_eq!(gold.stall_sites(), resumed.stall_sites());
        assert_eq!(gold.checkpoint(), resumed.checkpoint());
    }

    #[test]
    fn restore_rejects_mismatched_machines() {
        let m = machine(COUNT_LOOP);
        let ck = m.checkpoint();

        // Different core configuration.
        let prog = ppc_asm::assemble(COUNT_LOOP, 0x1000).unwrap();
        let mut other =
            Machine::new(CoreConfig::power5().with_fxus(4), &prog.bytes, 0x1000, 0x1000, 1 << 20);
        assert!(other.restore(&ck).is_err());

        // Different memory size.
        let mut small = Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 1 << 16);
        assert!(small.restore(&ck).is_err());
    }

    #[test]
    fn checkpoint_preserves_injected_code_faults() {
        // Clobber an instruction, checkpoint, restore elsewhere: the
        // restored machine must trap at the same PC (decode table is
        // rebuilt from the mutated memory image).
        let mut m = machine(COUNT_LOOP);
        assert!(m.flip_code_bit(0x1000, 31)); // li -> something else (or invalid)
        let ck = m.checkpoint();
        let mut n = machine(COUNT_LOOP);
        n.restore(&ck).unwrap();
        let a = m.run_timed(10);
        let b = n.run_timed(10);
        assert_eq!(a, b, "original and restored machines diverged on a code fault");
    }

    #[test]
    fn stores_into_the_code_region_repair_the_decode_tables() {
        // The program copies the `donor` instruction word over `patchme`
        // *within the same straight-line block*, so the repaired decode
        // and run-length tables must take effect immediately: memory is
        // the authority, and the stored instruction (r3 += 100) executes
        // instead of the original (r3 += 1).
        const SMC: &str = "
entry:
    li r3, 0
    li r9, 4124
    lwz r8, 0(r9)
    li r10, 4116
    stw r8, 0(r10)
patchme:
    addi r3, r3, 1
    trap
donor:
    addi r3, r3, 100
";
        for timed in [false, true] {
            let mut m = machine(SMC);
            let r = if timed { m.run_timed(u64::MAX) } else { m.run_functional(u64::MAX) }
                .expect("smc program runs");
            assert!(r.halted);
            assert_eq!(m.cpu().reg(Gpr(3)), 100, "the stored instruction must execute");
        }
        // The oracle agrees: full lockstep sees no divergence, because
        // the decode table tracks the mutated memory.
        let mut checked = machine(SMC);
        checked.set_lockstep(LockstepMode::Full);
        let r = checked.run_timed(u64::MAX).expect("checked smc program runs");
        assert!(r.halted, "full-lockstep run must halt, not diverge: {:?}", r.stop);
        assert_eq!(checked.cpu().reg(Gpr(3)), 100);
        assert!(checked.take_divergence().is_none());
    }

    #[test]
    fn flip_code_bit_outside_code_region_is_refused() {
        let mut m = machine(COUNT_LOOP);
        assert!(!m.flip_code_bit(0x9_0000, 0));
        assert!(!m.flip_code_bit(0x1002, 0)); // misaligned PC
    }

    #[test]
    fn flip_reg_bit_touches_named_registers() {
        let mut m = machine(COUNT_LOOP);
        m.flip_reg_bit(3, 0);
        assert_eq!(m.cpu().gpr[3], 1);
        m.flip_reg_bit(33, 4); // LR
        assert_eq!(m.cpu().lr, 16);
        m.flip_reg_bit(34, 1); // CTR
        assert_eq!(m.cpu().ctr, 2);
        m.flip_reg_bit(32, 0); // CR
        assert_eq!(m.cpu().cr.0, 1);
    }

    #[test]
    fn sampled_run_estimates_full_run() {
        // Build a long-enough loop that sampling kicks in.
        let src = "
entry:
    li r3, 0
    lis r4, 2
    mtctr r4
loop:
    addi r3, r3, 1
    addi r5, r5, 2
    xor r6, r3, r5
    bdnz loop
    trap
";
        let mut full = machine(src);
        full.run_timed(u64::MAX).unwrap();
        let full_c = full.counters();
        let full_ipc = full_c.ipc();

        let mut sampled = machine(src);
        let s = sampled
            .run_sampled(SamplingConfig { period: 10_000, warmup: 500, detail: 500 }, u64::MAX)
            .unwrap();
        assert!(s.halted);
        assert_eq!(s.total_instructions, full_c.instructions);
        let err = (s.ipc() - full_ipc).abs() / full_ipc;
        assert!(err < 0.15, "sampled IPC {} vs full {full_ipc}", s.ipc());
    }

    #[test]
    fn interval_series_reflects_phases() {
        let mut m = machine(COUNT_LOOP);
        m.set_interval_sampling(200);
        m.run_timed(u64::MAX).unwrap();
        let c = m.counters();
        assert!(c.intervals.len() >= 9, "intervals {}", c.intervals.len());
    }

    // A loop whose body exercises `isel`, the paper's predicated-select
    // instruction — the fast-path defect class the lockstep tests below
    // inject is a wrong `isel` condition in the decode table.
    const ISEL_LOOP: &str = "
entry:
    li r3, 0
    li r7, 400
    mtctr r7
    li r5, 1
    li r6, 2
loop:
    cmpwi cr0, r3, 25
    isel r4, r5, r6, 4*cr0+gt
    add r3, r3, r4
    bdnz loop
    trap
";

    /// The PC of the first `isel` in the image and a copy of it with the
    /// condition bit flipped (`gt` -> `lt`).
    fn isel_site(m: &Machine) -> (u32, Instruction) {
        let idx = m
            .decoded
            .iter()
            .position(|i| matches!(i, Instruction::Isel { .. }))
            .expect("program contains isel");
        let Instruction::Isel { rt, ra, rb, bc } = m.decoded[idx] else {
            unreachable!();
        };
        let wrong =
            Instruction::Isel { rt, ra, rb, bc: ppc_isa::CrBit(if bc.0 == 0 { 1 } else { 0 }) };
        (m.code_base + (idx as u32) * 4, wrong)
    }

    #[test]
    fn oracle_matches_the_fast_interpreter_end_to_end() {
        let mut m = machine(ISEL_LOOP);
        let mut o = crate::oracle::Oracle::from_machine(&m);
        m.run_functional(u64::MAX).unwrap();
        o.run(u64::MAX).unwrap();
        assert!(m.halted() && o.halted());
        assert_eq!(m.cpu(), o.cpu());
        assert_eq!(m.mem(), o.mem());
    }

    #[test]
    fn full_lockstep_passes_clean_runs_and_matches_unchecked_counters() {
        let mut plain = machine(ISEL_LOOP);
        let mut checked = machine(ISEL_LOOP);
        checked.set_lockstep(LockstepMode::Full);
        assert_eq!(checked.lockstep_mode(), LockstepMode::Full);
        let rp = plain.run_timed(u64::MAX).unwrap();
        let rc = checked.run_timed(u64::MAX).unwrap();
        assert_eq!(rp, rc);
        assert_eq!(plain.counters(), checked.counters());
        assert_eq!(plain.cpu(), checked.cpu());
        assert!(checked.take_divergence().is_none());
    }

    #[test]
    fn full_lockstep_catches_an_injected_decode_bug() {
        let mut m = machine(ISEL_LOOP);
        let (pc, wrong) = isel_site(&m);
        assert!(m.inject_decode_bug(pc, wrong));
        m.set_lockstep(LockstepMode::Full);
        let r = m.run_timed(u64::MAX).unwrap();
        assert_eq!(r.stop, StopReason::Diverged);
        assert!(!r.halted);
        let d = m.take_divergence().expect("divergence recorded");
        assert_eq!(d.pc, pc);
        assert_eq!(d.field, crate::oracle::ArchField::Decode);
        assert_eq!(d.recent_pcs.last(), Some(&pc));
        assert!(format!("{d}").contains("decode"));
    }

    #[test]
    fn sampled_lockstep_detects_and_the_shrinker_minimizes_the_window() {
        let mut m = machine(ISEL_LOOP);
        let start = m.checkpoint();
        let (pc, wrong) = isel_site(&m);
        assert!(m.inject_decode_bug(pc, wrong));
        m.set_lockstep(LockstepMode::Sampled { period: 10, seed: 11 });
        let r = m.run_functional(u64::MAX).unwrap();
        assert_eq!(r.stop, StopReason::Diverged, "sampled lockstep must land on the bad isel");
        let d = m.take_divergence().expect("divergence recorded");
        assert_eq!(d.pc, pc);

        let mut reapply = |mm: &mut Machine| {
            mm.inject_decode_bug(pc, wrong);
        };
        let repro =
            crate::oracle::shrink_divergence(&mut m, &start, &mut reapply, d.instruction, 64)
                .expect("shrinker converges");
        assert!(repro.span <= 64, "span {}", repro.span);
        assert_eq!(repro.divergence.pc, pc);
        assert_eq!(repro.divergence.field, crate::oracle::ArchField::Decode);
        assert_eq!(repro.first_divergent + 1, repro.start.insns_total + repro.span);

        // The repro replays: restore the start checkpoint, re-apply the
        // defect, run the span under full lockstep, observe the same
        // divergence.
        let mut replay = machine(ISEL_LOOP);
        replay.restore(&repro.start).unwrap();
        reapply(&mut replay);
        replay.set_lockstep(LockstepMode::Full);
        let rr = replay.run_functional(repro.span).unwrap();
        assert_eq!(rr.stop, StopReason::Diverged);
        let dd = replay.take_divergence().unwrap();
        assert_eq!(dd.pc, repro.divergence.pc);
        assert_eq!(dd.field, repro.divergence.field);
        assert_eq!(dd.instruction, repro.first_divergent);
    }

    #[test]
    fn lockstep_off_is_the_default_and_clears_state() {
        let mut m = machine(COUNT_LOOP);
        assert_eq!(m.lockstep_mode(), LockstepMode::Off);
        m.set_lockstep(LockstepMode::Full);
        m.set_lockstep(LockstepMode::Off);
        assert_eq!(m.lockstep_mode(), LockstepMode::Off);
        let r = m.run_timed(u64::MAX).unwrap();
        assert!(r.halted);
        assert!(m.take_divergence().is_none());
    }

    #[test]
    fn workload_inputs_via_memory_and_registers() {
        // Kernel: sum 8 words at address in r3, count in r4, result in r3.
        let src = "
entry:
    mtctr r4
    li r5, 0
loop:
    lwz r6, 0(r3)
    add r5, r5, r6
    addi r3, r3, 4
    bdnz loop
    mr r3, r5
    trap
";
        let mut m = machine(src);
        m.mem_mut().write_i32s(0x8000, &[1, 2, 3, 4, 5, 6, 7, -8]).unwrap();
        m.cpu_mut().gpr[3] = 0x8000;
        m.cpu_mut().gpr[4] = 8;
        m.run_timed(u64::MAX).unwrap();
        assert_eq!(m.cpu().reg(Gpr(3)) as i32, 20);
    }
}
