//! Program loading and simulation drivers.
//!
//! A [`Machine`] couples architectural state (CPU + memory) with the
//! [`TimingCore`]. Three drivers are provided:
//!
//! * [`Machine::run_functional`] — fast architectural execution only
//!   (SystemSim's "turbo mode");
//! * [`Machine::run_timed`] — full timing simulation;
//! * [`Machine::run_sampled`] — SMARTS-style uniform sampling: long
//!   functional fast-forward, a timed warm-up whose counters are
//!   discarded, and a short measured window, repeated across the program
//!   (the paper's Section V methodology).

use crate::config::CoreConfig;
use crate::core::{Retired, TimingCore};
use crate::counters::{Counters, StallBreakdown};
use crate::trace::{self, JsonlSink, PipeViewSink, RingSink, SymbolMap, Tracer};
use ppc_isa::exec::MemFault;
use ppc_isa::{decode, step, CpuState, Instruction, Memory};
use std::fmt;

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `trap`.
    Halted,
    /// The instruction budget was exhausted.
    Budget,
}

/// Result of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Instructions executed during this call.
    pub executed: u64,
    /// Whether the program hit `trap`.
    pub halted: bool,
}

/// An error during simulation: a memory fault or an undecodable word at
/// the PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// Data access fault.
    Mem(MemFault),
    /// The PC points at a word that does not decode.
    BadInstruction {
        /// The faulting PC.
        pc: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Mem(m) => write!(f, "{m}"),
            SimError::BadInstruction { pc } => {
                write!(f, "undecodable instruction at {pc:#010x}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<MemFault> for SimError {
    fn from(m: MemFault) -> Self {
        SimError::Mem(m)
    }
}

/// SMARTS-style sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Distance between measurement windows, in instructions.
    pub period: u64,
    /// Timed warm-up instructions before each window (counters discarded).
    pub warmup: u64,
    /// Measured instructions per window.
    pub detail: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig { period: 100_000, warmup: 2_000, detail: 1_000 }
    }
}

/// Estimates produced by a sampled run.
#[derive(Debug, Clone)]
pub struct SampledRun {
    /// Counters accumulated over the measured windows only.
    pub measured: Counters,
    /// Total instructions executed (all modes).
    pub total_instructions: u64,
    /// Estimated total cycles (measured CPI × total instructions).
    pub estimated_cycles: u64,
    /// Whether the program halted.
    pub halted: bool,
}

impl SampledRun {
    /// The IPC estimate from the measured windows.
    pub fn ipc(&self) -> f64 {
        self.measured.ipc()
    }
}

/// A region of PCs attributed to one function for profiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRegion {
    /// Function name.
    pub name: String,
    /// First byte address (inclusive).
    pub start: u32,
    /// Last byte address (exclusive).
    pub end: u32,
}

/// Per-function attribution state: the regions and, for each, the
/// `(cycles, instructions)` charged so far.
type ProfileState = (Vec<ProfileRegion>, Vec<(u64, u64)>);

/// A loaded program plus simulation state.
pub struct Machine {
    cpu: CpuState,
    mem: Memory,
    core: TimingCore,
    /// Pre-decoded image (indexed by `(pc - base) / 4`); words that are
    /// data simply fail to decode and stay `None`.
    decoded: Vec<Option<Instruction>>,
    code_base: u32,
    halted: bool,
    /// Optional per-function cycle/instruction attribution.
    profile: Option<ProfileState>,
    last_commit_seen: u64,
    /// Optional symbol table for symbolized heatmaps and trace dumps.
    symbols: Option<SymbolMap>,
}

impl Machine {
    /// Create a machine with `image` loaded at `base`, starting execution
    /// at `entry`, with `mem_size` bytes of simulated memory.
    ///
    /// The image is pre-decoded at load time; executing self-modifying
    /// code is not supported.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit below `mem_size`.
    pub fn new(cfg: CoreConfig, image: &[u8], base: u32, entry: u32, mem_size: usize) -> Self {
        let mut mem = Memory::new(mem_size);
        mem.write_bytes(base, image).expect("program image must fit in simulated memory");
        let decoded = image
            .chunks(4)
            .map(|c| {
                if c.len() == 4 {
                    decode(u32::from_le_bytes(c.try_into().expect("4 bytes"))).ok()
                } else {
                    None
                }
            })
            .collect();
        Machine {
            cpu: CpuState::new(entry),
            mem,
            core: TimingCore::new(cfg),
            decoded,
            code_base: base,
            halted: false,
            profile: None,
            last_commit_seen: 0,
            symbols: None,
        }
    }

    /// Enable per-function profiling over the given regions. Committed
    /// instructions and commit-cycle deltas are attributed to the region
    /// containing their PC.
    pub fn set_profile_regions(&mut self, regions: Vec<ProfileRegion>) {
        let n = regions.len();
        self.profile = Some((regions, vec![(0, 0); n]));
    }

    /// Profiling results as `(name, instructions, cycles)`, in region
    /// order. Empty when profiling was never enabled.
    pub fn profile_results(&self) -> Vec<(String, u64, u64)> {
        match &self.profile {
            None => Vec::new(),
            Some((regions, counts)) => {
                regions.iter().zip(counts).map(|(r, &(i, c))| (r.name.clone(), i, c)).collect()
            }
        }
    }

    /// Architectural CPU state.
    pub fn cpu(&self) -> &CpuState {
        &self.cpu
    }

    /// Mutable CPU state (for setting up kernel arguments in registers).
    pub fn cpu_mut(&mut self) -> &mut CpuState {
        &mut self.cpu
    }

    /// Simulated memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable simulated memory (for serializing workload inputs).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Timing counters accumulated so far.
    pub fn counters(&self) -> Counters {
        self.core.counters()
    }

    /// Whether the program has executed `trap`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Enable Figure-2-style interval sampling (committed instructions per
    /// sample point).
    pub fn set_interval_sampling(&mut self, insns: u64) {
        self.core.set_interval_sampling(insns);
    }

    /// Enable per-PC conditional-branch statistics.
    pub fn set_branch_site_profiling(&mut self, on: bool) {
        self.core.set_branch_site_profiling(on);
    }

    /// Per-PC branch statistics, sorted by mispredictions (largest first).
    /// Empty unless [`Machine::set_branch_site_profiling`] was enabled.
    pub fn branch_sites(&self) -> Vec<(u32, crate::core::BranchSite)> {
        self.core.branch_sites()
    }

    /// Enable per-PC attribution of every stall class (see
    /// [`crate::core::TimingCore::set_stall_site_profiling`]).
    pub fn set_stall_site_profiling(&mut self, on: bool) {
        self.core.set_stall_site_profiling(on);
    }

    /// Per-PC stall breakdowns, hottest site first. Empty unless
    /// [`Machine::set_stall_site_profiling`] was enabled.
    pub fn stall_sites(&self) -> Vec<(u32, StallBreakdown)> {
        self.core.stall_sites()
    }

    /// Install a symbol table (from `ppc-asm`'s `Assembled::symbol_table`)
    /// so heatmaps and trace dumps print `function+offset`.
    pub fn set_symbols(&mut self, symbols: SymbolMap) {
        self.symbols = Some(symbols);
    }

    /// The installed symbol table, if any.
    pub fn symbols(&self) -> Option<&SymbolMap> {
        self.symbols.as_ref()
    }

    /// Render the per-PC stall heatmap (top `top` sites), symbolized when a
    /// symbol table was installed. Empty output unless
    /// [`Machine::set_stall_site_profiling`] was enabled.
    pub fn stall_heatmap(&self, top: usize) -> String {
        trace::render_stall_heatmap(&self.stall_sites(), self.symbols.as_ref(), top)
    }

    /// Install a pipeline event tracer ([`Tracer::Off`] disables tracing).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.core.set_tracer(tracer);
    }

    /// Trace the last `n` committed instructions into a ring buffer
    /// (post-mortem dumps; replaces any previous tracer).
    pub fn trace_last(&mut self, n: usize) {
        self.core.set_tracer(Tracer::Ring(RingSink::new(n)));
    }

    /// Stream gem5-O3-pipeview-style text to `out` (replaces any previous
    /// tracer).
    pub fn trace_pipeview(&mut self, out: impl std::io::Write + 'static) {
        self.core.set_tracer(Tracer::PipeView(PipeViewSink::new(Box::new(out))));
    }

    /// Stream JSONL records to `out` (replaces any previous tracer).
    pub fn trace_jsonl(&mut self, out: impl std::io::Write + 'static) {
        self.core.set_tracer(Tracer::Jsonl(JsonlSink::new(Box::new(out))));
    }

    /// The active tracer.
    pub fn tracer(&self) -> &Tracer {
        self.core.tracer()
    }

    /// Mutable access to the active tracer (e.g. to flush it).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        self.core.tracer_mut()
    }

    /// Remove and return the active tracer, disabling tracing. Flush the
    /// returned tracer with [`Tracer::finish`] to surface deferred I/O
    /// errors.
    pub fn take_tracer(&mut self) -> Tracer {
        self.core.take_tracer()
    }

    #[inline]
    fn fetch_decode(&mut self, pc: u32) -> Result<Instruction, SimError> {
        let idx = pc.wrapping_sub(self.code_base) as usize / 4;
        if pc.is_multiple_of(4) {
            if let Some(Some(i)) = self.decoded.get(idx) {
                return Ok(*i);
            }
        }
        Err(SimError::BadInstruction { pc })
    }

    /// Run functionally (no timing) for at most `max_insns` instructions.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on memory faults or undecodable instructions.
    pub fn run_functional(&mut self, max_insns: u64) -> Result<RunResult, SimError> {
        let mut executed = 0;
        while executed < max_insns && !self.halted {
            let pc = self.cpu.pc;
            let insn = self.fetch_decode(pc)?;
            let ev = step(&mut self.cpu, &mut self.mem, &insn)?;
            executed += 1;
            if ev.halted {
                self.halted = true;
            }
        }
        Ok(RunResult { executed, halted: self.halted })
    }

    /// Run with full timing for at most `max_insns` instructions.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on memory faults or undecodable instructions.
    pub fn run_timed(&mut self, max_insns: u64) -> Result<RunResult, SimError> {
        let mut executed = 0;
        while executed < max_insns && !self.halted {
            let pc = self.cpu.pc;
            let insn = self.fetch_decode(pc)?;
            let ev = step(&mut self.cpu, &mut self.mem, &insn)?;
            let commit = self.core.retire(Retired { insn: &insn, pc, event: ev });
            if let Some((regions, counts)) = &mut self.profile {
                let delta = commit.saturating_sub(self.last_commit_seen);
                self.last_commit_seen = self.last_commit_seen.max(commit);
                if let Some(i) = regions.iter().position(|r| pc >= r.start && pc < r.end) {
                    counts[i].0 += 1;
                    counts[i].1 += delta;
                }
            }
            executed += 1;
            if ev.halted {
                self.halted = true;
            }
        }
        Ok(RunResult { executed, halted: self.halted })
    }

    /// Run to completion (or `budget` instructions) with SMARTS-style
    /// uniform sampling and return the measured estimate.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on memory faults or undecodable instructions.
    ///
    /// # Panics
    ///
    /// Panics if `sampling.detail` is zero or the warm-up and detail
    /// windows do not fit in the period.
    pub fn run_sampled(
        &mut self,
        sampling: SamplingConfig,
        budget: u64,
    ) -> Result<SampledRun, SimError> {
        assert!(sampling.detail > 0, "detail window must be non-empty");
        assert!(
            sampling.warmup + sampling.detail <= sampling.period,
            "warm-up plus detail must fit in the sampling period"
        );
        let mut total = 0u64;
        let mut measured = Counters::default();
        while total < budget && !self.halted {
            // Fast-forward.
            let ff = sampling.period - sampling.warmup - sampling.detail;
            total += self.run_functional(ff.min(budget - total))?.executed;
            if self.halted || total >= budget {
                break;
            }
            // Timed warm-up: run with timing but discard the counter delta.
            let before_warm = self.core.counters();
            total += self.run_timed(sampling.warmup.min(budget - total))?.executed;
            let _ = before_warm; // warm-up deltas are deliberately dropped
            if self.halted || total >= budget {
                break;
            }
            // Measured window.
            let before = self.core.counters();
            total += self.run_timed(sampling.detail.min(budget - total))?.executed;
            let after = self.core.counters();
            measured.merge(&delta(&after, &before));
        }
        let cpi = if measured.instructions == 0 {
            1.0
        } else {
            measured.cycles as f64 / measured.instructions as f64
        };
        Ok(SampledRun {
            estimated_cycles: (cpi * total as f64) as u64,
            measured,
            total_instructions: total,
            halted: self.halted,
        })
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.cpu.pc)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

/// Counter delta `after - before` (interval fields excluded).
fn delta(after: &Counters, before: &Counters) -> Counters {
    let mut d = Counters {
        cycles: after.cycles - before.cycles,
        instructions: after.instructions - before.instructions,
        fxu_ops: after.fxu_ops - before.fxu_ops,
        lsu_ops: after.lsu_ops - before.lsu_ops,
        loads: after.loads - before.loads,
        stores: after.stores - before.stores,
        compares: after.compares - before.compares,
        predicated_ops: after.predicated_ops - before.predicated_ops,
        ..Counters::default()
    };
    d.branches.total = after.branches.total - before.branches.total;
    d.branches.conditional = after.branches.conditional - before.branches.conditional;
    d.branches.taken = after.branches.taken - before.branches.taken;
    d.branches.direction_mispredictions =
        after.branches.direction_mispredictions - before.branches.direction_mispredictions;
    d.branches.target_mispredictions =
        after.branches.target_mispredictions - before.branches.target_mispredictions;
    d.stalls.fxu = after.stalls.fxu - before.stalls.fxu;
    d.stalls.load = after.stalls.load - before.stalls.load;
    d.stalls.branch_mispredict = after.stalls.branch_mispredict - before.stalls.branch_mispredict;
    d.stalls.taken_branch = after.stalls.taken_branch - before.stalls.taken_branch;
    d.stalls.icache = after.stalls.icache - before.stalls.icache;
    d.stalls.window_full = after.stalls.window_full - before.stalls.window_full;
    d.stalls.other = after.stalls.other - before.stalls.other;
    d.l1i.accesses = after.l1i.accesses - before.l1i.accesses;
    d.l1i.misses = after.l1i.misses - before.l1i.misses;
    d.l1d.accesses = after.l1d.accesses - before.l1d.accesses;
    d.l1d.misses = after.l1d.misses - before.l1d.misses;
    d.l2.accesses = after.l2.accesses - before.l2.accesses;
    d.l2.misses = after.l2.misses - before.l2.misses;
    d.btac.lookups = after.btac.lookups - before.btac.lookups;
    d.btac.predictions = after.btac.predictions - before.btac.predictions;
    d.btac.correct = after.btac.correct - before.btac.correct;
    d.btac.incorrect = after.btac.incorrect - before.btac.incorrect;
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_isa::Gpr;

    fn machine(src: &str) -> Machine {
        let prog = ppc_asm::assemble(src, 0x1000).expect("test program assembles");
        Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 1 << 20)
    }

    const COUNT_LOOP: &str = "
entry:
    li r3, 0
    li r4, 1000
    mtctr r4
loop:
    addi r3, r3, 1
    bdnz loop
    trap
";

    #[test]
    fn functional_and_timed_agree_architecturally() {
        let mut f = machine(COUNT_LOOP);
        let mut t = machine(COUNT_LOOP);
        let rf = f.run_functional(u64::MAX).unwrap();
        let rt = t.run_timed(u64::MAX).unwrap();
        assert!(rf.halted && rt.halted);
        assert_eq!(rf.executed, rt.executed);
        assert_eq!(f.cpu().reg(Gpr(3)), 1000);
        assert_eq!(t.cpu().reg(Gpr(3)), 1000);
        assert_eq!(f.cpu().pc, t.cpu().pc);
    }

    #[test]
    fn timed_run_produces_plausible_cycle_counts() {
        let mut m = machine(COUNT_LOOP);
        m.run_timed(u64::MAX).unwrap();
        let c = m.counters();
        // ~2004 instructions; a tight dependent loop with a taken branch
        // per iteration cannot exceed 1 IPC here and must not be absurdly
        // slow either.
        assert!(c.instructions > 2000);
        assert!(c.cycles > c.instructions / 5, "cycles {}", c.cycles);
        assert!(c.cycles < c.instructions * 20, "cycles {}", c.cycles);
        // bdnz is almost always taken and perfectly predictable.
        assert!(c.branches.misprediction_rate() < 0.01);
        assert!(c.branches.taken_fraction() > 0.99);
    }

    #[test]
    fn budget_stops_early() {
        let mut m = machine(COUNT_LOOP);
        let r = m.run_timed(100).unwrap();
        assert_eq!(r.executed, 100);
        assert!(!r.halted);
        let r2 = m.run_timed(u64::MAX).unwrap();
        assert!(r2.halted);
        assert_eq!(m.cpu().reg(Gpr(3)), 1000);
    }

    #[test]
    fn bad_instruction_reports_pc() {
        let mut m = Machine::new(CoreConfig::power5(), &[0, 0, 0, 0], 0x1000, 0x1000, 1 << 16);
        let err = m.run_timed(10).unwrap_err();
        assert_eq!(err, SimError::BadInstruction { pc: 0x1000 });
    }

    #[test]
    fn memory_fault_surfaces() {
        let mut m = machine("entry:\n lwz r3, 0(r4)\n trap\n");
        m.cpu_mut().gpr[4] = 0xFFFF_0000; // out of the 1 MiB memory
        let err = m.run_timed(10).unwrap_err();
        assert!(matches!(err, SimError::Mem(_)));
    }

    #[test]
    fn sampled_run_estimates_full_run() {
        // Build a long-enough loop that sampling kicks in.
        let src = "
entry:
    li r3, 0
    lis r4, 2
    mtctr r4
loop:
    addi r3, r3, 1
    addi r5, r5, 2
    xor r6, r3, r5
    bdnz loop
    trap
";
        let mut full = machine(src);
        full.run_timed(u64::MAX).unwrap();
        let full_c = full.counters();
        let full_ipc = full_c.ipc();

        let mut sampled = machine(src);
        let s = sampled
            .run_sampled(SamplingConfig { period: 10_000, warmup: 500, detail: 500 }, u64::MAX)
            .unwrap();
        assert!(s.halted);
        assert_eq!(s.total_instructions, full_c.instructions);
        let err = (s.ipc() - full_ipc).abs() / full_ipc;
        assert!(err < 0.15, "sampled IPC {} vs full {full_ipc}", s.ipc());
    }

    #[test]
    fn interval_series_reflects_phases() {
        let mut m = machine(COUNT_LOOP);
        m.set_interval_sampling(200);
        m.run_timed(u64::MAX).unwrap();
        let c = m.counters();
        assert!(c.intervals.len() >= 9, "intervals {}", c.intervals.len());
    }

    #[test]
    fn workload_inputs_via_memory_and_registers() {
        // Kernel: sum 8 words at address in r3, count in r4, result in r3.
        let src = "
entry:
    mtctr r4
    li r5, 0
loop:
    lwz r6, 0(r3)
    add r5, r5, r6
    addi r3, r3, 4
    bdnz loop
    mr r3, r5
    trap
";
        let mut m = machine(src);
        m.mem_mut().write_i32s(0x8000, &[1, 2, 3, 4, 5, 6, 7, -8]).unwrap();
        m.cpu_mut().gpr[3] = 0x8000;
        m.cpu_mut().gpr[4] = 8;
        m.run_timed(u64::MAX).unwrap();
        assert_eq!(m.cpu().reg(Gpr(3)) as i32, 20);
    }
}
