//! Per-instruction pipeline event tracing and symbolized attribution.
//!
//! Every committed instruction's trip through the pipe — fetch, dispatch,
//! issue, execute-complete, commit, plus any front-end redirect it caused —
//! is captured as one [`InsnTrace`] record and delivered to a
//! [`TraceSink`]. The timing core dispatches through the [`Tracer`] enum,
//! so the default [`Tracer::Off`] configuration costs a single enum
//! discriminant test per retired instruction and **no** virtual call.
//!
//! Three concrete sinks are provided:
//!
//! * [`RingSink`] — a bounded ring buffer keeping the last *N*
//!   instructions, for post-mortem "what led up to the anomaly" dumps;
//! * [`PipeViewSink`] — a gem5-O3-pipeview-style text renderer
//!   (`O3PipeView:<stage>:<cycle>` lines, consumable by pipeline viewers);
//! * [`JsonlSink`] — one JSON object per instruction, parseable by
//!   [`parse_jsonl_line`] and replayable by [`replay_jsonl`] to validate a
//!   trace against the run that produced it.
//!
//! [`SymbolMap`] carries the `ppc-asm` symbol table into the simulator so
//! per-PC stall heatmaps ([`render_stall_heatmap`]) print `function+offset`
//! instead of raw addresses.

use crate::counters::{StallBreakdown, StallClass};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// A front-end redirect caused by a committed branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRedirect {
    /// Cycle at which fetch may resume.
    pub resume: u64,
    /// Why the redirect happened ([`StallClass::Mispredict`] or
    /// [`StallClass::TakenBubble`]).
    pub cause: StallClass,
}

/// One committed instruction's pipeline event record.
///
/// Stage stamps are monotonically non-decreasing:
/// `fetch <= dispatch <= issue <= complete <= commit`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsnTrace {
    /// 1-based committed-instruction sequence number.
    pub seq: u64,
    /// Fetch address.
    pub pc: u32,
    /// Disassembly of the instruction.
    pub disasm: String,
    /// Cycle the instruction was fetched.
    pub fetch: u64,
    /// Cycle its dispatch group dispatched.
    pub dispatch: u64,
    /// Cycle it issued to its execution unit.
    pub issue: u64,
    /// Cycle its result completed (end of execute).
    pub complete: u64,
    /// Cycle it committed.
    pub commit: u64,
    /// The stall class charged for its completion gap
    /// ([`StallClass::None`] when it committed at full throughput).
    pub stall: StallClass,
    /// Completion-gap cycles charged to [`InsnTrace::stall`].
    pub stall_cycles: u64,
    /// The redirect this instruction caused, if any.
    pub redirect: Option<TraceRedirect>,
}

impl InsnTrace {
    /// Check the per-instruction stamp ordering invariant.
    pub fn stamps_monotonic(&self) -> bool {
        self.fetch <= self.dispatch
            && self.dispatch <= self.issue
            && self.issue <= self.complete
            && self.complete <= self.commit
    }

    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"seq\":{},\"pc\":{},\"disasm\":\"{}\",\"fetch\":{},\"dispatch\":{},\
             \"issue\":{},\"complete\":{},\"commit\":{},\"stall\":\"{}\",\"stall_cycles\":{}",
            self.seq,
            self.pc,
            escape_json(&self.disasm),
            self.fetch,
            self.dispatch,
            self.issue,
            self.complete,
            self.commit,
            self.stall.name(),
            self.stall_cycles,
        );
        match self.redirect {
            Some(r) => {
                let _ = write!(
                    s,
                    ",\"redirect\":{{\"resume\":{},\"cause\":\"{}\"}}}}",
                    r.resume,
                    r.cause.name()
                );
            }
            None => s.push_str(",\"redirect\":null}"),
        }
        s
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Receives the pipeline event stream. Implementations must be cheap per
/// record; expensive post-processing belongs in [`TraceSink::finish`].
pub trait TraceSink {
    /// Deliver one committed instruction's record.
    fn record(&mut self, insn: &InsnTrace);

    /// Flush any buffered output. Called when tracing is torn down.
    ///
    /// # Errors
    ///
    /// Returns any deferred I/O error from the underlying writer.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards every record (the explicit do-nothing sink).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _insn: &InsnTrace) {}
}

/// Keeps the most recent `capacity` records for post-mortem inspection.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<InsnTrace>,
    /// Total records seen (including evicted ones).
    seen: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` records (capacity 0 is clamped
    /// to 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink { capacity, buf: VecDeque::with_capacity(capacity), seen: 0 }
    }

    /// The buffered records, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &InsnTrace> {
        self.buf.iter()
    }

    /// Number of buffered records (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records delivered, including ones the ring has evicted.
    pub fn total_seen(&self) -> u64 {
        self.seen
    }

    /// Render the buffered tail as a human-readable dump ("the last N
    /// instructions before the anomaly").
    pub fn dump(&self, symbols: Option<&SymbolMap>) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "last {} of {} committed instructions:", self.buf.len(), self.seen);
        for t in &self.buf {
            let loc = match symbols {
                Some(map) => map.label(t.pc),
                None => format!("{:#010x}", t.pc),
            };
            let _ = write!(
                out,
                "  #{:<8} {:<24} F{} D{} I{} X{} C{} {:<28}",
                t.seq, loc, t.fetch, t.dispatch, t.issue, t.complete, t.commit, t.disasm
            );
            if t.stall_cycles > 0 {
                let _ = write!(out, "  [+{} {}]", t.stall_cycles, t.stall.name());
            }
            if let Some(r) = t.redirect {
                let _ = write!(out, "  [redirect {} -> {}]", r.cause.name(), r.resume);
            }
            out.push('\n');
        }
        out
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, insn: &InsnTrace) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(insn.clone());
        self.seen += 1;
    }
}

/// Writes gem5-O3-pipeview-style stage lines:
///
/// ```text
/// O3PipeView:fetch:<cycle>:0x<pc>:0:<seq>:<disasm>
/// O3PipeView:dispatch:<cycle>
/// O3PipeView:issue:<cycle>
/// O3PipeView:complete:<cycle>
/// O3PipeView:retire:<cycle>
/// ```
///
/// plus a non-standard `O3PipeView:redirect:<cycle>:<cause>` line when the
/// instruction redirected the front end. I/O errors are deferred and
/// surfaced by [`TraceSink::finish`].
#[derive(Debug)]
pub struct PipeViewSink<W: Write> {
    out: W,
    deferred_err: Option<io::Error>,
}

impl<W: Write> PipeViewSink<W> {
    /// A sink writing pipeview lines to `out`.
    pub fn new(out: W) -> Self {
        PipeViewSink { out, deferred_err: None }
    }

    fn write_record(&mut self, t: &InsnTrace) -> io::Result<()> {
        writeln!(self.out, "O3PipeView:fetch:{}:{:#010x}:0:{}:{}", t.fetch, t.pc, t.seq, t.disasm)?;
        writeln!(self.out, "O3PipeView:dispatch:{}", t.dispatch)?;
        writeln!(self.out, "O3PipeView:issue:{}", t.issue)?;
        writeln!(self.out, "O3PipeView:complete:{}", t.complete)?;
        writeln!(self.out, "O3PipeView:retire:{}", t.commit)?;
        if let Some(r) = t.redirect {
            writeln!(self.out, "O3PipeView:redirect:{}:{}", r.resume, r.cause.name())?;
        }
        Ok(())
    }
}

impl<W: Write> TraceSink for PipeViewSink<W> {
    fn record(&mut self, insn: &InsnTrace) {
        if self.deferred_err.is_none() {
            if let Err(e) = self.write_record(insn) {
                self.deferred_err = Some(e);
            }
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        match self.deferred_err.take() {
            Some(e) => Err(e),
            None => self.out.flush(),
        }
    }
}

/// Writes one JSON object per committed instruction (see
/// [`InsnTrace::to_jsonl`] for the schema). I/O errors are deferred and
/// surfaced by [`TraceSink::finish`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    deferred_err: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing JSONL records to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink { out, deferred_err: None }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, insn: &InsnTrace) {
        if self.deferred_err.is_none() {
            if let Err(e) = writeln!(self.out, "{}", insn.to_jsonl()) {
                self.deferred_err = Some(e);
            }
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        match self.deferred_err.take() {
            Some(e) => Err(e),
            None => self.out.flush(),
        }
    }
}

/// Enum-dispatched tracer held by the timing core. The hot path tests one
/// discriminant ([`Tracer::is_off`]); only non-`Off` configurations pay for
/// record construction and sink dispatch.
#[derive(Default)]
pub enum Tracer {
    /// Tracing disabled (the default; zero per-instruction overhead).
    #[default]
    Off,
    /// Bounded ring buffer of the most recent instructions.
    Ring(RingSink),
    /// gem5-O3-pipeview-style text stream.
    PipeView(PipeViewSink<Box<dyn Write>>),
    /// JSONL stream.
    Jsonl(JsonlSink<Box<dyn Write>>),
    /// Any other [`TraceSink`] implementation (dynamic dispatch).
    Custom(Box<dyn TraceSink>),
}

impl Tracer {
    /// Whether tracing is disabled (the retire fast path's only check).
    #[inline]
    pub fn is_off(&self) -> bool {
        matches!(self, Tracer::Off)
    }

    /// Deliver one record to the active sink.
    pub fn record(&mut self, insn: &InsnTrace) {
        match self {
            Tracer::Off => {}
            Tracer::Ring(s) => s.record(insn),
            Tracer::PipeView(s) => s.record(insn),
            Tracer::Jsonl(s) => s.record(insn),
            Tracer::Custom(s) => s.record(insn),
        }
    }

    /// Flush the active sink.
    ///
    /// # Errors
    ///
    /// Returns any deferred I/O error from the sink's writer.
    pub fn finish(&mut self) -> io::Result<()> {
        match self {
            Tracer::Off => Ok(()),
            Tracer::Ring(s) => s.finish(),
            Tracer::PipeView(s) => s.finish(),
            Tracer::Jsonl(s) => s.finish(),
            Tracer::Custom(s) => s.finish(),
        }
    }

    /// The ring buffer, when a [`Tracer::Ring`] is active.
    pub fn ring(&self) -> Option<&RingSink> {
        match self {
            Tracer::Ring(s) => Some(s),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Tracer::Off => "Off",
            Tracer::Ring(_) => "Ring",
            Tracer::PipeView(_) => "PipeView",
            Tracer::Jsonl(_) => "Jsonl",
            Tracer::Custom(_) => "Custom",
        };
        f.debug_tuple("Tracer").field(&name).finish()
    }
}

/// An error reading back a JSONL trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line did not parse as a trace record.
    Parse {
        /// 1-based line number.
        line: u64,
        /// What went wrong.
        message: String,
    },
    /// The stream parsed but violated a trace invariant.
    Invariant {
        /// Sequence number of the offending record.
        seq: u64,
        /// Which invariant broke.
        message: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            TraceError::Invariant { seq, message } => {
                write!(f, "trace invariant violated at seq {seq}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// JSONL parsing (hand-rolled: the schema is flat and fully known).
// ---------------------------------------------------------------------------

struct LineParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> LineParser<'a> {
    fn new(s: &'a str) -> Self {
        LineParser { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e| format!("bad number: {e}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 character starting here.
                    self.pos -= 1;
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

/// Parse one JSONL trace line produced by [`InsnTrace::to_jsonl`].
///
/// # Errors
///
/// Returns a human-readable message if the line is not a valid record.
pub fn parse_jsonl_line(line: &str) -> Result<InsnTrace, String> {
    let mut p = LineParser::new(line);
    p.expect(b'{')?;
    let mut seq = None;
    let mut pc = None;
    let mut disasm = None;
    let mut fetch = None;
    let mut dispatch = None;
    let mut issue = None;
    let mut complete = None;
    let mut commit = None;
    let mut stall = None;
    let mut stall_cycles = None;
    let mut redirect: Option<Option<TraceRedirect>> = None;
    loop {
        let key = p.parse_string()?;
        p.expect(b':')?;
        match key.as_str() {
            "seq" => seq = Some(p.parse_u64()?),
            "pc" => pc = Some(p.parse_u64()?),
            "disasm" => disasm = Some(p.parse_string()?),
            "fetch" => fetch = Some(p.parse_u64()?),
            "dispatch" => dispatch = Some(p.parse_u64()?),
            "issue" => issue = Some(p.parse_u64()?),
            "complete" => complete = Some(p.parse_u64()?),
            "commit" => commit = Some(p.parse_u64()?),
            "stall" => {
                let name = p.parse_string()?;
                stall = Some(
                    StallClass::from_name(&name)
                        .ok_or_else(|| format!("unknown stall class '{name}'"))?,
                );
            }
            "stall_cycles" => stall_cycles = Some(p.parse_u64()?),
            "redirect" => {
                if p.peek() == Some(b'n') {
                    // Literal null.
                    for expected in [b'n', b'u', b'l', b'l'] {
                        p.expect(expected)?;
                    }
                    redirect = Some(None);
                } else {
                    p.expect(b'{')?;
                    let mut resume = None;
                    let mut cause = None;
                    loop {
                        let rk = p.parse_string()?;
                        p.expect(b':')?;
                        match rk.as_str() {
                            "resume" => resume = Some(p.parse_u64()?),
                            "cause" => {
                                let name = p.parse_string()?;
                                cause =
                                    Some(StallClass::from_name(&name).ok_or_else(|| {
                                        format!("unknown redirect cause '{name}'")
                                    })?);
                            }
                            other => return Err(format!("unknown redirect key '{other}'")),
                        }
                        if p.peek() == Some(b',') {
                            p.expect(b',')?;
                        } else {
                            break;
                        }
                    }
                    p.expect(b'}')?;
                    redirect = Some(Some(TraceRedirect {
                        resume: resume.ok_or("redirect missing 'resume'")?,
                        cause: cause.ok_or("redirect missing 'cause'")?,
                    }));
                }
            }
            other => return Err(format!("unknown key '{other}'")),
        }
        if p.peek() == Some(b',') {
            p.expect(b',')?;
        } else {
            break;
        }
    }
    p.expect(b'}')?;
    let pc64 = pc.ok_or("missing 'pc'")?;
    Ok(InsnTrace {
        seq: seq.ok_or("missing 'seq'")?,
        pc: u32::try_from(pc64).map_err(|_| "pc out of range".to_string())?,
        disasm: disasm.ok_or("missing 'disasm'")?,
        fetch: fetch.ok_or("missing 'fetch'")?,
        dispatch: dispatch.ok_or("missing 'dispatch'")?,
        issue: issue.ok_or("missing 'issue'")?,
        complete: complete.ok_or("missing 'complete'")?,
        commit: commit.ok_or("missing 'commit'")?,
        stall: stall.ok_or("missing 'stall'")?,
        stall_cycles: stall_cycles.ok_or("missing 'stall_cycles'")?,
        redirect: redirect.ok_or("missing 'redirect'")?,
    })
}

/// Summary of a replayed JSONL trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Committed instructions in the trace.
    pub instructions: u64,
    /// Commit cycle of the final instruction.
    pub final_commit: u64,
    /// Total stall cycles recorded across the trace.
    pub stall_cycles: u64,
}

/// Replay a JSONL trace, validating per-record stamp monotonicity and
/// sequence-number continuity, and return its summary. Replaying the trace
/// of a run must yield the run's committed-instruction count.
///
/// # Errors
///
/// Returns [`TraceError`] on I/O failures, unparseable lines, or invariant
/// violations (non-contiguous `seq`, non-monotonic stage stamps, or a
/// commit cycle that moves backwards).
pub fn replay_jsonl(reader: impl BufRead) -> Result<ReplaySummary, TraceError> {
    let mut instructions = 0u64;
    let mut final_commit = 0u64;
    let mut stall_cycles = 0u64;
    let mut prev_seq: Option<u64> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let t = parse_jsonl_line(&line)
            .map_err(|message| TraceError::Parse { line: idx as u64 + 1, message })?;
        if let Some(prev) = prev_seq {
            if t.seq != prev + 1 {
                return Err(TraceError::Invariant {
                    seq: t.seq,
                    message: format!("sequence number jumped from {prev}"),
                });
            }
        }
        if !t.stamps_monotonic() {
            return Err(TraceError::Invariant {
                seq: t.seq,
                message: format!(
                    "stage stamps not monotonic: F{} D{} I{} X{} C{}",
                    t.fetch, t.dispatch, t.issue, t.complete, t.commit
                ),
            });
        }
        if t.commit < final_commit {
            return Err(TraceError::Invariant {
                seq: t.seq,
                message: format!("commit cycle moved backwards: {} < {final_commit}", t.commit),
            });
        }
        prev_seq = Some(t.seq);
        final_commit = t.commit;
        stall_cycles += t.stall_cycles;
        instructions += 1;
    }
    Ok(ReplaySummary { instructions, final_commit, stall_cycles })
}

// ---------------------------------------------------------------------------
// Symbolization.
// ---------------------------------------------------------------------------

/// A sorted symbol table mapping PCs to `function+offset` labels.
///
/// Built from `ppc-asm`'s `Assembled::symbol_table()` (or any
/// `(name, address)` list); a PC resolves to the nearest symbol at or
/// below it.
#[derive(Debug, Clone, Default)]
pub struct SymbolMap {
    /// `(address, name)` sorted by address.
    entries: Vec<(u32, String)>,
}

impl SymbolMap {
    /// Build a map from `(name, address)` pairs (e.g. `ppc-asm`'s
    /// `Assembled::symbol_table`). Local labels (names starting with `.`)
    /// are skipped; duplicate addresses keep the first name after sorting
    /// by `(address, name)`.
    pub fn new<S: Into<String>>(symbols: impl IntoIterator<Item = (S, u32)>) -> Self {
        let mut entries: Vec<(u32, String)> = symbols
            .into_iter()
            .map(|(name, addr)| (name.into(), addr))
            .filter(|(name, _)| !name.starts_with('.'))
            .map(|(name, addr)| (addr, name))
            .collect();
        entries.sort();
        entries.dedup_by_key(|e| e.0);
        SymbolMap { entries }
    }

    /// Whether the map holds no symbols.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The symbol containing `pc`, as `(name, offset)`; `None` when `pc`
    /// is below the first symbol.
    pub fn resolve(&self, pc: u32) -> Option<(&str, u32)> {
        let idx = self.entries.partition_point(|&(addr, _)| addr <= pc);
        let (addr, name) = self.entries.get(idx.checked_sub(1)?)?;
        Some((name.as_str(), pc - addr))
    }

    /// A display label for `pc`: `name` or `name+0xOFF`, falling back to
    /// the raw hex address when unresolvable.
    pub fn label(&self, pc: u32) -> String {
        match self.resolve(pc) {
            Some((name, 0)) => name.to_string(),
            Some((name, off)) => format!("{name}+{off:#x}"),
            None => format!("{pc:#010x}"),
        }
    }
}

/// Render a per-PC stall heatmap (the "guilty branch" analysis extended to
/// every stall class). `sites` is `(pc, breakdown)`; rows print hottest
/// first, capped at `top`, symbolized through `symbols` when provided.
pub fn render_stall_heatmap(
    sites: &[(u32, StallBreakdown)],
    symbols: Option<&SymbolMap>,
    top: usize,
) -> String {
    let mut rows: Vec<&(u32, StallBreakdown)> = sites.iter().collect();
    rows.sort_by(|a, b| b.1.total().cmp(&a.1.total()).then(a.0.cmp(&b.0)));
    let total_all: u64 = rows.iter().map(|(_, s)| s.total()).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>10} {:>6}  {:>8} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "site",
        "stall-cyc",
        "share",
        "fxu",
        "load",
        "mispredict",
        "taken",
        "icache",
        "window",
        "other"
    );
    for (pc, s) in rows.into_iter().take(top) {
        let label = match symbols {
            Some(map) => map.label(*pc),
            None => format!("{pc:#010x}"),
        };
        let share = 100.0 * s.total() as f64 / total_all.max(1) as f64;
        let _ = writeln!(
            out,
            "{label:<34} {:>10} {share:>5.1}%  {:>8} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}",
            s.total(),
            s.fxu,
            s.load,
            s.branch_mispredict,
            s.taken_branch,
            s.icache,
            s.window_full,
            s.other
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> InsnTrace {
        InsnTrace {
            seq,
            pc: 0x1000 + 4 * seq as u32,
            disasm: format!("addi r3, r3, {seq}"),
            fetch: seq,
            dispatch: seq + 2,
            issue: seq + 2,
            complete: seq + 3,
            commit: seq + 3,
            stall: StallClass::None,
            stall_cycles: 0,
            redirect: None,
        }
    }

    #[test]
    fn jsonl_roundtrip_plain() {
        let t = sample(7);
        let back = parse_jsonl_line(&t.to_jsonl()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn jsonl_roundtrip_with_redirect_and_escapes() {
        let mut t = sample(3);
        t.disasm = "bct 4*cr0+gt, \".L\\x\"".to_string();
        t.stall = StallClass::Mispredict;
        t.stall_cycles = 12;
        t.redirect = Some(TraceRedirect { resume: 99, cause: StallClass::Mispredict });
        let back = parse_jsonl_line(&t.to_jsonl()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn replay_counts_and_validates() {
        let mut text = String::new();
        for seq in 1..=10 {
            text.push_str(&sample(seq).to_jsonl());
            text.push('\n');
        }
        let summary = replay_jsonl(text.as_bytes()).unwrap();
        assert_eq!(summary.instructions, 10);
        assert_eq!(summary.final_commit, 13);
    }

    #[test]
    fn replay_rejects_seq_gap() {
        let mut text = String::new();
        text.push_str(&sample(1).to_jsonl());
        text.push('\n');
        text.push_str(&sample(3).to_jsonl());
        text.push('\n');
        let err = replay_jsonl(text.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Invariant { seq: 3, .. }), "{err}");
    }

    #[test]
    fn replay_rejects_non_monotonic_stamps() {
        let mut t = sample(1);
        t.issue = t.dispatch - 1;
        let err = replay_jsonl(format!("{}\n", t.to_jsonl()).as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Invariant { .. }), "{err}");
    }

    #[test]
    fn ring_keeps_last_n() {
        let mut ring = RingSink::new(3);
        for seq in 1..=10 {
            ring.record(&sample(seq));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_seen(), 10);
        let seqs: Vec<u64> = ring.entries().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![8, 9, 10]);
        assert!(ring.dump(None).contains("last 3 of 10"));
    }

    #[test]
    fn pipeview_emits_stage_lines() {
        let mut buf = Vec::new();
        {
            let mut sink = PipeViewSink::new(&mut buf);
            let mut t = sample(1);
            t.redirect = Some(TraceRedirect { resume: 9, cause: StallClass::TakenBubble });
            sink.record(&t);
            sink.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        for stage in ["fetch", "dispatch", "issue", "complete", "retire", "redirect"] {
            assert!(text.contains(&format!("O3PipeView:{stage}:")), "missing {stage}");
        }
    }

    #[test]
    fn symbol_map_resolves_offsets() {
        let map = SymbolMap::new(vec![
            ("main".to_string(), 0x1000),
            ("helper".to_string(), 0x1040),
            (".Llocal".to_string(), 0x1044),
        ]);
        assert_eq!(map.len(), 2);
        assert_eq!(map.resolve(0x1000), Some(("main", 0)));
        assert_eq!(map.resolve(0x103C), Some(("main", 0x3C)));
        assert_eq!(map.resolve(0x1048), Some(("helper", 8)));
        assert_eq!(map.resolve(0xFFF), None);
        assert_eq!(map.label(0x1044), "helper+0x4");
        assert_eq!(map.label(0x200), "0x00000200");
    }

    #[test]
    fn heatmap_sorts_and_symbolizes() {
        let map = SymbolMap::new(vec![("kernel".to_string(), 0x1000)]);
        let hot = StallBreakdown { branch_mispredict: 100, ..Default::default() };
        let cool = StallBreakdown { load: 5, ..Default::default() };
        let text = render_stall_heatmap(&[(0x1010, cool), (0x1020, hot)], Some(&map), 10);
        let hot_pos = text.find("kernel+0x20").unwrap();
        let cool_pos = text.find("kernel+0x10").unwrap();
        assert!(hot_pos < cool_pos, "hottest row first:\n{text}");
    }

    #[test]
    fn tracer_off_is_cheap_and_silent() {
        let mut tracer = Tracer::Off;
        assert!(tracer.is_off());
        tracer.record(&sample(1));
        tracer.finish().unwrap();
        assert!(tracer.ring().is_none());
    }
}
