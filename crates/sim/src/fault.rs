//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is generated from a seed by a self-contained
//! xorshift64 PRNG (no external dependencies), so a campaign is exactly
//! reproducible from its seed. Each [`FaultSpec`] flips one bit of an
//! instruction word, a data byte, or an architectural register, drops a
//! cache line, or corrupts branch-predictor state, at a chosen point in
//! the committed-instruction stream.
//!
//! The contract the harness checks (see [`check_invariants`] and the
//! campaign driver in the `bioarch` crate): every injected fault must be
//! *detected* — the run traps with a PC and cycle — or *contained* — the
//! run completes (or times out on a watchdog budget) with counters that
//! still satisfy the partition/CPI-stack invariants. A panic, hang, or
//! invariant violation is a harness failure.

#![deny(clippy::unwrap_used)]

use crate::counters::{Counters, StallBreakdown};
use crate::machine::Machine;

/// Minimal xorshift64 PRNG (Marsaglia), good enough for fault-site
/// selection and fully deterministic across platforms.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator. A zero seed (the one fixed point of xorshift)
    /// is remapped to a nonzero constant.
    pub fn new(seed: u64) -> Self {
        XorShift64 { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform-ish value in `0..bound` (`bound` of 0 returns 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// What a fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit of an instruction word (memory and decode table).
    InsnBitFlip,
    /// Flip one bit of a data byte.
    DataBitFlip,
    /// Flip one bit of an architectural register (GPR/CR/LR/CTR).
    RegBitFlip,
    /// Invalidate one cache line in L1I, L1D, or L2.
    CacheLineDrop,
    /// Flip one branch-predictor counter bit.
    PredictorCorrupt,
}

impl FaultKind {
    /// All kinds, in campaign display order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::InsnBitFlip,
        FaultKind::DataBitFlip,
        FaultKind::RegBitFlip,
        FaultKind::CacheLineDrop,
        FaultKind::PredictorCorrupt,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::InsnBitFlip => "insn-bit-flip",
            FaultKind::DataBitFlip => "data-bit-flip",
            FaultKind::RegBitFlip => "reg-bit-flip",
            FaultKind::CacheLineDrop => "cache-line-drop",
            FaultKind::PredictorCorrupt => "predictor-corrupt",
        }
    }
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What is corrupted.
    pub kind: FaultKind,
    /// Inject once the machine's lifetime instruction count reaches this.
    pub at_instruction: u64,
    /// Kind-dependent site: a PC for [`FaultKind::InsnBitFlip`], a data
    /// address for [`FaultKind::DataBitFlip`], a register selector for
    /// [`FaultKind::RegBitFlip`], an opaque selector otherwise.
    pub target: u64,
    /// Which bit to flip (masked per site width).
    pub bit: u32,
}

impl FaultSpec {
    /// Apply the fault to `m` now. Returns whether state actually changed
    /// (an out-of-range instruction flip or an already-invalid cache line
    /// reports `false`).
    pub fn apply(&self, m: &mut Machine) -> bool {
        match self.kind {
            FaultKind::InsnBitFlip => m.flip_code_bit(self.target as u32, self.bit),
            FaultKind::DataBitFlip => {
                m.flip_data_bit(self.target as u32, self.bit);
                true
            }
            FaultKind::RegBitFlip => {
                m.flip_reg_bit(self.target, self.bit);
                true
            }
            FaultKind::CacheLineDrop => m.drop_cache_line(self.target),
            FaultKind::PredictorCorrupt => {
                m.corrupt_predictor(self.target);
                true
            }
        }
    }
}

/// The address/instruction windows faults are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionWindow {
    /// First byte of the code region.
    pub code_base: u32,
    /// Code region length in bytes.
    pub code_len: u32,
    /// First byte of the data region.
    pub data_base: u32,
    /// Data region length in bytes.
    pub data_len: u32,
    /// Faults are injected in `0..max_instruction` of the committed
    /// stream.
    pub max_instruction: u64,
}

/// A seeded, reproducible list of faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// The faults, sorted by injection point.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Generate `n` faults from `seed`, uniformly across [`FaultKind`]s
    /// and the given window, sorted by `at_instruction`.
    pub fn generate(seed: u64, n: usize, window: &InjectionWindow) -> FaultPlan {
        let mut rng = XorShift64::new(seed);
        let mut faults: Vec<FaultSpec> = (0..n)
            .map(|_| {
                let kind = FaultKind::ALL[rng.below(FaultKind::ALL.len() as u64) as usize];
                let (target, bit) = match kind {
                    FaultKind::InsnBitFlip => {
                        let word = rng.below(u64::from(window.code_len / 4).max(1));
                        (u64::from(window.code_base) + 4 * word, rng.below(32) as u32)
                    }
                    FaultKind::DataBitFlip => (
                        u64::from(window.data_base) + rng.below(u64::from(window.data_len).max(1)),
                        rng.below(8) as u32,
                    ),
                    FaultKind::RegBitFlip => (rng.below(35), rng.below(32) as u32),
                    FaultKind::CacheLineDrop | FaultKind::PredictorCorrupt => (rng.next_u64(), 0),
                };
                FaultSpec {
                    kind,
                    at_instruction: rng.below(window.max_instruction.max(1)),
                    target,
                    bit,
                }
            })
            .collect();
        faults.sort_by_key(|f| f.at_instruction);
        FaultPlan { seed, faults }
    }
}

/// The counter partition invariants a *contained* faulty run must still
/// satisfy — the same properties `tests/counter_invariants.rs` asserts
/// for healthy runs, reported as a typed error instead of a panic so the
/// campaign can tabulate violations.
///
/// # Errors
///
/// Returns the first violated invariant, named.
pub fn check_invariants(c: &Counters) -> Result<(), String> {
    fn ensure(ok: bool, what: &str) -> Result<(), String> {
        if ok {
            Ok(())
        } else {
            Err(format!("counter invariant violated: {what}"))
        }
    }
    ensure(c.cycles >= c.instructions / 5, "commit width is 5/cycle")?;
    ensure(c.branches.taken <= c.branches.total, "taken <= total branches")?;
    ensure(c.branches.conditional <= c.branches.total, "conditional <= total branches")?;
    ensure(
        c.branches.direction_mispredictions <= c.branches.conditional,
        "direction mispredictions <= conditional branches",
    )?;
    ensure(c.l1d.misses <= c.l1d.accesses, "l1d misses <= accesses")?;
    ensure(c.l1i.misses <= c.l1i.accesses, "l1i misses <= accesses")?;
    ensure(c.l2.misses <= c.l2.accesses, "l2 misses <= accesses")?;
    ensure(c.l2.accesses <= c.l1i.misses + c.l1d.misses, "l2 accesses <= l1 misses")?;
    ensure(c.loads + c.stores == c.lsu_ops, "loads + stores == lsu ops")?;
    ensure(c.predicated_ops <= c.instructions, "predicated ops <= instructions")?;
    ensure(c.stalls.total() <= c.cycles, "stalls <= cycles")?;
    ensure(
        c.btac.correct + c.btac.incorrect <= c.btac.predictions,
        "btac outcomes <= predictions",
    )?;
    ensure(c.btac.predictions <= c.btac.lookups, "btac predictions <= lookups")?;
    Ok(())
}

/// The stall-partition invariant: when per-PC stall attribution is
/// enabled, the per-site breakdowns must sum exactly to the aggregate
/// stall counters.
///
/// # Errors
///
/// Returns a message naming the aggregate and summed totals on mismatch.
pub fn check_stall_partition(
    aggregate: &StallBreakdown,
    sites: &[(u32, StallBreakdown)],
) -> Result<(), String> {
    let mut sum = StallBreakdown::default();
    for (_, b) in sites {
        sum.merge(b);
    }
    if sum == *aggregate {
        Ok(())
    } else {
        Err(format!(
            "stall partition broken: per-PC sum {} != aggregate {}",
            sum.total(),
            aggregate.total()
        ))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn window() -> InjectionWindow {
        InjectionWindow {
            code_base: 0x1000,
            code_len: 0x400,
            data_base: 0x4_0000,
            data_len: 0x1000,
            max_instruction: 10_000,
        }
    }

    #[test]
    fn plans_are_reproducible_from_the_seed() {
        let a = FaultPlan::generate(42, 100, &window());
        let b = FaultPlan::generate(42, 100, &window());
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, 100, &window());
        assert_ne!(a, c);
    }

    #[test]
    fn plans_cover_every_fault_kind_and_stay_in_window() {
        let w = window();
        let plan = FaultPlan::generate(7, 500, &w);
        assert_eq!(plan.faults.len(), 500);
        for kind in FaultKind::ALL {
            assert!(
                plan.faults.iter().any(|f| f.kind == kind),
                "500-fault plan never drew {}",
                kind.name()
            );
        }
        for f in &plan.faults {
            assert!(f.at_instruction < w.max_instruction);
            match f.kind {
                FaultKind::InsnBitFlip => {
                    let pc = f.target as u32;
                    assert!(pc >= w.code_base && pc < w.code_base + w.code_len);
                    assert!(pc.is_multiple_of(4));
                }
                FaultKind::DataBitFlip => {
                    let a = f.target as u32;
                    assert!(a >= w.data_base && a < w.data_base + w.data_len);
                }
                FaultKind::RegBitFlip => assert!(f.target < 35),
                _ => {}
            }
        }
        assert!(plan.faults.windows(2).all(|p| p[0].at_instruction <= p[1].at_instruction));
    }

    #[test]
    fn invariant_checker_accepts_healthy_and_names_violations() {
        let mut c = Counters { cycles: 100, instructions: 80, ..Counters::default() };
        c.stalls.fxu = 40;
        assert!(check_invariants(&c).is_ok());
        c.stalls.fxu = 200; // stalls > cycles
        let err = check_invariants(&c).unwrap_err();
        assert!(err.contains("stalls <= cycles"), "{err}");
    }

    #[test]
    fn stall_partition_checker_detects_drift() {
        let agg = StallBreakdown { fxu: 5, load: 3, ..StallBreakdown::default() };
        let sites = vec![
            (0x1000, StallBreakdown { fxu: 2, load: 3, ..StallBreakdown::default() }),
            (0x1004, StallBreakdown { fxu: 3, ..StallBreakdown::default() }),
        ];
        assert!(check_stall_partition(&agg, &sites).is_ok());
        let short = &sites[..1];
        assert!(check_stall_partition(&agg, short).is_err());
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
