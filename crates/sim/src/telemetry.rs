//! Low-overhead runtime telemetry: fixed log2-bucket histograms, a
//! metrics registry, and a guest sampling profiler.
//!
//! The pieces here follow the same zero-cost-off discipline as
//! [`crate::trace::Tracer::Off`] and [`crate::oracle::LockstepMode::Off`]:
//! the machine holds an `Option<Box<GuestProfiler>>` that costs one
//! pointer test per *basic block* when `None`, and nothing at all per
//! instruction. The perf-smoke gate in CI enforces that the disabled
//! path stays free.
//!
//! [`Histogram`] is deliberately tiny and mergeable: 65 fixed buckets
//! (bucket 0 for the value 0, bucket *b* ≥ 1 for `[2^(b-1), 2^b)`), so
//! merging is element-wise addition — associative and commutative by
//! construction, which is what lets the parallel suite runner merge
//! per-worker registries and land on bit-identical totals regardless of
//! completion order.

use crate::trace::SymbolMap;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed log2-bucket histogram over `u64` values.
///
/// Bucket 0 counts the value 0; bucket `b >= 1` counts values in
/// `[2^(b-1), 2^b)`. Alongside the buckets it tracks exact `count`,
/// `sum`, `min`, and `max`, so means are exact and percentile estimates
/// can be clamped to the observed range.
///
/// # Example
///
/// ```
/// use power5_sim::telemetry::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.sum(), 106);
/// assert_eq!(h.max(), 100);
/// assert!(h.percentile(0.5) >= 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for a value: 0 for 0, otherwise the bit width.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one. Element-wise addition, so
    /// `merge` is associative and commutative (property-tested in the
    /// repo-level telemetry suite).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether no values were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Deterministic percentile estimate: walks the cumulative bucket
    /// counts to the bucket holding the `p`-th observation (`p` in
    /// `0.0..=1.0`) and returns that bucket's upper edge clamped to the
    /// observed `[min, max]` range. Exact for the extremes, within one
    /// power of two elsewhere.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                let upper = if b == 0 {
                    0
                } else if b >= 64 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(bucket_index, count)` pairs, for
    /// sparse serialization.
    pub fn sparse_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets.iter().enumerate().filter(|(_, n)| **n > 0).map(|(b, n)| (b, *n)).collect()
    }

    /// Rebuild a histogram from sparse `(bucket, count)` pairs plus the
    /// exact scalars — the inverse of [`Histogram::sparse_buckets`].
    pub fn from_parts(
        sparse: &[(usize, u64)],
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Histogram {
        let mut h = Histogram::new();
        for &(b, n) in sparse {
            if b < HISTOGRAM_BUCKETS {
                h.buckets[b] += n;
            }
        }
        h.count = count;
        h.sum = sum;
        h.min = if count == 0 { u64::MAX } else { min };
        h.max = max;
        h
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Backed by `BTreeMap`s so iteration (and therefore serialization) is
/// deterministic. Counter and histogram merges are commutative, which is
/// what makes parallel-suite totals independent of worker scheduling;
/// gauge merges are last-writer-wins and should only carry values that
/// are identical across workers (configuration echoes and the like).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `by` to the named counter (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// Merge a whole histogram into the named histogram.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms.entry(name.to_string()).or_default().merge(h);
    }

    /// Fold another registry into this one: counters add, gauges take
    /// the other's value, histograms merge element-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// The counters, in name order.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// The gauges, in name order.
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// The histograms, in name order.
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// Look up a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Look up a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// A sampling profiler over guest basic blocks.
///
/// The machine calls [`GuestProfiler::on_block`] (functional runs) or
/// [`GuestProfiler::on_block_timed`] (timed runs) once per *retired
/// basic block* — never per instruction — with the block's start PC and
/// retired length. The profiler advances an instruction-count phase
/// accumulator and attributes one sample to the block's PC every
/// `period` instructions, mirroring how a sampling profiler on real
/// hardware attributes ticks to the interrupted PC. Timed runs also feed
/// a per-block retire-latency histogram (commit-cycle delta between
/// consecutive blocks).
#[derive(Debug, Clone)]
pub struct GuestProfiler {
    period: u64,
    acc: u64,
    samples: HashMap<u32, u64>,
    blocks: u64,
    insns: u64,
    block_len: Histogram,
    retire_latency: Histogram,
    last_commit: u64,
}

impl GuestProfiler {
    /// A profiler sampling every `period` retired instructions
    /// (minimum 1).
    pub fn new(period: u64) -> Self {
        GuestProfiler {
            period: period.max(1),
            acc: 0,
            samples: HashMap::new(),
            blocks: 0,
            insns: 0,
            block_len: Histogram::new(),
            retire_latency: Histogram::new(),
            last_commit: 0,
        }
    }

    /// The sampling period in retired instructions.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Record one retired basic block (functional run): `pc` is the
    /// block's start address, `len` the number of instructions retired
    /// from it.
    #[inline]
    pub fn on_block(&mut self, pc: u32, len: u32) {
        if len == 0 {
            return;
        }
        self.blocks += 1;
        self.insns += u64::from(len);
        self.block_len.record(u64::from(len));
        self.acc += u64::from(len);
        if self.acc >= self.period {
            let k = self.acc / self.period;
            *self.samples.entry(pc).or_insert(0) += k;
            self.acc %= self.period;
        }
    }

    /// Record one retired basic block from a timed run. `commit` is the
    /// commit cycle of the block's last retired instruction; the delta
    /// against the previous block's commit feeds the retire-latency
    /// histogram.
    #[inline]
    pub fn on_block_timed(&mut self, pc: u32, len: u32, commit: u64) {
        if len == 0 {
            return;
        }
        let delta = commit.saturating_sub(self.last_commit);
        self.last_commit = self.last_commit.max(commit);
        self.retire_latency.record(delta);
        self.on_block(pc, len);
    }

    /// Total retired blocks observed.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Total retired instructions observed.
    pub fn insns(&self) -> u64 {
        self.insns
    }

    /// Symbolize and aggregate into a [`ProfilerReport`]. Samples are
    /// attributed to the enclosing symbol when `symbols` resolves the
    /// block PC, and to a `0x`-prefixed hex address otherwise.
    pub fn report(&self, symbols: Option<&SymbolMap>) -> ProfilerReport {
        let mut regions: BTreeMap<String, u64> = BTreeMap::new();
        for (&pc, &n) in &self.samples {
            let name = symbols
                .and_then(|s| s.resolve(pc))
                .map(|(sym, _)| sym.to_string())
                .unwrap_or_else(|| format!("0x{pc:08x}"));
            *regions.entry(name).or_insert(0) += n;
        }
        let mut hot_regions: Vec<HotRegion> =
            regions.into_iter().map(|(name, samples)| HotRegion { name, samples }).collect();
        hot_regions.sort_by(|a, b| b.samples.cmp(&a.samples).then_with(|| a.name.cmp(&b.name)));
        ProfilerReport {
            period: self.period,
            blocks: self.blocks,
            insns: self.insns,
            total_samples: hot_regions.iter().map(|r| r.samples).sum(),
            hot_regions,
            block_len: self.block_len.clone(),
            retire_latency: self.retire_latency.clone(),
        }
    }
}

/// One symbolized hot region in a [`ProfilerReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotRegion {
    /// Symbol name (or hex address when unsymbolized).
    pub name: String,
    /// Samples attributed to the region.
    pub samples: u64,
}

/// Aggregated, symbolized output of a [`GuestProfiler`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfilerReport {
    /// Sampling period in retired instructions.
    pub period: u64,
    /// Retired basic blocks observed.
    pub blocks: u64,
    /// Retired instructions observed.
    pub insns: u64,
    /// Total samples across all regions.
    pub total_samples: u64,
    /// Hot regions, most-sampled first (ties broken by name).
    pub hot_regions: Vec<HotRegion>,
    /// Histogram of retired-block lengths (instructions).
    pub block_len: Histogram,
    /// Histogram of per-block commit-cycle deltas (timed runs only).
    pub retire_latency: Histogram,
}

impl ProfilerReport {
    /// Fold another report into this one (used when a job's profile is
    /// accumulated across resume attempts or merged across workers).
    pub fn merge(&mut self, other: &ProfilerReport) {
        if self.period == 0 {
            self.period = other.period;
        }
        self.blocks += other.blocks;
        self.insns += other.insns;
        self.total_samples += other.total_samples;
        let mut by_name: BTreeMap<String, u64> = BTreeMap::new();
        for r in self.hot_regions.iter().chain(other.hot_regions.iter()) {
            *by_name.entry(r.name.clone()).or_insert(0) += r.samples;
        }
        self.hot_regions =
            by_name.into_iter().map(|(name, samples)| HotRegion { name, samples }).collect();
        self.hot_regions
            .sort_by(|a, b| b.samples.cmp(&a.samples).then_with(|| a.name.cmp(&b.name)));
        self.block_len.merge(&other.block_len);
        self.retire_latency.merge(&other.retire_latency);
    }

    /// Render folded-stack lines (`guest;<region> <samples>`), the input
    /// format flamegraph tooling consumes. Lines come out hottest-first.
    pub fn folded_stacks(&self) -> Vec<String> {
        self.hot_regions.iter().map(|r| format!("guest;{} {}", r.name, r.samples)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_records_scalars_exactly() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        for v in [0u64, 1, 7, 7, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1039);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        assert!((h.mean() - 207.8).abs() < 1e-9);
    }

    #[test]
    fn percentile_is_monotone_and_clamped() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max());
        assert!(h.percentile(0.0) >= h.min());
        assert_eq!(h.percentile(1.0), h.max());
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn merge_matches_interleaved_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 0, 99, 4096, 17] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 1, 2, 1_000_000] {
            b.record(v);
            all.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, all);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ba, all);
    }

    #[test]
    fn sparse_roundtrip() {
        let mut h = Histogram::new();
        for v in [0u64, 5, 5, 300] {
            h.record(v);
        }
        let back = Histogram::from_parts(&h.sparse_buckets(), h.count(), h.sum(), h.min(), h.max());
        assert_eq!(back, h);
        let empty = Histogram::from_parts(&[], 0, 0, 0, 0);
        assert_eq!(empty, Histogram::new());
    }

    #[test]
    fn registry_merges_commutatively() {
        let mut a = MetricsRegistry::new();
        a.inc("jobs", 2);
        a.observe("wall", 10);
        a.set_gauge("threads", 4.0);
        let mut b = MetricsRegistry::new();
        b.inc("jobs", 3);
        b.observe("wall", 90);
        b.set_gauge("threads", 4.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("jobs"), 5);
        assert_eq!(ab.histogram("wall").unwrap().count(), 2);
        assert!(!ab.is_empty());
        assert!(MetricsRegistry::new().is_empty());
    }

    #[test]
    fn profiler_samples_every_period_instructions() {
        let mut p = GuestProfiler::new(10);
        // 25 instructions at pc 0x1000 -> 2 samples; 15 more at 0x2000
        // (acc carries 5 over) -> 2 samples.
        for _ in 0..5 {
            p.on_block(0x1000, 5);
        }
        for _ in 0..3 {
            p.on_block(0x2000, 5);
        }
        p.on_block(0x3000, 0); // zero-length blocks are ignored
        assert_eq!(p.blocks(), 8);
        assert_eq!(p.insns(), 40);
        let r = p.report(None);
        assert_eq!(r.total_samples, 4);
        assert_eq!(r.insns, 40);
        assert_eq!(r.block_len.count(), 8);
        assert_eq!(r.block_len.max(), 5);
        let names: Vec<&str> = r.hot_regions.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, vec!["0x00001000", "0x00002000"]);
    }

    #[test]
    fn profiler_symbolizes_through_symbol_map() {
        let map = SymbolMap::new(vec![("band_half", 0x1000), ("forward_pass", 0x2000)]);
        let mut p = GuestProfiler::new(1);
        p.on_block(0x1004, 3);
        p.on_block(0x2010, 2);
        p.on_block(0x1008, 4);
        let r = p.report(Some(&map));
        assert_eq!(r.hot_regions[0].name, "band_half");
        assert_eq!(r.hot_regions[0].samples, 7);
        assert_eq!(r.hot_regions[1].name, "forward_pass");
        let folded = r.folded_stacks();
        assert_eq!(folded[0], "guest;band_half 7");
    }

    #[test]
    fn timed_blocks_feed_retire_latency() {
        let mut p = GuestProfiler::new(4);
        p.on_block_timed(0x1000, 4, 10);
        p.on_block_timed(0x1000, 4, 25);
        let r = p.report(None);
        assert_eq!(r.retire_latency.count(), 2);
        assert_eq!(r.retire_latency.min(), 10);
        assert_eq!(r.retire_latency.max(), 15);
        assert_eq!(r.total_samples, 2);
    }

    #[test]
    fn reports_merge_by_region() {
        let mut p1 = GuestProfiler::new(1);
        p1.on_block(0x1000, 2);
        let mut p2 = GuestProfiler::new(1);
        p2.on_block(0x1000, 1);
        p2.on_block(0x2000, 4);
        let mut r = p1.report(None);
        r.merge(&p2.report(None));
        assert_eq!(r.total_samples, 7);
        assert_eq!(r.hot_regions.len(), 2);
        assert_eq!(r.hot_regions[0].name, "0x00002000");
        assert_eq!(r.hot_regions[0].samples, 4);
        assert_eq!(r.hot_regions[1].samples, 3);
        assert_eq!(r.blocks, 3);
    }
}
