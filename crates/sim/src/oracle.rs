//! Golden-model lockstep oracle and divergence triage.
//!
//! The fast interpreter in [`crate::machine`] earns its speed from a
//! pre-decoded dense code table and run-length basic-block dispatch —
//! exactly the kind of machinery that can silently drift from the
//! architecture it models. This module provides the counterweight: a
//! deliberately simple, obviously-correct reference interpreter (the
//! [`Oracle`]) that fetches the raw instruction word from memory,
//! decodes it, and executes it with no pre-decode, no block cache, and
//! no dispatch cleverness at all.
//!
//! Three pieces:
//!
//! * **Lockstep checking** ([`LockstepMode`]): the [`crate::Machine`]
//!   re-derives every checked commit independently — raw fetch, fresh
//!   decode, execution of a cloned pre-state — and compares next-PC,
//!   GPR/CR/LR/CTR writes, and the memory/branch/halt effects against
//!   the fast path. `Off` is literally zero-cost (the fast run loops are
//!   untouched); `Sampled` checks a seeded pseudo-random subset;
//!   `Full` checks every instruction. The machine model carries no XER,
//!   so the comparison covers the architectural fields that exist
//!   (PC, GPRs, CR, LR, CTR) — see DESIGN.md §12.
//! * **Divergence records** ([`Divergence`]): the first mismatching
//!   architectural field, both values, a human-readable note, and the
//!   last [`RECENT_PCS`] committed PCs for context.
//! * **Triage** ([`shrink_divergence`]): a checkpoint-bisecting
//!   delta-debugger that narrows a detected divergence to a window of at
//!   most `max_span` instructions and replays it under full lockstep to
//!   pinpoint the first divergent commit, producing a [`ShrunkRepro`]
//!   that serializes as a `bioarch-divergence/v1` document (see the
//!   `bioarch` crate's `checkpoint` module).

#![deny(clippy::unwrap_used)]

use crate::fault::XorShift64;
use crate::machine::{Checkpoint, Machine, RunResult, StopReason, Trap, TrapCause, Watchdog};
use ppc_isa::{decode, step, CpuState, Instruction, Memory, StepEvent};
use std::fmt;

/// How many committed PCs a [`Divergence`] record retains for context.
pub const RECENT_PCS: usize = 32;

/// Lockstep verification policy for a [`Machine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LockstepMode {
    /// No checking. The fast run loops are used unchanged; this is the
    /// default and has zero cost.
    #[default]
    Off,
    /// Check a seeded pseudo-random subset of commits: successive checks
    /// are `1 + below(period)` instructions apart, so `period` is the
    /// mean sampling gap and the schedule is reproducible from `seed`.
    Sampled {
        /// Mean gap between checked instructions.
        period: u64,
        /// PRNG seed for the sampling schedule.
        seed: u64,
    },
    /// Check every committed instruction.
    Full,
}

/// The first architectural field found to disagree between the fast
/// path and the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchField {
    /// The decode table disagrees with decoding the raw memory word.
    Decode,
    /// The next program counter.
    NextPc,
    /// A general-purpose register (0–31).
    Gpr(u8),
    /// The condition register.
    Cr,
    /// The link register.
    Lr,
    /// The count register.
    Ctr,
    /// The halted flag of the step event.
    Halted,
    /// The branch outcome of the step event.
    Branch,
    /// The memory effect of the step event.
    MemEffect,
}

impl ArchField {
    /// Stable machine-readable code, used by the `bioarch-divergence/v1`
    /// serialization.
    pub fn code(self) -> String {
        match self {
            ArchField::Decode => "decode".to_string(),
            ArchField::NextPc => "next-pc".to_string(),
            ArchField::Gpr(i) => format!("gpr{i}"),
            ArchField::Cr => "cr".to_string(),
            ArchField::Lr => "lr".to_string(),
            ArchField::Ctr => "ctr".to_string(),
            ArchField::Halted => "halted".to_string(),
            ArchField::Branch => "branch".to_string(),
            ArchField::MemEffect => "mem-effect".to_string(),
        }
    }

    /// Inverse of [`ArchField::code`].
    pub fn parse(code: &str) -> Option<ArchField> {
        match code {
            "decode" => Some(ArchField::Decode),
            "next-pc" => Some(ArchField::NextPc),
            "cr" => Some(ArchField::Cr),
            "lr" => Some(ArchField::Lr),
            "ctr" => Some(ArchField::Ctr),
            "halted" => Some(ArchField::Halted),
            "branch" => Some(ArchField::Branch),
            "mem-effect" => Some(ArchField::MemEffect),
            _ => {
                let n: u8 = code.strip_prefix("gpr")?.parse().ok()?;
                (n < 32).then_some(ArchField::Gpr(n))
            }
        }
    }
}

impl fmt::Display for ArchField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// A detected disagreement between the fast path and the oracle at one
/// committed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// PC of the divergent instruction.
    pub pc: u32,
    /// Lifetime committed-instruction index of the divergent commit
    /// (0-based; equals `insns_total - 1` at detection time).
    pub instruction: u64,
    /// First mismatching field.
    pub field: ArchField,
    /// The oracle's value for the field (encoded; see the field docs in
    /// DESIGN.md §12 for event encodings).
    pub expected: u64,
    /// The fast path's value for the field.
    pub actual: u64,
    /// Human-readable one-line diagnosis.
    pub note: String,
    /// The last committed PCs (oldest first, ending with the divergent
    /// instruction's PC).
    pub recent_pcs: Vec<u32>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "divergence at pc {:#010x} (instruction {}): field {} expected {:#x} actual {:#x}",
            self.pc, self.instruction, self.field, self.expected, self.actual
        )?;
        writeln!(f, "  {}", self.note)?;
        write!(f, "  last {} committed pcs:", self.recent_pcs.len())?;
        for (i, pc) in self.recent_pcs.iter().enumerate() {
            if i % 8 == 0 {
                write!(f, "\n   ")?;
            }
            write!(f, " {pc:#010x}")?;
        }
        Ok(())
    }
}

/// Encode a [`StepEvent`] branch outcome for a [`Divergence`] record:
/// bit 40 set = no branch, else bit 32 = taken, low 32 bits = target.
fn enc_branch(b: Option<(bool, u32)>) -> u64 {
    match b {
        None => 1 << 40,
        Some((taken, target)) => (u64::from(taken) << 32) | u64::from(target),
    }
}

/// Encode a [`StepEvent`] memory effect: bit 48 set = none, else bit 40
/// = store, bits 32–39 = width, low 32 bits = address.
fn enc_mem(m: Option<(u32, u32, bool)>) -> u64 {
    match m {
        None => 1 << 48,
        Some((addr, width, store)) => {
            (u64::from(store) << 40) | (u64::from(width & 0xff) << 32) | u64::from(addr)
        }
    }
}

/// In-machine lockstep checker state. Owned by [`Machine`] when a
/// non-[`LockstepMode::Off`] mode is installed; deliberately excluded
/// from checkpoints (like the tracer, it is harness state, not
/// simulation state).
#[derive(Debug, Clone)]
pub struct Lockstep {
    mode: LockstepMode,
    rng: XorShift64,
    /// Commits to skip before the next check (0 = check the next one).
    gap: u64,
    /// Ring of the last [`RECENT_PCS`] committed PCs.
    recent: Vec<u32>,
    head: usize,
    divergence: Option<Divergence>,
}

impl Lockstep {
    /// Build checker state for `mode`. Returns `None` for
    /// [`LockstepMode::Off`].
    pub fn new(mode: LockstepMode) -> Option<Lockstep> {
        match mode {
            LockstepMode::Off => None,
            LockstepMode::Sampled { period, seed } => {
                let mut rng = XorShift64::new(seed);
                let gap = rng.below(period.max(1));
                Some(Lockstep { mode, rng, gap, recent: Vec::new(), head: 0, divergence: None })
            }
            LockstepMode::Full => Some(Lockstep {
                mode,
                rng: XorShift64::new(1),
                gap: 0,
                recent: Vec::new(),
                head: 0,
                divergence: None,
            }),
        }
    }

    /// The installed mode.
    pub fn mode(&self) -> LockstepMode {
        self.mode
    }

    /// Whether the instruction about to commit should be checked;
    /// advances the sampling schedule.
    pub(crate) fn check_due(&mut self) -> bool {
        match self.mode {
            LockstepMode::Off => false,
            LockstepMode::Full => true,
            LockstepMode::Sampled { period, .. } => {
                if self.gap == 0 {
                    self.gap = 1 + self.rng.below(period.max(1));
                    true
                } else {
                    self.gap -= 1;
                    false
                }
            }
        }
    }

    /// Record a committed PC in the context ring.
    pub(crate) fn note_commit(&mut self, pc: u32) {
        if self.recent.len() < RECENT_PCS {
            self.recent.push(pc);
        } else {
            self.recent[self.head] = pc;
            self.head = (self.head + 1) % RECENT_PCS;
        }
    }

    /// The ring contents, oldest first.
    fn recent_pcs(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.recent.len());
        for i in 0..self.recent.len() {
            out.push(self.recent[(self.head + i) % self.recent.len().max(1)]);
        }
        out
    }

    /// Remove and return the recorded divergence.
    pub(crate) fn take_divergence(&mut self) -> Option<Divergence> {
        self.divergence.take()
    }

    /// Re-derive one commit independently and compare it against what
    /// the fast path did. `pre` is the architectural state before the
    /// instruction (the divergent PC is `pre.pc`), `post` the state the
    /// fast path produced, `fast_insn`/`fast_ev` what the fast path
    /// executed and observed. `mem` is the shared memory *after* the
    /// fast path's step; re-executing against it is safe because a
    /// correct store re-stores identical bytes and the comparison stops
    /// the run at the first divergence.
    ///
    /// Returns `true` when a divergence was recorded.
    pub(crate) fn verify_commit(
        &mut self,
        pre: &CpuState,
        post: &CpuState,
        mem: &mut Memory,
        fast_insn: &Instruction,
        fast_ev: StepEvent,
        index: u64,
    ) -> bool {
        let pc = pre.pc;
        let recent = self.recent_pcs();
        let mut diverge = |field, expected, actual, note: String| {
            self.divergence = Some(Divergence {
                pc,
                instruction: index,
                field,
                expected,
                actual,
                note,
                recent_pcs: recent.clone(),
            });
            true
        };
        // 1. Independent fetch and decode straight from memory.
        let word = match mem.load_u32(pc) {
            Ok(w) => w,
            Err(e) => {
                return diverge(
                    ArchField::Decode,
                    0,
                    0,
                    format!("oracle cannot fetch the instruction word at {pc:#010x}: {e}"),
                );
            }
        };
        let oracle_insn = match decode(word) {
            Ok(i) => i,
            Err(_) => {
                return diverge(
                    ArchField::Decode,
                    u64::from(word),
                    0,
                    format!(
                        "memory word {word:#010x} does not decode, but the fast path \
                         executed {fast_insn:?}"
                    ),
                );
            }
        };
        if oracle_insn != *fast_insn {
            return diverge(
                ArchField::Decode,
                u64::from(word),
                0,
                format!(
                    "memory word {word:#010x} decodes to {oracle_insn:?}, but the decode \
                     table holds {fast_insn:?}"
                ),
            );
        }
        // 2. Independent execution of a cloned pre-state.
        let mut shadow = pre.clone();
        let oracle_ev = match step(&mut shadow, mem, &oracle_insn) {
            Ok(ev) => ev,
            Err(e) => {
                return diverge(
                    ArchField::MemEffect,
                    0,
                    enc_mem(fast_ev.mem),
                    format!("oracle faulted re-executing {oracle_insn:?}: {e}"),
                );
            }
        };
        // 3. Compare the observable step events.
        if oracle_ev.halted != fast_ev.halted {
            return diverge(
                ArchField::Halted,
                u64::from(oracle_ev.halted),
                u64::from(fast_ev.halted),
                format!("halt disagreement on {oracle_insn:?}"),
            );
        }
        if oracle_ev.branch != fast_ev.branch {
            return diverge(
                ArchField::Branch,
                enc_branch(oracle_ev.branch),
                enc_branch(fast_ev.branch),
                format!(
                    "branch outcome disagreement on {oracle_insn:?}: oracle {:?}, fast {:?}",
                    oracle_ev.branch, fast_ev.branch
                ),
            );
        }
        if oracle_ev.mem != fast_ev.mem {
            return diverge(
                ArchField::MemEffect,
                enc_mem(oracle_ev.mem),
                enc_mem(fast_ev.mem),
                format!(
                    "memory effect disagreement on {oracle_insn:?}: oracle {:?}, fast {:?}",
                    oracle_ev.mem, fast_ev.mem
                ),
            );
        }
        // 4. Compare the post-instruction architectural state.
        if shadow.pc != post.pc {
            return diverge(
                ArchField::NextPc,
                u64::from(shadow.pc),
                u64::from(post.pc),
                format!("next-pc disagreement after {oracle_insn:?}"),
            );
        }
        for i in 0..32 {
            if shadow.gpr[i] != post.gpr[i] {
                return diverge(
                    ArchField::Gpr(i as u8),
                    u64::from(shadow.gpr[i]),
                    u64::from(post.gpr[i]),
                    format!("r{i} disagreement after {oracle_insn:?}"),
                );
            }
        }
        if shadow.cr != post.cr {
            return diverge(
                ArchField::Cr,
                u64::from(shadow.cr.0),
                u64::from(post.cr.0),
                format!("cr disagreement after {oracle_insn:?}"),
            );
        }
        if shadow.lr != post.lr {
            return diverge(
                ArchField::Lr,
                u64::from(shadow.lr),
                u64::from(post.lr),
                format!("lr disagreement after {oracle_insn:?}"),
            );
        }
        if shadow.ctr != post.ctr {
            return diverge(
                ArchField::Ctr,
                u64::from(shadow.ctr),
                u64::from(post.ctr),
                format!("ctr disagreement after {oracle_insn:?}"),
            );
        }
        false
    }

    /// Record a divergence (shared by the scalar and fused verifiers).
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        pc: u32,
        index: u64,
        field: ArchField,
        expected: u64,
        actual: u64,
        note: String,
        recent: &[u32],
    ) -> bool {
        self.divergence = Some(Divergence {
            pc,
            instruction: index,
            field,
            expected,
            actual,
            note,
            recent_pcs: recent.to_vec(),
        });
        true
    }

    /// Verify one *fused* commit (DESIGN §16): re-derive the
    /// superinstruction's `retired` constituent instructions one at a
    /// time with the reference semantics, starting from `pre`, then
    /// compare the final architectural state against what the fused
    /// handler produced. Each constituent is independently fetched and
    /// decoded from memory and cross-checked against the decode table,
    /// so a stale table surfaces exactly like a scalar decode bug — at
    /// the first wrong constituent — while a broken fusion *rule*
    /// (wrong pre-extracted operands, inverted branch sense) surfaces
    /// as a state mismatch attributed to the op's last constituent.
    /// `base_index` is the commit index of the first constituent.
    ///
    /// Only store-free fused ops are verified this way (the checked
    /// run loop routes store-bearing ops to the scalar path), so the
    /// reference replay cannot perturb memory.
    ///
    /// Returns `true` when a divergence was recorded.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn verify_fused(
        &mut self,
        pre: &CpuState,
        post: &CpuState,
        mem: &mut Memory,
        decoded: &[Instruction],
        code_base: u32,
        retired: u32,
        base_index: u64,
    ) -> bool {
        let recent = self.recent_pcs();
        let mut shadow = pre.clone();
        let mut last_pc = pre.pc;
        for k in 0..retired {
            let pc = shadow.pc;
            last_pc = pc;
            let index = base_index + u64::from(k);
            // Independent fetch and decode straight from memory.
            let word = match mem.load_u32(pc) {
                Ok(w) => w,
                Err(e) => {
                    return self.record(
                        pc,
                        index,
                        ArchField::Decode,
                        0,
                        0,
                        format!("oracle cannot fetch the instruction word at {pc:#010x}: {e}"),
                        &recent,
                    );
                }
            };
            let oracle_insn = match decode(word) {
                Ok(i) => i,
                Err(_) => {
                    return self.record(
                        pc,
                        index,
                        ArchField::Decode,
                        u64::from(word),
                        0,
                        format!(
                            "memory word {word:#010x} does not decode, but a fused op retired it"
                        ),
                        &recent,
                    );
                }
            };
            // Cross-check the decode table the fused block was compiled
            // from, mirroring the scalar verifier's decode stage.
            let slot = pc.wrapping_sub(code_base) as usize / 4;
            if pc.is_multiple_of(4) {
                if let Some(table_insn) = decoded.get(slot) {
                    if oracle_insn != *table_insn {
                        return self.record(
                            pc,
                            index,
                            ArchField::Decode,
                            u64::from(word),
                            0,
                            format!(
                                "memory word {word:#010x} decodes to {oracle_insn:?}, but the \
                                 decode table holds {table_insn:?}"
                            ),
                            &recent,
                        );
                    }
                }
            }
            // Reference execution of the constituent.
            if let Err(e) = step(&mut shadow, mem, &oracle_insn) {
                return self.record(
                    pc,
                    index,
                    ArchField::MemEffect,
                    0,
                    0,
                    format!("oracle faulted re-executing {oracle_insn:?}: {e}"),
                    &recent,
                );
            }
        }
        // Compare the post-op architectural state, attributed to the
        // last replayed constituent.
        let pc = last_pc;
        let index = base_index + u64::from(retired.max(1)) - 1;
        if shadow.pc != post.pc {
            return self.record(
                pc,
                index,
                ArchField::NextPc,
                u64::from(shadow.pc),
                u64::from(post.pc),
                "next-pc disagreement after a fused op".to_string(),
                &recent,
            );
        }
        for i in 0..32 {
            if shadow.gpr[i] != post.gpr[i] {
                return self.record(
                    pc,
                    index,
                    ArchField::Gpr(i as u8),
                    u64::from(shadow.gpr[i]),
                    u64::from(post.gpr[i]),
                    format!("r{i} disagreement after a fused op"),
                    &recent,
                );
            }
        }
        if shadow.cr != post.cr {
            return self.record(
                pc,
                index,
                ArchField::Cr,
                u64::from(shadow.cr.0),
                u64::from(post.cr.0),
                "cr disagreement after a fused op".to_string(),
                &recent,
            );
        }
        if shadow.lr != post.lr {
            return self.record(
                pc,
                index,
                ArchField::Lr,
                u64::from(shadow.lr),
                u64::from(post.lr),
                "lr disagreement after a fused op".to_string(),
                &recent,
            );
        }
        if shadow.ctr != post.ctr {
            return self.record(
                pc,
                index,
                ArchField::Ctr,
                u64::from(shadow.ctr),
                u64::from(post.ctr),
                "ctr disagreement after a fused op".to_string(),
                &recent,
            );
        }
        false
    }
}

/// The reference interpreter: straight-line fetch → decode → execute
/// over a private copy of the raw memory image. No pre-decode, no block
/// cache, no timing — each step fetches the word at `pc` from memory
/// and decodes it from scratch. Obviously correct by construction, and
/// therefore the arbiter when the fast path disagrees.
#[derive(Debug, Clone)]
pub struct Oracle {
    cpu: CpuState,
    mem: Memory,
    halted: bool,
    executed: u64,
}

impl Oracle {
    /// Load `image` at `base` and start at `entry`, mirroring
    /// [`Machine::try_new`].
    ///
    /// # Errors
    ///
    /// Returns the out-of-bounds fault when the image does not fit.
    pub fn new(
        image: &[u8],
        base: u32,
        entry: u32,
        mem_size: usize,
    ) -> Result<Oracle, ppc_isa::exec::MemFault> {
        let mut mem = Memory::new(mem_size);
        mem.write_bytes(base, image)?;
        Ok(Oracle { cpu: CpuState::new(entry), mem, halted: false, executed: 0 })
    }

    /// Snapshot a machine's architectural state (CPU, memory, halted
    /// flag) into an independent oracle. Decode tables are irrelevant:
    /// the oracle always fetches from its memory copy.
    pub fn from_machine(m: &Machine) -> Oracle {
        Oracle { cpu: m.cpu().clone(), mem: m.mem().clone(), halted: m.halted(), executed: 0 }
    }

    /// Architectural CPU state.
    pub fn cpu(&self) -> &CpuState {
        &self.cpu
    }

    /// The oracle's memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Whether the program has executed `trap`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Instructions executed by this oracle instance.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Execute one instruction the slow, obvious way.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] (cycle 0 — the oracle has no clock) on a
    /// misaligned PC, an undecodable word, or a memory fault.
    pub fn step(&mut self) -> Result<StepEvent, Trap> {
        let pc = self.cpu.pc;
        let trap = |cause| Trap { cause, pc, cycle: 0 };
        if !pc.is_multiple_of(4) {
            return Err(trap(TrapCause::MisalignedFetch));
        }
        let word = self.mem.load_u32(pc).map_err(|_| trap(TrapCause::BadInstruction))?;
        let insn = decode(word).map_err(|_| trap(TrapCause::BadInstruction))?;
        let ev = step(&mut self.cpu, &mut self.mem, &insn).map_err(|m| trap(TrapCause::Mem(m)))?;
        self.executed += 1;
        if ev.halted {
            self.halted = true;
        }
        Ok(ev)
    }

    /// Run for at most `max_insns` instructions (or until `trap`).
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] as in [`Oracle::step`].
    pub fn run(&mut self, max_insns: u64) -> Result<RunResult, Trap> {
        let mut executed = 0;
        while executed < max_insns && !self.halted {
            self.step()?;
            executed += 1;
        }
        let stop = if self.halted { StopReason::Halted } else { StopReason::Budget };
        Ok(RunResult { executed, halted: self.halted, stop })
    }
}

/// A minimized divergence reproduction: restore [`ShrunkRepro::start`],
/// re-apply the fast-path defect, run at most [`ShrunkRepro::span`]
/// instructions under [`LockstepMode::Full`], and the recorded
/// [`ShrunkRepro::divergence`] fires again. Serialized as
/// `bioarch-divergence/v1` by the `bioarch` crate.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrunkRepro {
    /// Lifetime instruction index of the first divergent commit.
    pub first_divergent: u64,
    /// Checkpoint at the start of the minimized window, on the true
    /// (fast-path) trajectory.
    pub start: Checkpoint,
    /// Instructions from the start checkpoint to the divergent commit,
    /// inclusive (at most the `max_span` passed to
    /// [`shrink_divergence`]).
    pub span: u64,
    /// The pinpointed divergence.
    pub divergence: Divergence,
}

/// Outcome of one bisection probe.
enum Probe {
    /// Both trajectories agree over the whole window.
    Converged,
    /// They disagree somewhere inside the window.
    Diverged,
    /// Both trajectories stop identically (halt or trap) before the
    /// window ends — there is no divergence left to find.
    Ended,
}

/// Run the machine (lockstep off, fast path) and an independent
/// [`Oracle`] for `steps` instructions from the machine's current state
/// and report whether they agree at the end. Comparing only the end
/// state keeps probes cheap; the final full-lockstep replay pinpoints
/// the exact instruction.
fn probe_window(m: &mut Machine, steps: u64) -> Probe {
    let mut oracle = Oracle::from_machine(m);
    let fast = m.run_functional(steps);
    let slow = oracle.run(steps);
    match (fast, slow) {
        (Ok(fr), Ok(or)) => {
            let same_state =
                m.cpu() == oracle.cpu() && m.mem() == oracle.mem() && m.halted() == oracle.halted();
            if fr.executed == or.executed && fr.halted == or.halted && same_state {
                if fr.executed < steps {
                    Probe::Ended
                } else {
                    Probe::Converged
                }
            } else {
                Probe::Diverged
            }
        }
        (Err(ft), Err(ot)) => {
            if ft == ot && m.cpu() == oracle.cpu() && m.mem() == oracle.mem() {
                Probe::Ended
            } else {
                Probe::Diverged
            }
        }
        _ => Probe::Diverged,
    }
}

/// Delta-debug a detected divergence down to a window of at most
/// `max_span` instructions and pinpoint its first divergent commit.
///
/// `m` must be configured identically to the machine that detected the
/// divergence; `start` is a checkpoint on the true (fast-path)
/// trajectory at or before the divergence — typically taken just before
/// the run that diverged. `reapply` re-installs the fast-path defect
/// after every restore: [`Machine::restore`] rebuilds the decode table
/// from memory, which silently repairs table-only corruption such as
/// [`Machine::inject_decode_bug`], so the shrinker calls it after each
/// rewind (a no-op closure is fine for memory-backed faults).
/// `detected_at` is the lifetime instruction index where lockstep
/// caught the divergence (an upper bound for the bisection).
///
/// The shrinker bisects with cheap end-state probes (fast path vs an
/// independent [`Oracle`], no lockstep) and finishes with one
/// [`LockstepMode::Full`] replay over the final window. The machine is
/// left at the divergent commit; its watchdog is cleared.
///
/// # Errors
///
/// Returns a message when the window cannot be narrowed (e.g. the
/// divergence does not reproduce from `start`, or both trajectories end
/// before it).
pub fn shrink_divergence(
    m: &mut Machine,
    start: &Checkpoint,
    reapply: &mut dyn FnMut(&mut Machine),
    detected_at: u64,
    max_span: u64,
) -> Result<ShrunkRepro, String> {
    let max_span = max_span.max(1);
    // Probes compare end states against an independent oracle; any
    // leftover lockstep mode from the detecting run would only slow them
    // down (and could stop them early).
    m.set_lockstep(LockstepMode::Off);
    let rewind = |m: &mut Machine, ck: &Checkpoint, reapply: &mut dyn FnMut(&mut Machine)| {
        m.restore(ck)?;
        m.set_watchdog(Watchdog::default());
        reapply(m);
        Ok::<(), String>(())
    };
    let mut lo = start.insns_total;
    let mut hi = detected_at.saturating_add(1).max(lo + 1);
    let mut ck_lo = start.clone();
    // Sanity probe: the divergence must reproduce inside (lo, hi].
    rewind(m, &ck_lo, reapply)?;
    match probe_window(m, hi - lo) {
        Probe::Diverged => {}
        Probe::Converged => {
            return Err(format!(
                "no divergence reproduces in instructions {lo}..{hi} from the start checkpoint"
            ));
        }
        Probe::Ended => {
            return Err(format!(
                "both trajectories end before instruction {hi}; nothing to shrink"
            ));
        }
    }
    while hi - lo > max_span {
        let mid = lo + (hi - lo) / 2;
        rewind(m, &ck_lo, reapply)?;
        match probe_window(m, mid - lo) {
            Probe::Converged => {
                // The fast path is still correct at `mid`; advance the
                // window start along the true trajectory.
                lo = mid;
                ck_lo = m.checkpoint();
            }
            Probe::Diverged => hi = mid,
            Probe::Ended => {
                return Err(format!(
                    "trajectories end inside the probe window at instruction {mid}"
                ));
            }
        }
    }
    // Pinpoint pass: full lockstep over the final window.
    rewind(m, &ck_lo, reapply)?;
    m.set_lockstep(LockstepMode::Full);
    let replay = m.run_functional(hi - lo);
    let diverged = matches!(replay, Ok(RunResult { stop: StopReason::Diverged, .. }));
    // Read the record out before switching the mode off — dropping the
    // checker discards it.
    let divergence = m.take_divergence().filter(|_| diverged);
    m.set_lockstep(LockstepMode::Off);
    let divergence = divergence
        .ok_or_else(|| format!("divergence did not reproduce in final window {lo}..{hi}"))?;
    let span = divergence.instruction + 1 - lo;
    Ok(ShrunkRepro { first_divergent: divergence.instruction, start: ck_lo, span, divergence })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn arch_field_codes_roundtrip() {
        let fields = [
            ArchField::Decode,
            ArchField::NextPc,
            ArchField::Gpr(0),
            ArchField::Gpr(31),
            ArchField::Cr,
            ArchField::Lr,
            ArchField::Ctr,
            ArchField::Halted,
            ArchField::Branch,
            ArchField::MemEffect,
        ];
        for f in fields {
            assert_eq!(ArchField::parse(&f.code()), Some(f), "{f}");
        }
        assert_eq!(ArchField::parse("gpr32"), None);
        assert_eq!(ArchField::parse("xer"), None);
    }

    #[test]
    fn sampled_schedule_is_deterministic_and_mode_off_never_checks() {
        let mut a = Lockstep::new(LockstepMode::Sampled { period: 10, seed: 42 }).unwrap();
        let mut b = Lockstep::new(LockstepMode::Sampled { period: 10, seed: 42 }).unwrap();
        let sa: Vec<bool> = (0..200).map(|_| a.check_due()).collect();
        let sb: Vec<bool> = (0..200).map(|_| b.check_due()).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&c| c), "a 200-commit window must sample at least once");
        assert!(Lockstep::new(LockstepMode::Off).is_none());
        let mut full = Lockstep::new(LockstepMode::Full).unwrap();
        assert!((0..10).all(|_| full.check_due()));
    }

    #[test]
    fn recent_pc_ring_keeps_the_last_entries_in_order() {
        let mut ls = Lockstep::new(LockstepMode::Full).unwrap();
        for pc in 0..40u32 {
            ls.note_commit(pc * 4);
        }
        let recent = ls.recent_pcs();
        assert_eq!(recent.len(), RECENT_PCS);
        let expect: Vec<u32> = (8..40).map(|pc| pc * 4).collect();
        assert_eq!(recent, expect);
    }

    #[test]
    fn event_encodings_distinguish_cases() {
        assert_ne!(enc_branch(None), enc_branch(Some((false, 0))));
        assert_ne!(enc_branch(Some((true, 8))), enc_branch(Some((false, 8))));
        assert_ne!(enc_mem(None), enc_mem(Some((0, 4, false))));
        assert_ne!(enc_mem(Some((8, 4, true))), enc_mem(Some((8, 4, false))));
    }
}
