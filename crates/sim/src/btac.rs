//! The paper's Branch Target Address Cache (Section IV-D).
//!
//! Each entry holds a `tag` (subset of the fetch address), a predicted next
//! instruction address (`nia`), and a saturating `score`. The BTAC predicts
//! only when the matching entry's score reaches the configured threshold —
//! "hard-to-predict branches will have low scores; the BTAC will forgo
//! prediction for such branches because the penalty of misprediction is
//! greater than the two-cycle branch delay." Replacement is score-based:
//! the entry with the lowest score is evicted.

use crate::config::BtacConfig;

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u32,
    nia: u32,
    score: i8,
    valid: bool,
}

/// Statistics of BTAC behaviour, reported in the paper's Figure 4 table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtacStats {
    /// Fetch addresses looked up (taken-branch opportunities).
    pub lookups: u64,
    /// Lookups that matched an entry at or above the prediction threshold.
    pub predictions: u64,
    /// Predictions whose `nia` was correct.
    pub correct: u64,
    /// Predictions whose `nia` was wrong (cost a full redirect).
    pub incorrect: u64,
}

impl BtacStats {
    /// `incorrect / predictions`, the "misprediction rate of the BTAC"
    /// (1.4–2.5 % in the paper).
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.incorrect as f64 / self.predictions as f64
        }
    }
}

/// The scored, fully-associative BTAC.
#[derive(Debug, Clone)]
pub struct Btac {
    cfg: BtacConfig,
    entries: Vec<Entry>,
    victim_rr: usize,
    stats: BtacStats,
}

impl Btac {
    /// Build a BTAC with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(cfg: BtacConfig) -> Self {
        assert!(cfg.entries > 0, "BTAC needs at least one entry");
        Btac {
            cfg,
            entries: vec![Entry { tag: 0, nia: 0, score: 0, valid: false }; cfg.entries],
            victim_rr: 0,
            stats: BtacStats::default(),
        }
    }

    /// Look up a branch fetch address. Returns the predicted next
    /// instruction address if a valid entry matches with a sufficient
    /// score.
    pub fn lookup(&mut self, fetch_addr: u32) -> Option<u32> {
        self.stats.lookups += 1;
        let hit = self
            .entries
            .iter()
            .find(|e| e.valid && e.tag == fetch_addr && e.score >= self.cfg.score_threshold)?;
        self.stats.predictions += 1;
        Some(hit.nia)
    }

    /// Update after the branch resolves. `predicted` is what [`Self::lookup`]
    /// returned for this branch (if anything); `actual_nia` is the true
    /// next instruction address.
    pub fn update(&mut self, fetch_addr: u32, predicted: Option<u32>, actual_nia: u32) {
        if let Some(p) = predicted {
            if p == actual_nia {
                self.stats.correct += 1;
            } else {
                self.stats.incorrect += 1;
            }
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.valid && e.tag == fetch_addr) {
            if e.nia == actual_nia {
                e.score = (e.score + 1).min(self.cfg.max_score);
            } else {
                e.score -= 1;
                if e.score < i8::MIN / 2 {
                    e.score = i8::MIN / 2; // clamp far from underflow
                }
                // A persistently wrong target eventually gets retrained.
                if e.score < 0 {
                    e.nia = actual_nia;
                    e.score = self.cfg.initial_score;
                }
            }
            return;
        }
        // Allocate: evict the lowest-scoring entry (score-based
        // replacement), preferring invalid slots. Ties rotate round-robin:
        // always evicting the *first* minimal slot would let a stream of
        // fresh branches churn through one slot and starve the rest, so a
        // hot branch could never establish a score.
        let n = self.entries.len();
        let victim = if let Some(i) = (0..n).find(|&i| !self.entries[i].valid) {
            i
        } else {
            let min = self.entries.iter().map(|e| e.score).min().expect("non-empty");
            let start = self.victim_rr;
            let i = (0..n)
                .map(|k| (start + k) % n)
                .find(|&i| self.entries[i].score == min)
                .expect("a minimal entry exists");
            self.victim_rr = (i + 1) % n;
            i
        };
        self.entries[victim] =
            Entry { tag: fetch_addr, nia: actual_nia, score: self.cfg.initial_score, valid: true };
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BtacStats {
        self.stats
    }

    /// Number of valid entries currently held.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Export entries for checkpointing, as `(tag, nia, score, valid)`.
    pub fn snapshot(&self) -> BtacState {
        BtacState {
            entries: self.entries.iter().map(|e| (e.tag, e.nia, e.score, e.valid)).collect(),
            victim_rr: self.victim_rr,
            stats: self.stats,
        }
    }

    /// Reinstall a snapshot taken from a BTAC of the same size.
    ///
    /// # Errors
    ///
    /// Returns a message when the entry count does not match.
    pub fn restore(&mut self, state: &BtacState) -> Result<(), String> {
        if state.entries.len() != self.entries.len() {
            return Err(format!(
                "BTAC snapshot has {} entries, BTAC has {}",
                state.entries.len(),
                self.entries.len()
            ));
        }
        for (e, &(tag, nia, score, valid)) in self.entries.iter_mut().zip(&state.entries) {
            *e = Entry { tag, nia, score, valid };
        }
        self.victim_rr = state.victim_rr % self.entries.len();
        self.stats = state.stats;
        Ok(())
    }
}

/// Serializable [`Btac`] state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BtacState {
    /// `(tag, nia, score, valid)` per entry.
    pub entries: Vec<(u32, u32, i8, bool)>,
    /// Round-robin victim cursor.
    pub victim_rr: usize,
    /// Accumulated statistics.
    pub stats: BtacStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btac() -> Btac {
        Btac::new(BtacConfig::default())
    }

    #[test]
    fn cold_lookup_misses() {
        let mut b = btac();
        assert_eq!(b.lookup(0x100), None);
        assert_eq!(b.stats().lookups, 1);
        assert_eq!(b.stats().predictions, 0);
    }

    #[test]
    fn needs_score_threshold_before_predicting() {
        let mut b = btac(); // threshold 1, initial 0
        b.update(0x100, None, 0x200);
        // Score 0 < threshold 1: still no prediction.
        assert_eq!(b.lookup(0x100), None);
        b.update(0x100, None, 0x200); // correct-target update: score -> 1
        assert_eq!(b.lookup(0x100), Some(0x200));
    }

    #[test]
    fn stable_branch_reaches_perfect_prediction() {
        let mut b = btac();
        for _ in 0..20 {
            let p = b.lookup(0x100);
            b.update(0x100, p, 0x200);
        }
        let s = b.stats();
        assert!(s.correct >= 17);
        assert_eq!(s.incorrect, 0);
        assert_eq!(s.misprediction_rate(), 0.0);
    }

    #[test]
    fn flapping_target_is_suppressed() {
        // A branch alternating between two targets should mostly be
        // refused prediction (low score), as the paper intends.
        let mut b = btac();
        let mut wrong = 0;
        for i in 0..100 {
            let target = if i % 2 == 0 { 0x200 } else { 0x300 };
            let p = b.lookup(0x100);
            if let Some(pred) = p {
                if pred != target {
                    wrong += 1;
                }
            }
            b.update(0x100, p, target);
        }
        assert!(wrong < 20, "predicted wrongly {wrong} times");
    }

    #[test]
    fn score_replacement_evicts_lowest() {
        let cfg = BtacConfig { entries: 2, ..BtacConfig::default() };
        let mut b = Btac::new(cfg);
        // Strengthen entry A, leave B weak, then insert C: B is evicted.
        for _ in 0..4 {
            b.update(0x100, None, 0x200); // A: score grows
        }
        b.update(0x110, None, 0x210); // B: score 0
        b.update(0x120, None, 0x220); // C replaces B
        assert_eq!(b.occupancy(), 2);
        assert_eq!(b.lookup(0x100), Some(0x200)); // A survived
        assert_eq!(b.lookup(0x110), None); // B gone
    }

    #[test]
    fn retrain_after_persistent_target_change() {
        let mut b = btac();
        for _ in 0..4 {
            b.update(0x100, None, 0x200);
        }
        assert_eq!(b.lookup(0x100), Some(0x200));
        // The branch's target changes for good.
        for _ in 0..8 {
            let p = b.lookup(0x100);
            b.update(0x100, p, 0x300);
        }
        assert_eq!(b.lookup(0x100), Some(0x300));
    }

    #[test]
    fn hot_branches_establish_despite_cold_branch_stream() {
        // Regression test: with "evict the first minimal slot" replacement,
        // a stream of never-repeating branches churns one slot forever and
        // the interleaved hot branch can never keep an entry long enough
        // to reach the prediction threshold. Round-robin tie-breaking must
        // let it establish.
        let mut b = btac();
        let mut predicted = 0u32;
        for i in 0u32..4000 {
            // Hot branch every other update…
            let p = b.lookup(0x100);
            if p == Some(0x200) {
                predicted += 1;
            }
            b.update(0x100, p, 0x200);
            // …interleaved with 3 fresh cold branches.
            for k in 0..3u32 {
                let pc = 0x10_000 + 4 * (i * 3 + k);
                b.update(pc, None, pc + 0x40);
            }
        }
        assert!(
            predicted > 3000,
            "hot branch predicted only {predicted}/4000 times — BTAC starved"
        );
    }

    #[test]
    fn snapshot_restore_roundtrips() {
        let mut b = btac();
        for i in 0..30u32 {
            let pc = 0x100 + 16 * (i % 5);
            let p = b.lookup(pc);
            b.update(pc, p, pc + 0x40);
        }
        let snap = b.snapshot();
        let mut c = btac();
        c.restore(&snap).unwrap();
        for i in 0..5u32 {
            let pc = 0x100 + 16 * i;
            assert_eq!(c.lookup(pc), b.lookup(pc), "lookup {pc:#x} diverged");
        }
        let mut tiny = Btac::new(BtacConfig { entries: 2, ..BtacConfig::default() });
        assert!(tiny.restore(&snap).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut b = btac();
        for _ in 0..5 {
            let p = b.lookup(0x40);
            b.update(0x40, p, 0x80);
        }
        let s = b.stats();
        assert_eq!(s.lookups, 5);
        assert_eq!(s.predictions, s.correct + s.incorrect);
    }
}
