//! Core configuration: the knobs the paper's experiments turn.

use crate::predictor::PredictorKind;

/// Configuration of the branch target address cache (paper Section IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtacConfig {
    /// Number of entries (the paper uses 8).
    pub entries: usize,
    /// Minimum score at which the BTAC dares to predict; below it the
    /// normal taken-branch bubble is paid instead ("hard-to-predict
    /// branches will have low scores; the BTAC will forgo prediction").
    pub score_threshold: i8,
    /// Score given to a freshly allocated entry (paper default: 0).
    pub initial_score: i8,
    /// Saturation bound for the score counter.
    pub max_score: i8,
}

impl Default for BtacConfig {
    fn default() -> Self {
        BtacConfig { entries: 8, score_threshold: 1, initial_score: 0, max_score: 3 }
    }
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Hit latency in cycles (load-to-use).
    pub hit_latency: u64,
}

/// Full core configuration.
///
/// [`CoreConfig::power5`] is the baseline machine of the paper's Table I;
/// the experiment harness derives the other configurations from it with
/// the builder-style `with_*` methods:
///
/// ```
/// use power5_sim::config::{BtacConfig, CoreConfig};
///
/// let enhanced = CoreConfig::power5().with_fxus(4).with_btac(BtacConfig::default());
/// assert_eq!(enhanced.fxu_count, 4);
/// assert!(enhanced.btac.is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle (POWER5: eight-way fetch).
    pub fetch_width: usize,
    /// Maximum instructions per dispatch group (POWER5: five, which also
    /// caps commit throughput).
    pub group_size: usize,
    /// Reorder window in dispatch groups (POWER5: 20 groups in flight).
    pub rob_groups: usize,
    /// Number of fixed-point units (POWER5 baseline: 2; paper sweeps 2–4).
    pub fxu_count: usize,
    /// Number of load/store units (POWER5: 2).
    pub lsu_count: usize,
    /// Number of branch execution units (POWER5: 1).
    pub bru_count: usize,
    /// Branch direction predictor.
    pub predictor: PredictorKind,
    /// Cycles lost after every *taken* branch while the next fetch address
    /// is computed (POWER5: 2, or 3 with SMT enabled). A correct BTAC
    /// prediction removes exactly this component.
    pub taken_branch_penalty: u64,
    /// Additional branch-target refetch overhead charged on every taken
    /// branch, BTAC or not: the model does not track intra-line fetch
    /// alignment, so the cost of restarting fetch mid-line (partial first
    /// fetch group, group re-formation) is folded into this constant. It
    /// is calibrated so the *visible* share of the taken-branch bubble —
    /// most of it hides behind the 100-instruction window — matches the
    /// paper's Figure 4 BTAC gains (1.8–7.9 %).
    pub fetch_align_penalty: u64,
    /// Full pipeline redirect penalty on a branch misprediction, in cycles
    /// from branch resolution to first fetch of the correct path.
    pub mispredict_penalty: u64,
    /// Front-end depth in cycles from fetch to earliest issue.
    pub frontend_depth: u64,
    /// Optional BTAC (`None` reproduces the baseline POWER5, which has
    /// none — hence the unconditional taken-branch bubble).
    pub btac: Option<BtacConfig>,
    /// Return-address stack entries (predicts `blr` targets).
    pub ras_entries: usize,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Memory access latency (L2 miss), cycles.
    pub memory_latency: u64,
    /// Latency of simple integer ops.
    pub lat_simple: u64,
    /// Latency of `mullw`.
    pub lat_mul: u64,
    /// Latency of `divw` (unpipelined).
    pub lat_div: u64,
    /// Extra latency of predicated `isel`/`maxw` beyond a simple op
    /// (0: the paper argues `max` fits the existing carry chain in one
    /// cycle; raise it for ablations).
    pub lat_predicated_extra: u64,
    /// SMT enabled (only effect in this model: the taken-branch bubble is
    /// one cycle longer, as the paper notes).
    pub smt: bool,
}

impl CoreConfig {
    /// The baseline 1.65 GHz POWER5 of the paper's in-lab machine:
    /// 2 FXUs, 2 LSUs, eight-way fetch, five-wide groups, 20-group window,
    /// tournament direction predictor, 2-cycle taken-branch bubble, no
    /// BTAC, 64 KiB L1I / 32 KiB L1D / 1.875 MiB L2.
    pub fn power5() -> Self {
        CoreConfig {
            fetch_width: 8,
            group_size: 5,
            rob_groups: 20,
            fxu_count: 2,
            lsu_count: 2,
            bru_count: 1,
            predictor: PredictorKind::Tournament {
                bimodal_bits: 12,
                gshare_bits: 12,
                history_bits: 11,
                selector_bits: 12,
            },
            taken_branch_penalty: 2,
            fetch_align_penalty: 2,
            mispredict_penalty: 8,
            frontend_depth: 12,
            btac: None,
            ras_entries: 8,
            l1i: CacheConfig { size: 64 * 1024, ways: 2, line: 128, hit_latency: 1 },
            l1d: CacheConfig { size: 32 * 1024, ways: 4, line: 128, hit_latency: 2 },
            l2: CacheConfig { size: 1920 * 1024, ways: 10, line: 128, hit_latency: 13 },
            memory_latency: 230,
            lat_simple: 1,
            lat_mul: 5,
            lat_div: 35,
            lat_predicated_extra: 0,
            smt: false,
        }
    }

    /// Same core with `n` fixed-point units.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn with_fxus(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one FXU is required");
        self.fxu_count = n;
        self
    }

    /// Same core with the given BTAC attached.
    pub fn with_btac(mut self, btac: BtacConfig) -> Self {
        self.btac = Some(btac);
        self
    }

    /// Same core with no BTAC (the baseline).
    pub fn without_btac(mut self) -> Self {
        self.btac = None;
        self
    }

    /// Same core with a different direction predictor.
    pub fn with_predictor(mut self, p: PredictorKind) -> Self {
        self.predictor = p;
        self
    }

    /// Same core with SMT toggled (3-cycle taken bubble when on).
    pub fn with_smt(mut self, smt: bool) -> Self {
        self.smt = smt;
        self
    }

    /// The taken-branch bubble in effect (accounts for SMT).
    pub fn effective_taken_penalty(&self) -> u64 {
        if self.smt {
            self.taken_branch_penalty + 1
        } else {
            self.taken_branch_penalty
        }
    }

    /// Reorder window in instructions.
    pub fn rob_insns(&self) -> usize {
        self.rob_groups * self.group_size
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::power5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power5_defaults_match_paper() {
        let c = CoreConfig::power5();
        assert_eq!(c.fxu_count, 2);
        assert_eq!(c.lsu_count, 2);
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.group_size, 5);
        assert_eq!(c.rob_insns(), 100);
        assert_eq!(c.taken_branch_penalty, 2);
        assert!(c.btac.is_none());
        assert!(!c.smt);
    }

    #[test]
    fn smt_adds_a_cycle_to_taken_penalty() {
        let c = CoreConfig::power5();
        assert_eq!(c.effective_taken_penalty(), 2);
        assert_eq!(c.clone().with_smt(true).effective_taken_penalty(), 3);
    }

    #[test]
    fn builders_compose() {
        let c = CoreConfig::power5().with_fxus(4).with_btac(BtacConfig::default());
        assert_eq!(c.fxu_count, 4);
        assert_eq!(c.btac.unwrap().entries, 8);
        let back = c.without_btac();
        assert!(back.btac.is_none());
    }

    #[test]
    #[should_panic(expected = "at least one FXU")]
    fn zero_fxus_rejected() {
        let _ = CoreConfig::power5().with_fxus(0);
    }

    #[test]
    fn default_btac_matches_paper() {
        let b = BtacConfig::default();
        assert_eq!(b.entries, 8);
        assert_eq!(b.initial_score, 0);
    }
}
