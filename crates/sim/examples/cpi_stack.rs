//! Show the model's CPI stack for two contrasting kernels: a predictable
//! counted loop vs. a value-dependent branchy loop.
//!
//! Run with `cargo run --release -p power5-sim --example cpi_stack`.

use power5_sim::{CoreConfig, Machine};

fn run(name: &str, asm: &str) {
    let prog = ppc_asm::assemble(asm, 0x1000).expect("assembles");
    let mut m = Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 1 << 20);
    m.cpu_mut().gpr[1] = 0xF0000;
    m.cpu_mut().gpr[16] = 1103515245;
    m.run_timed(u64::MAX).expect("runs");
    println!("--- {name} ---\n{}", m.counters().cpi_stack());
}

fn main() {
    run(
        "predictable counted loop",
        "
entry:
    lis r4, 1
    mtctr r4
loop:
    addi r3, r3, 1
    xor r5, r3, r4
    add r6, r5, r3
    bdnz loop
    trap
",
    );
    run(
        "value-dependent branches (the BioPerf pattern)",
        "
entry:
    lis r4, 1
    mtctr r4
    li r15, 12345
loop:
    mullw r15, r15, r16
    addi r15, r15, 12345
    srawi r5, r15, 16
    andi. r5, r5, 1
    beq cr0, skip
    addi r6, r6, 1
skip:
    bdnz loop
    trap
",
    );
}
