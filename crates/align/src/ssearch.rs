//! Full Smith-Waterman database scan — the Fasta `ssearch34_t` model.
//!
//! `ssearch` performs a rigorous Smith-Waterman comparison of the query
//! against *every* database sequence (no heuristic seeding), which is why
//! the paper reports ~99 % of its runtime in `dropgsw`. This module scans a
//! database with [`smith_waterman_score`]
//! and ranks the hits.

use crate::pairwise::smith_waterman_score;
use bioseq::{GapPenalties, Sequence, SubstitutionMatrix};

/// One ranked database hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    /// Index of the sequence in the database slice.
    pub db_index: usize,
    /// Smith-Waterman score against the query.
    pub score: i32,
}

/// Results of a database scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResults {
    /// Hits with score ≥ the requested threshold, best first; ties broken
    /// by database order for determinism.
    pub hits: Vec<SearchHit>,
    /// Total number of DP cells evaluated (query length × Σ db lengths) —
    /// the work metric the paper's Fasta input-size discussion refers to.
    pub cells: u64,
}

/// Scan `database` with `query`, reporting hits scoring at least
/// `min_score`.
///
/// # Example
///
/// ```
/// use bioseq::{generate::SeqGen, Alphabet, GapPenalties, SubstitutionMatrix};
/// use bioalign::ssearch::search;
///
/// let mut g = SeqGen::new(Alphabet::Protein, 1);
/// let query = g.uniform(80);
/// let db = g.database(&query, 20, 3, 60..120);
/// let res = search(&query, &db, &SubstitutionMatrix::blosum62(), GapPenalties::new(10, 2), 100);
/// assert!(res.hits.len() >= 3); // the planted homologs score highly
/// ```
pub fn search(
    query: &Sequence,
    database: &[Sequence],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    min_score: i32,
) -> SearchResults {
    let mut hits = Vec::new();
    let mut cells = 0u64;
    for (db_index, subject) in database.iter().enumerate() {
        cells += query.len() as u64 * subject.len() as u64;
        let score = smith_waterman_score(query.codes(), subject.codes(), matrix, gaps);
        if score >= min_score {
            hits.push(SearchHit { db_index, score });
        }
    }
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
    SearchResults { hits, cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::{generate::SeqGen, Alphabet};

    fn setup() -> (Sequence, Vec<Sequence>, SubstitutionMatrix, GapPenalties) {
        let mut g = SeqGen::new(Alphabet::Protein, 42);
        let query = g.uniform(100);
        let db = g.database(&query, 25, 4, 60..140);
        (query, db, SubstitutionMatrix::blosum62(), GapPenalties::new(10, 2))
    }

    #[test]
    fn planted_homologs_outrank_random() {
        let (q, db, m, gp) = setup();
        let res = search(&q, &db, &m, gp, 0);
        assert_eq!(res.hits.len(), db.len()); // threshold 0 keeps everything
                                              // The top 4 hits should be substantially better than the median.
        let median = res.hits[res.hits.len() / 2].score;
        for hit in &res.hits[..4] {
            assert!(hit.score > median * 2, "homolog score {} vs median {}", hit.score, median);
        }
    }

    #[test]
    fn threshold_filters() {
        let (q, db, m, gp) = setup();
        let all = search(&q, &db, &m, gp, 0);
        let top = search(&q, &db, &m, gp, all.hits[3].score);
        assert_eq!(top.hits.len(), 4);
    }

    #[test]
    fn hits_are_sorted_descending() {
        let (q, db, m, gp) = setup();
        let res = search(&q, &db, &m, gp, 0);
        assert!(res.hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn cell_count_is_product_of_lengths() {
        let (q, db, m, gp) = setup();
        let res = search(&q, &db, &m, gp, 0);
        let expected: u64 = db.iter().map(|s| q.len() as u64 * s.len() as u64).sum();
        assert_eq!(res.cells, expected);
    }

    #[test]
    fn empty_database_yields_no_hits() {
        let (q, _, m, gp) = setup();
        let res = search(&q, &[], &m, gp, 0);
        assert!(res.hits.is_empty());
        assert_eq!(res.cells, 0);
    }

    #[test]
    fn deterministic_tie_break_by_db_order() {
        let m = SubstitutionMatrix::blosum62();
        let gp = GapPenalties::new(10, 2);
        let q = Sequence::from_text("q", Alphabet::Protein, "MKVWHEAG").unwrap();
        let db = vec![q.renamed("a"), q.renamed("b")];
        let res = search(&q, &db, &m, gp, 0);
        assert_eq!(res.hits[0].db_index, 0);
        assert_eq!(res.hits[1].db_index, 1);
        assert_eq!(res.hits[0].score, res.hits[1].score);
    }
}
