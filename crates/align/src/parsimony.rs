//! Sankoff small parsimony — the Phylip-style phylogenetics DP.
//!
//! The paper's conclusion names Phylip as a workload its results extend
//! to: phylogeny reconstruction is dominated by the same kind of
//! value-dependent dynamic programming, except with **min-plus**
//! recurrences instead of max. Sankoff's algorithm computes, for one
//! site, the minimal total substitution cost over all labelings of a
//! fixed tree:
//!
//! ```text
//! cost(leaf, s)  = 0 if the leaf shows state s, else ∞
//! cost(node, s)  = Σ_child min_t ( cost(child, t) + w(s, t) )
//! site score     = min_s cost(root, s)
//! ```
//!
//! This module is the golden model for the simulated `sankoff` kernel in
//! the `bioarch` extension workload; arithmetic is plain `i32` with the
//! same BIG constant, so scores must match bit-for-bit.

use crate::msa::GuideTree;
use bioseq::{Alphabet, Sequence};

/// The "infinite" cost marking impossible leaf states (small enough that
/// summing over a tree of any realistic size cannot overflow `i32`).
pub const BIG: i32 = 1_000_000;

/// A substitution-cost matrix over the four nucleotides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostMatrix {
    w: [i32; 16],
}

impl CostMatrix {
    /// Unit costs (Fitch parsimony): 0 on the diagonal, 1 elsewhere.
    pub fn unit() -> Self {
        let mut w = [1; 16];
        for i in 0..4 {
            w[i * 4 + i] = 0;
        }
        CostMatrix { w }
    }

    /// Transition/transversion-weighted costs: transitions (A↔G, C↔T)
    /// cost `ts`, transversions cost `tv`.
    pub fn ts_tv(ts: i32, tv: i32) -> Self {
        let mut w = [tv; 16];
        for i in 0..4 {
            w[i * 4 + i] = 0;
        }
        // DNA codes: A=0, C=1, G=2, T=3. Transitions: A<->G, C<->T.
        w[2] = ts;
        w[2 * 4] = ts;
        w[4 + 3] = ts;
        w[4 * 3 + 1] = ts;
        CostMatrix { w }
    }

    /// Cost of substituting state `a` by state `b`.
    pub fn cost(&self, a: usize, b: usize) -> i32 {
        self.w[a * 4 + b]
    }

    /// Row-major table for serialization into simulated memory.
    pub fn as_row_major(&self) -> &[i32; 16] {
        &self.w
    }
}

/// Per-site Sankoff cost vector of a subtree.
fn site_costs(tree: &GuideTree, seqs: &[Sequence], site: usize, w: &CostMatrix) -> [i32; 4] {
    match tree {
        GuideTree::Leaf(i) => {
            let r = seqs[*i].codes()[site] as usize;
            let mut c = [BIG; 4];
            if r < 4 {
                c[r] = 0;
            } else {
                // Ambiguity (N): any state is free, as in Phylip.
                c = [0; 4];
            }
            c
        }
        GuideTree::Node { left, right, .. } => {
            let cl = site_costs(left, seqs, site, w);
            let cr = site_costs(right, seqs, site, w);
            let mut c = [0i32; 4];
            for (s, out) in c.iter_mut().enumerate() {
                let min_l = (0..4).map(|t| cl[t] + w.cost(s, t)).min().expect("4 states");
                let min_r = (0..4).map(|t| cr[t] + w.cost(s, t)).min().expect("4 states");
                *out = min_l + min_r;
            }
            c
        }
    }
}

/// Parsimony score of one site.
///
/// # Panics
///
/// Panics if sequences are not DNA, differ in length, or `site` is out of
/// range.
pub fn sankoff_site(tree: &GuideTree, seqs: &[Sequence], site: usize, w: &CostMatrix) -> i32 {
    validate(seqs);
    assert!(site < seqs[0].len(), "site out of range");
    let c = site_costs(tree, seqs, site, w);
    c.into_iter().min().expect("4 states")
}

/// Total parsimony score over all sites.
///
/// # Panics
///
/// Panics if sequences are not DNA or differ in length.
pub fn sankoff_score(tree: &GuideTree, seqs: &[Sequence], w: &CostMatrix) -> i64 {
    validate(seqs);
    (0..seqs[0].len()).map(|site| sankoff_site(tree, seqs, site, w) as i64).sum()
}

fn validate(seqs: &[Sequence]) {
    assert!(!seqs.is_empty(), "parsimony needs sequences");
    let len = seqs[0].len();
    for s in seqs {
        assert_eq!(s.alphabet(), Alphabet::Dna, "parsimony operates on DNA");
        assert_eq!(s.len(), len, "sites must align (equal lengths)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::generate::SeqGen;

    fn leaf(i: usize) -> GuideTree {
        GuideTree::Leaf(i)
    }

    fn node(l: GuideTree, r: GuideTree) -> GuideTree {
        GuideTree::Node { left: Box::new(l), right: Box::new(r), height: 0.0 }
    }

    fn dna(s: &str) -> Sequence {
        Sequence::from_text("t", Alphabet::Dna, s).unwrap()
    }

    #[test]
    fn identical_leaves_cost_zero() {
        let tree = node(node(leaf(0), leaf(1)), leaf(2));
        let seqs = vec![dna("ACGT"), dna("ACGT"), dna("ACGT")];
        assert_eq!(sankoff_score(&tree, &seqs, &CostMatrix::unit()), 0);
    }

    #[test]
    fn single_substitution_costs_one() {
        let tree = node(leaf(0), leaf(1));
        let seqs = vec![dna("AAAA"), dna("AAAC")];
        assert_eq!(sankoff_score(&tree, &seqs, &CostMatrix::unit()), 1);
    }

    #[test]
    fn fitch_classic_four_taxa() {
        // Site with states A,A,C,C on ((0,1),(2,3)): one change suffices.
        let tree = node(node(leaf(0), leaf(1)), node(leaf(2), leaf(3)));
        let seqs = vec![dna("A"), dna("A"), dna("C"), dna("C")];
        assert_eq!(sankoff_score(&tree, &seqs, &CostMatrix::unit()), 1);
        // A,C,A,C needs two changes on this topology.
        let seqs2 = vec![dna("A"), dna("C"), dna("A"), dna("C")];
        assert_eq!(sankoff_score(&tree, &seqs2, &CostMatrix::unit()), 2);
    }

    #[test]
    fn weighted_costs_prefer_transitions() {
        let tree = node(leaf(0), leaf(1));
        // A->G is a transition (cost 1), A->C a transversion (cost 4).
        let w = CostMatrix::ts_tv(1, 4);
        assert_eq!(sankoff_score(&tree, &[dna("A"), dna("G")], &w), 1);
        assert_eq!(sankoff_score(&tree, &[dna("A"), dna("C")], &w), 4);
        assert_eq!(w.cost(0, 2), 1);
        assert_eq!(w.cost(1, 3), 1);
        assert_eq!(w.cost(0, 1), 4);
        assert_eq!(w.cost(0, 0), 0);
    }

    #[test]
    fn ambiguous_leaf_is_free() {
        let tree = node(leaf(0), leaf(1));
        let seqs = vec![dna("N"), dna("C")];
        assert_eq!(sankoff_score(&tree, &seqs, &CostMatrix::unit()), 0);
    }

    #[test]
    fn score_is_monotone_in_divergence() {
        let mut g = SeqGen::new(Alphabet::Dna, 5);
        let anc = g.uniform(200);
        let near = g.mutate(&anc, 0.05);
        let far = g.mutate(&anc, 0.5);
        let tree = node(leaf(0), leaf(1));
        let w = CostMatrix::unit();
        let near_score = sankoff_score(&tree, &[anc.clone(), near], &w);
        let far_score = sankoff_score(&tree, &[anc, far], &w);
        assert!(near_score < far_score, "{near_score} vs {far_score}");
    }

    #[test]
    fn deeper_trees_accumulate() {
        // Perfectly balanced 4-leaf tree where each cherry is identical:
        // only the cross-cherry difference costs.
        let tree = node(node(leaf(0), leaf(1)), node(leaf(2), leaf(3)));
        let seqs = vec![dna("AT"), dna("AT"), dna("GT"), dna("GT")];
        assert_eq!(sankoff_score(&tree, &seqs, &CostMatrix::unit()), 1);
    }

    #[test]
    #[should_panic(expected = "DNA")]
    fn protein_input_rejected() {
        let tree = node(leaf(0), leaf(1));
        let p = Sequence::from_text("p", Alphabet::Protein, "MK").unwrap();
        let _ = sankoff_score(&tree, &[p.clone(), p], &CostMatrix::unit());
    }
}
