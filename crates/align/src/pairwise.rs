//! Pairwise dynamic-programming alignment.
//!
//! This module contains the two kernels the paper's Figure 1 attributes most
//! of the runtime to:
//!
//! * [`smith_waterman_score`] — affine-gap *local* alignment, the algorithm
//!   of Fasta's `dropgsw` and the per-pair step of Clustalw;
//! * [`needleman_wunsch_score`] — affine-gap *global* alignment,
//!   corresponding to Clustalw's `forward_pass`.
//!
//! Both follow the exact recurrence of the paper's Algorithm III:
//!
//! ```text
//! G(i,j) = V(i-1,j-1) + W_ij
//! E(i,j) = max[E(i,j-1), V(i,j-1) - Wg] - Ws
//! F(i,j) = max[F(i-1,j), V(i-1,j) - Wg] - Ws
//! V(i,j) = max[E(i,j), F(i,j), G(i,j), 0]      (local; global omits the 0)
//! ```
//!
//! The chains of `max` over *value-dependent* operands are what produce the
//! unpredictable conditional branches the paper measures; the simulated
//! kernels implement the same recurrence instruction-for-instruction.

use bioseq::{GapPenalties, SubstitutionMatrix};

/// A very negative score that acts as -∞ without risking `i32` underflow
/// when gap penalties are subtracted from it repeatedly.
pub const NEG_INF: i32 = i32::MIN / 4;

/// One column of an alignment traceback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlignOp {
    /// Residue aligned to residue (match or mismatch).
    Subst,
    /// Gap in the first sequence (residue consumed from the second).
    InsertA,
    /// Gap in the second sequence (residue consumed from the first).
    InsertB,
}

/// Result of a traceback-producing local alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAlignment {
    /// Optimal local score (`V` maximum).
    pub score: i32,
    /// Start of the aligned region in the first sequence (0-based, inclusive).
    pub start_a: usize,
    /// Start in the second sequence.
    pub start_b: usize,
    /// End in the first sequence (exclusive).
    pub end_a: usize,
    /// End in the second sequence (exclusive).
    pub end_b: usize,
    /// Alignment operations from start to end.
    pub ops: Vec<AlignOp>,
}

/// Result of a traceback-producing global alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalAlignment {
    /// Optimal global score.
    pub score: i32,
    /// Alignment operations covering both sequences entirely.
    pub ops: Vec<AlignOp>,
}

impl LocalAlignment {
    /// Fraction of aligned (substitution) columns whose residues are equal.
    pub fn identity(&self, a: &[u8], b: &[u8]) -> f64 {
        identity_over_ops(&self.ops, &a[self.start_a..], &b[self.start_b..])
    }
}

impl GlobalAlignment {
    /// Fraction of aligned (substitution) columns whose residues are equal.
    pub fn identity(&self, a: &[u8], b: &[u8]) -> f64 {
        identity_over_ops(&self.ops, a, b)
    }
}

fn identity_over_ops(ops: &[AlignOp], a: &[u8], b: &[u8]) -> f64 {
    let (mut i, mut j) = (0usize, 0usize);
    let (mut subst, mut same) = (0usize, 0usize);
    for op in ops {
        match op {
            AlignOp::Subst => {
                subst += 1;
                if a[i] == b[j] {
                    same += 1;
                }
                i += 1;
                j += 1;
            }
            AlignOp::InsertA => j += 1,
            AlignOp::InsertB => i += 1,
        }
    }
    if subst == 0 {
        0.0
    } else {
        same as f64 / subst as f64
    }
}

/// Smith-Waterman local alignment *score* with affine gaps.
///
/// This is the score-only kernel (`dropgsw`'s fast path): O(n·m) time,
/// O(m) space, integer arithmetic identical to the simulated kernel.
///
/// # Example
///
/// ```
/// use bioseq::{GapPenalties, SubstitutionMatrix};
/// use bioalign::pairwise::smith_waterman_score;
///
/// let m = SubstitutionMatrix::identity(bioseq::Alphabet::Dna, 2, -1);
/// // ACGT inside a longer sequence aligns perfectly: 4 matches * 2.
/// let s = smith_waterman_score(b"\x00\x01\x02\x03", b"\x03\x00\x01\x02\x03\x00", &m, GapPenalties::new(5, 1));
/// assert_eq!(s, 8);
/// ```
pub fn smith_waterman_score(
    a: &[u8],
    b: &[u8],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> i32 {
    let (wg, ws) = (gaps.open, gaps.extend);
    let n = b.len();
    // v[j] holds V(i-1, j); fv[j] holds F(i-1, j) — the vertical gap state
    // flows down columns, the horizontal gap state (e) flows along the row.
    let mut v = vec![0i32; n + 1];
    let mut fv = vec![NEG_INF; n + 1];
    let mut best = 0i32;
    for &ra in a {
        let mut diag = v[0]; // V(i-1, j-1)
        let mut e = NEG_INF; // E(i, j-1); E(i,0) is -inf for local alignment
        let mut v_left = 0i32; // V(i, j-1), column 0 of a local row is 0
        for (j, &rb) in b.iter().enumerate() {
            let jj = j + 1;
            let g = diag + matrix.score(ra, rb);
            e = e.max(v_left - wg) - ws;
            let f = fv[jj].max(v[jj] - wg) - ws;
            let mut val = g.max(e).max(f);
            if val < 0 {
                val = 0;
            }
            diag = v[jj];
            v[jj] = val;
            fv[jj] = f;
            v_left = val;
            if val > best {
                best = val;
            }
        }
    }
    best
}

/// Needleman-Wunsch global alignment *score* with affine gaps, using the
/// paper's boundary conditions `V(i,0) = E(i,0) = -Wg - i·Ws` and
/// `V(0,j) = F(0,j) = -Wg - j·Ws`.
pub fn needleman_wunsch_score(
    a: &[u8],
    b: &[u8],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> i32 {
    let (wg, ws) = (gaps.open, gaps.extend);
    let n = b.len();
    let mut v = vec![0i32; n + 1];
    let mut f = vec![NEG_INF; n + 1];
    v[0] = 0;
    for j in 1..=n {
        v[j] = -wg - j as i32 * ws;
        f[j] = v[j];
    }
    for (i, &ra) in a.iter().enumerate() {
        let ii = i + 1;
        let mut diag = v[0];
        v[0] = -wg - ii as i32 * ws;
        let mut e = v[0]; // E(i,0) = V(i,0)
        let mut v_left = v[0];
        for (j, &rb) in b.iter().enumerate() {
            let jj = j + 1;
            let g = diag + matrix.score(ra, rb);
            let e_cur = e.max(v_left - wg) - ws;
            let f_cur = f[jj].max(v[jj] - wg) - ws;
            let val = g.max(e_cur).max(f_cur);
            diag = v[jj];
            v[jj] = val;
            f[jj] = f_cur;
            e = e_cur;
            v_left = val;
        }
    }
    v[n]
}

/// Smith-Waterman with full traceback (O(n·m) space).
///
/// Used by Clustalw's pairwise phase (identity computation) and by tests;
/// the score always equals [`smith_waterman_score`].
pub fn smith_waterman(
    a: &[u8],
    b: &[u8],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> LocalAlignment {
    let (wg, ws) = (gaps.open, gaps.extend);
    let (n, m) = (a.len(), b.len());
    let width = m + 1;
    let mut v = vec![0i32; (n + 1) * width];
    let mut e = vec![NEG_INF; (n + 1) * width];
    let mut f = vec![NEG_INF; (n + 1) * width];
    let (mut best, mut bi, mut bj) = (0i32, 0usize, 0usize);
    for i in 1..=n {
        for j in 1..=m {
            let idx = i * width + j;
            let g = v[idx - width - 1] + matrix.score(a[i - 1], b[j - 1]);
            let e_cur = e[idx - 1].max(v[idx - 1] - wg) - ws;
            let f_cur = f[idx - width].max(v[idx - width] - wg) - ws;
            let val = g.max(e_cur).max(f_cur).max(0);
            v[idx] = val;
            e[idx] = e_cur;
            f[idx] = f_cur;
            if val > best {
                best = val;
                bi = i;
                bj = j;
            }
        }
    }
    // Traceback from (bi, bj) until a zero cell.
    let mut ops_rev = Vec::new();
    let (mut i, mut j) = (bi, bj);
    while i > 0 && j > 0 {
        let idx = i * width + j;
        let val = v[idx];
        if val == 0 {
            break;
        }
        if val == v[idx - width - 1] + matrix.score(a[i - 1], b[j - 1]) {
            ops_rev.push(AlignOp::Subst);
            i -= 1;
            j -= 1;
        } else if val == e[idx] {
            // Walk the horizontal gap back to its opening column.
            while j > 0 && v[i * width + j] == e[i * width + j] {
                let cur = i * width + j;
                ops_rev.push(AlignOp::InsertA);
                let from_open = v[cur - 1] - wg - ws;
                j -= 1;
                if e[cur] == from_open {
                    break;
                }
            }
        } else {
            while i > 0 && v[i * width + j] == f[i * width + j] {
                let cur = i * width + j;
                ops_rev.push(AlignOp::InsertB);
                let from_open = v[cur - width] - wg - ws;
                i -= 1;
                if f[cur] == from_open {
                    break;
                }
            }
        }
    }
    ops_rev.reverse();
    LocalAlignment { score: best, start_a: i, start_b: j, end_a: bi, end_b: bj, ops: ops_rev }
}

/// Needleman-Wunsch with full traceback (O(n·m) space).
pub fn needleman_wunsch(
    a: &[u8],
    b: &[u8],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> GlobalAlignment {
    let (wg, ws) = (gaps.open, gaps.extend);
    let (n, m) = (a.len(), b.len());
    let width = m + 1;
    let mut v = vec![NEG_INF; (n + 1) * width];
    let mut e = vec![NEG_INF; (n + 1) * width];
    let mut f = vec![NEG_INF; (n + 1) * width];
    v[0] = 0;
    for j in 1..=m {
        v[j] = -wg - j as i32 * ws;
        f[j] = v[j];
    }
    for i in 1..=n {
        v[i * width] = -wg - i as i32 * ws;
        e[i * width] = v[i * width];
        for j in 1..=m {
            let idx = i * width + j;
            let g = v[idx - width - 1] + matrix.score(a[i - 1], b[j - 1]);
            let e_cur = e[idx - 1].max(v[idx - 1] - wg) - ws;
            let f_cur = f[idx - width].max(v[idx - width] - wg) - ws;
            v[idx] = g.max(e_cur).max(f_cur);
            e[idx] = e_cur;
            f[idx] = f_cur;
        }
    }
    // Traceback from (n, m) to (0, 0).
    let mut ops_rev = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let idx = i * width + j;
        if i > 0 && j > 0 && v[idx] == v[idx - width - 1] + matrix.score(a[i - 1], b[j - 1]) {
            ops_rev.push(AlignOp::Subst);
            i -= 1;
            j -= 1;
        } else if j > 0 && (i == 0 || v[idx] == e[idx]) {
            ops_rev.push(AlignOp::InsertA);
            j -= 1;
        } else {
            ops_rev.push(AlignOp::InsertB);
            i -= 1;
        }
    }
    ops_rev.reverse();
    GlobalAlignment { score: v[n * width + m], ops: ops_rev }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::{generate::SeqGen, Alphabet, Sequence};

    fn blosum() -> SubstitutionMatrix {
        SubstitutionMatrix::blosum62()
    }

    fn prot(s: &str) -> Sequence {
        Sequence::from_text("t", Alphabet::Protein, s).unwrap()
    }

    #[test]
    fn sw_identical_sequences_score_self_similarity() {
        let m = blosum();
        let s = prot("MKVWLAHEAG");
        let self_score: i32 = s.codes().iter().map(|&c| m.score(c, c)).sum();
        assert_eq!(
            smith_waterman_score(s.codes(), s.codes(), &m, GapPenalties::new(10, 2)),
            self_score
        );
    }

    #[test]
    fn sw_empty_inputs_score_zero() {
        let m = blosum();
        let s = prot("MKV");
        let gp = GapPenalties::default();
        assert_eq!(smith_waterman_score(&[], s.codes(), &m, gp), 0);
        assert_eq!(smith_waterman_score(s.codes(), &[], &m, gp), 0);
        assert_eq!(smith_waterman_score(&[], &[], &m, gp), 0);
    }

    #[test]
    fn sw_unrelated_never_negative() {
        let m = blosum();
        let gp = GapPenalties::default();
        let a = prot("WWWW");
        let b = prot("PPPP");
        assert_eq!(smith_waterman_score(a.codes(), b.codes(), &m, gp), 0);
    }

    #[test]
    fn sw_finds_embedded_motif() {
        let m = blosum();
        let gp = GapPenalties::new(10, 2);
        let motif = prot("HEAGAWGHEE");
        let a = prot("PPPPHEAGAWGHEEPPPP");
        let motif_self: i32 = motif.codes().iter().map(|&c| m.score(c, c)).sum();
        assert_eq!(smith_waterman_score(a.codes(), motif.codes(), &m, gp), motif_self);
    }

    #[test]
    fn sw_gap_is_taken_when_cheaper() {
        // a = ACGTT ACGTT (codes), b = ACGTTACGTT minus middle: force a gap.
        let m = SubstitutionMatrix::identity(Alphabet::Protein, 5, -4);
        let gp = GapPenalties::new(2, 1);
        let a = prot("MKVWHEAG");
        let b = prot("MKVWXHEAG"); // one extra residue in the middle
        let s = smith_waterman_score(a.codes(), b.codes(), &m, gp);
        // 8 matches (40) minus one gap of length 1 (2+1) = 37.
        assert_eq!(s, 37);
    }

    #[test]
    fn sw_traceback_score_matches_score_only() {
        let m = blosum();
        let gp = GapPenalties::new(10, 2);
        let mut g = SeqGen::new(Alphabet::Protein, 99);
        for _ in 0..20 {
            let a = g.uniform(60);
            let b = g.homolog(&a, 0.3, 0.1);
            let fast = smith_waterman_score(a.codes(), b.codes(), &m, gp);
            let full = smith_waterman(a.codes(), b.codes(), &m, gp);
            assert_eq!(fast, full.score);
        }
    }

    #[test]
    fn sw_traceback_ops_reconstruct_score() {
        let m = blosum();
        let gp = GapPenalties::new(10, 2);
        let mut g = SeqGen::new(Alphabet::Protein, 7);
        for _ in 0..10 {
            let a = g.uniform(50);
            let b = g.homolog(&a, 0.2, 0.05);
            let aln = smith_waterman(a.codes(), b.codes(), &m, gp);
            // Recompute the score by walking the ops.
            let (mut i, mut j) = (aln.start_a, aln.start_b);
            let mut score = 0i64;
            let mut gap_open = false;
            for op in &aln.ops {
                match op {
                    AlignOp::Subst => {
                        score += m.score(a.codes()[i], b.codes()[j]) as i64;
                        i += 1;
                        j += 1;
                        gap_open = false;
                    }
                    AlignOp::InsertA => {
                        score -=
                            if gap_open { gp.extend as i64 } else { (gp.open + gp.extend) as i64 };
                        j += 1;
                        gap_open = true;
                    }
                    AlignOp::InsertB => {
                        score -=
                            if gap_open { gp.extend as i64 } else { (gp.open + gp.extend) as i64 };
                        i += 1;
                        gap_open = true;
                    }
                }
            }
            assert_eq!(i, aln.end_a);
            assert_eq!(j, aln.end_b);
            // Walking ops may count a gap switch (A->B) as one open; only
            // check it does not exceed the DP score and is close.
            assert!(score <= aln.score as i64);
            assert!(score >= aln.score as i64 - (gp.open as i64));
        }
    }

    #[test]
    fn nw_identical_sequences() {
        let m = blosum();
        let s = prot("MKVWLA");
        let self_score: i32 = s.codes().iter().map(|&c| m.score(c, c)).sum();
        assert_eq!(
            needleman_wunsch_score(s.codes(), s.codes(), &m, GapPenalties::new(10, 2)),
            self_score
        );
    }

    #[test]
    fn nw_pays_for_length_difference() {
        let m = blosum();
        let gp = GapPenalties::new(10, 2);
        let a = prot("MKVW");
        let b = prot("MKVWHE");
        let self4: i32 = a.codes().iter().map(|&c| m.score(c, c)).sum();
        assert_eq!(
            needleman_wunsch_score(a.codes(), b.codes(), &m, gp),
            self4 - gp.open - 2 * gp.extend
        );
    }

    #[test]
    fn nw_empty_vs_seq_is_one_gap() {
        let m = blosum();
        let gp = GapPenalties::new(10, 2);
        let b = prot("MKVW");
        assert_eq!(needleman_wunsch_score(&[], b.codes(), &m, gp), -gp.open - 4 * gp.extend);
        assert_eq!(needleman_wunsch_score(&[], &[], &m, gp), 0);
    }

    #[test]
    fn nw_can_be_negative_sw_cannot() {
        let m = blosum();
        let gp = GapPenalties::new(10, 2);
        let a = prot("WWWWWW");
        let b = prot("PPPPPP");
        assert!(needleman_wunsch_score(a.codes(), b.codes(), &m, gp) < 0);
        assert_eq!(smith_waterman_score(a.codes(), b.codes(), &m, gp), 0);
    }

    #[test]
    fn nw_traceback_matches_score_and_covers_both() {
        let m = blosum();
        let gp = GapPenalties::new(10, 2);
        let mut g = SeqGen::new(Alphabet::Protein, 5);
        for _ in 0..10 {
            let a = g.uniform(40);
            let b = g.homolog(&a, 0.25, 0.1);
            let aln = needleman_wunsch(a.codes(), b.codes(), &m, gp);
            assert_eq!(aln.score, needleman_wunsch_score(a.codes(), b.codes(), &m, gp));
            let consumed_a =
                aln.ops.iter().filter(|o| matches!(o, AlignOp::Subst | AlignOp::InsertB)).count();
            let consumed_b =
                aln.ops.iter().filter(|o| matches!(o, AlignOp::Subst | AlignOp::InsertA)).count();
            assert_eq!(consumed_a, a.len());
            assert_eq!(consumed_b, b.len());
        }
    }

    #[test]
    fn sw_is_at_least_nw() {
        // Local alignment can only drop prefix/suffix costs, never lose.
        let m = blosum();
        let gp = GapPenalties::new(10, 2);
        let mut g = SeqGen::new(Alphabet::Protein, 31);
        for _ in 0..20 {
            let a = g.uniform(30);
            let b = g.uniform(30);
            assert!(
                smith_waterman_score(a.codes(), b.codes(), &m, gp)
                    >= needleman_wunsch_score(a.codes(), b.codes(), &m, gp)
            );
        }
    }

    #[test]
    fn identity_of_global_self_alignment_is_one() {
        let m = blosum();
        let gp = GapPenalties::new(10, 2);
        let a = prot("MKVWHEAG");
        let aln = needleman_wunsch(a.codes(), a.codes(), &m, gp);
        assert_eq!(aln.identity(a.codes(), a.codes()), 1.0);
    }

    #[test]
    fn sw_symmetric_in_arguments() {
        let m = blosum();
        let gp = GapPenalties::new(10, 2);
        let mut g = SeqGen::new(Alphabet::Protein, 77);
        for _ in 0..10 {
            let a = g.uniform(35);
            let b = g.uniform(45);
            assert_eq!(
                smith_waterman_score(a.codes(), b.codes(), &m, gp),
                smith_waterman_score(b.codes(), a.codes(), &m, gp)
            );
        }
    }
}
