//! Reference implementations of the BioPerf sequence-analysis algorithms.
//!
//! The paper studies four applications; this crate implements the algorithm
//! core of each in safe, well-tested Rust:
//!
//! | Application | Paper kernel | Module |
//! |---|---|---|
//! | Fasta (`ssearch34_t`) | `dropgsw` — Smith-Waterman local alignment | [`pairwise`], [`ssearch`] |
//! | Clustalw | `forward_pass` — global DP + progressive alignment | [`pairwise`], [`msa`] |
//! | Blast (`blastp`) | `SEMI_G_ALIGN_EX` — seeded gapped extension | [`blast`] |
//! | Hmmer (`hmmpfam`) | `P7Viterbi` — integer profile-HMM Viterbi | [`hmmsearch`] |
//!
//! These are the *golden models*: the same computations are later compiled
//! to the PowerPC-subset ISA and executed on the POWER5 timing model, and
//! integration tests require bit-identical scores between the two. All
//! arithmetic is therefore plain `i32`, matching what the simulated kernels
//! do.
//!
//! # Example
//!
//! ```
//! use bioseq::{Alphabet, GapPenalties, Sequence, SubstitutionMatrix};
//! use bioalign::pairwise::smith_waterman_score;
//!
//! let a = Sequence::from_text("a", Alphabet::Protein, "HEAGAWGHEE")?;
//! let b = Sequence::from_text("b", Alphabet::Protein, "PAWHEAE")?;
//! let score = smith_waterman_score(
//!     a.codes(), b.codes(),
//!     &SubstitutionMatrix::blosum62(),
//!     GapPenalties::new(10, 2),
//! );
//! assert!(score > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blast;
pub mod hmmsearch;
pub mod msa;
pub mod nj;
pub mod pairwise;
pub mod parsimony;
pub mod render;
pub mod ssearch;
pub mod stats;

pub use pairwise::{needleman_wunsch_score, smith_waterman_score};
