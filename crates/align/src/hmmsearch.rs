//! Profile-HMM alignment — the Hmmer (`hmmpfam`) model.
//!
//! `hmmpfam` aligns one query sequence against a database of Plan7 profile
//! HMMs; each alignment runs the integer Viterbi kernel `P7Viterbi`, which
//! the paper's Figure 1 shows consuming the majority of Hmmer's runtime.
//! [`viterbi_score`] reproduces HMMER2's fixed-point recurrence exactly —
//! the simulated kernel must produce bit-identical scores.

use bioseq::hmm::{ProfileHmm, Transition, NEG_INF_SCORE};
use bioseq::Sequence;

/// Clamp additions of near-minus-infinity scores so chains of impossible
/// states cannot underflow `i32` over long sequences.
#[inline]
fn sat(a: i32, b: i32) -> i32 {
    let s = a.saturating_add(b);
    s.max(NEG_INF_SCORE * 10)
}

/// Integer Viterbi score of `seq` against `hmm` (HMMER2 `P7Viterbi`
/// semantics, local with respect to both model and sequence).
///
/// The score is in HMMER's scaled integer log-odds units
/// ([`bioseq::hmm::INTSCALE`] = 1000 per bit).
///
/// # Example
///
/// ```
/// use bioseq::hmm::ProfileHmm;
/// use bioalign::hmmsearch::viterbi_score;
///
/// let hmm = ProfileHmm::random(30, 7);
/// let consensus = hmm.consensus();
/// let score = viterbi_score(&hmm, &consensus);
/// assert!(score > 0); // consensus matches its own model strongly
/// ```
pub fn viterbi_score(hmm: &ProfileHmm, seq: &Sequence) -> i32 {
    let m = hmm.len();
    let n = seq.len();
    if n == 0 || m == 0 {
        return NEG_INF_SCORE;
    }
    let x = seq.codes();
    // DP rows for match/insert/delete, 1-based over nodes.
    let mut mmx = vec![NEG_INF_SCORE; m + 1];
    let mut imx = vec![NEG_INF_SCORE; m + 1];
    let mut dmx = vec![NEG_INF_SCORE; m + 1];
    let mut best = NEG_INF_SCORE;

    for &xi in x {
        let mut mmx_new = vec![NEG_INF_SCORE; m + 1];
        let mut imx_new = vec![NEG_INF_SCORE; m + 1];
        let mut dmx_new = vec![NEG_INF_SCORE; m + 1];
        for k in 1..=m {
            // Match state: enter from B (local begin), or continue from
            // M/I/D at node k-1 of the previous row.
            let mut sc = hmm.begin_score(k); // B -> M_k consumes x_i
            if k > 1 {
                sc = sc
                    .max(sat(mmx[k - 1], hmm.transition(Transition::MM, k - 1)))
                    .max(sat(imx[k - 1], hmm.transition(Transition::IM, k - 1)))
                    .max(sat(dmx[k - 1], hmm.transition(Transition::DM, k - 1)));
            }
            mmx_new[k] = sat(sc, hmm.match_score(k, xi));

            // Insert state (no insert at the last node in Plan7).
            if k < m {
                let ins = sat(mmx[k], hmm.transition(Transition::MI, k))
                    .max(sat(imx[k], hmm.transition(Transition::II, k)));
                imx_new[k] = sat(ins, hmm.insert_score(k, xi));
            }

            // Delete state: within the same row (no emission).
            if k > 1 {
                dmx_new[k] = sat(mmx_new[k - 1], hmm.transition(Transition::MD, k - 1))
                    .max(sat(dmx_new[k - 1], hmm.transition(Transition::DD, k - 1)));
            }

            // Local exit: M_k -> E.
            let exit = sat(mmx_new[k], hmm.end_score(k));
            if exit > best {
                best = exit;
            }
        }
        mmx = mmx_new;
        imx = imx_new;
        dmx = dmx_new;
    }
    best
}

/// Forward log-probability (natural floating point, in bits) of `seq` under
/// `hmm` — the reference for the paper's mention that `hmmpfam` may use the
/// forward algorithm instead of Viterbi.
///
/// Computed over the same integer log-odds parameters, converted to bits,
/// with log-sum-exp accumulation.
pub fn forward_score_bits(hmm: &ProfileHmm, seq: &Sequence) -> f64 {
    let m = hmm.len();
    let n = seq.len();
    if n == 0 || m == 0 {
        return f64::NEG_INFINITY;
    }
    let x = seq.codes();
    let to_bits = |s: i32| {
        if s <= NEG_INF_SCORE {
            f64::NEG_INFINITY
        } else {
            s as f64 / bioseq::hmm::INTSCALE
        }
    };
    // log2-sum-exp2
    fn lse(a: f64, b: f64) -> f64 {
        if a == f64::NEG_INFINITY {
            return b;
        }
        if b == f64::NEG_INFINITY {
            return a;
        }
        let hi = a.max(b);
        let lo = a.min(b);
        hi + (1.0 + (lo - hi).exp2()).log2()
    }
    let mut mmx = vec![f64::NEG_INFINITY; m + 1];
    let mut imx = vec![f64::NEG_INFINITY; m + 1];
    let mut dmx = vec![f64::NEG_INFINITY; m + 1];
    let mut total = f64::NEG_INFINITY;
    for &xi in x {
        let mut mmx_new = vec![f64::NEG_INFINITY; m + 1];
        let mut imx_new = vec![f64::NEG_INFINITY; m + 1];
        let mut dmx_new = vec![f64::NEG_INFINITY; m + 1];
        for k in 1..=m {
            let mut sc = to_bits(hmm.begin_score(k));
            if k > 1 {
                sc = lse(sc, mmx[k - 1] + to_bits(hmm.transition(Transition::MM, k - 1)));
                sc = lse(sc, imx[k - 1] + to_bits(hmm.transition(Transition::IM, k - 1)));
                sc = lse(sc, dmx[k - 1] + to_bits(hmm.transition(Transition::DM, k - 1)));
            }
            mmx_new[k] = sc + to_bits(hmm.match_score(k, xi));
            if k < m {
                let ins = lse(
                    mmx[k] + to_bits(hmm.transition(Transition::MI, k)),
                    imx[k] + to_bits(hmm.transition(Transition::II, k)),
                );
                imx_new[k] = ins + to_bits(hmm.insert_score(k, xi));
            }
            if k > 1 {
                dmx_new[k] = lse(
                    mmx_new[k - 1] + to_bits(hmm.transition(Transition::MD, k - 1)),
                    dmx_new[k - 1] + to_bits(hmm.transition(Transition::DD, k - 1)),
                );
            }
            total = lse(total, mmx_new[k] + to_bits(hmm.end_score(k)));
        }
        mmx = mmx_new;
        imx = imx_new;
        dmx = dmx_new;
    }
    total
}

/// One scored model from a database scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HmmHit {
    /// Index of the model in the database slice.
    pub hmm_index: usize,
    /// Integer Viterbi score.
    pub score: i32,
}

/// Scan a database of models with one query sequence (the `hmmpfam` shape:
/// one sequence, many models), reporting models scoring at least
/// `min_score`, best first.
pub fn hmmpfam(models: &[ProfileHmm], query: &Sequence, min_score: i32) -> Vec<HmmHit> {
    let mut hits: Vec<HmmHit> = models
        .iter()
        .enumerate()
        .map(|(hmm_index, hmm)| HmmHit { hmm_index, score: viterbi_score(hmm, query) })
        .filter(|h| h.score >= min_score)
        .collect();
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.hmm_index.cmp(&b.hmm_index)));
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::{generate::SeqGen, hmm::ProfileHmm, Alphabet};

    #[test]
    fn consensus_scores_higher_than_random() {
        let hmm = ProfileHmm::random(40, 1);
        let consensus = hmm.consensus();
        let mut g = SeqGen::new(Alphabet::Protein, 2);
        let random = g.uniform(40);
        assert!(viterbi_score(&hmm, &consensus) > viterbi_score(&hmm, &random));
    }

    #[test]
    fn consensus_score_is_positive_random_is_negative() {
        let hmm = ProfileHmm::random(60, 3);
        assert!(viterbi_score(&hmm, &hmm.consensus()) > 0);
        let mut g = SeqGen::new(Alphabet::Protein, 4);
        // A random sequence should not look like the model.
        let random = g.uniform(60);
        assert!(viterbi_score(&hmm, &random) < viterbi_score(&hmm, &hmm.consensus()) / 2);
    }

    #[test]
    fn empty_sequence_scores_neg_inf() {
        let hmm = ProfileHmm::random(10, 5);
        let empty = Sequence::from_codes("e", Alphabet::Protein, vec![]);
        assert_eq!(viterbi_score(&hmm, &empty), bioseq::hmm::NEG_INF_SCORE);
    }

    #[test]
    fn longer_consensus_match_scores_higher() {
        // A model twice as long accumulates roughly twice the log-odds.
        let short = ProfileHmm::random(20, 7);
        let long = ProfileHmm::random(40, 7);
        let s_short = viterbi_score(&short, &short.consensus());
        let s_long = viterbi_score(&long, &long.consensus());
        assert!(s_long > s_short);
    }

    #[test]
    fn mutated_consensus_degrades_gracefully() {
        let hmm = ProfileHmm::random(50, 9);
        let consensus = hmm.consensus();
        let mut g = SeqGen::new(Alphabet::Protein, 10);
        let light = g.mutate(&consensus, 0.1);
        let heavy = g.mutate(&consensus, 0.5);
        let s0 = viterbi_score(&hmm, &consensus);
        let s1 = viterbi_score(&hmm, &light);
        let s2 = viterbi_score(&hmm, &heavy);
        assert!(s0 > s1, "{s0} vs {s1}");
        assert!(s1 > s2, "{s1} vs {s2}");
    }

    #[test]
    fn insertion_tolerated_by_insert_states() {
        let hmm = ProfileHmm::random(30, 11);
        let consensus = hmm.consensus();
        let mut g = SeqGen::new(Alphabet::Protein, 12);
        let with_ins = g.indel(&consensus, 0.1);
        // Score degrades but stays well above random.
        let random = g.uniform(with_ins.len());
        assert!(viterbi_score(&hmm, &with_ins) > viterbi_score(&hmm, &random));
    }

    #[test]
    fn forward_upper_bounds_viterbi() {
        // Forward sums over all paths, so (in the same units) it is at
        // least the best single path.
        let hmm = ProfileHmm::random(25, 13);
        let consensus = hmm.consensus();
        let v_bits = viterbi_score(&hmm, &consensus) as f64 / bioseq::hmm::INTSCALE;
        let f_bits = forward_score_bits(&hmm, &consensus);
        assert!(f_bits >= v_bits - 1e-6, "forward {f_bits} < viterbi {v_bits}");
        assert!(f_bits < v_bits + 50.0, "forward implausibly larger");
    }

    #[test]
    fn hmmpfam_ranks_matching_model_first() {
        let models: Vec<ProfileHmm> = (0..8).map(|i| ProfileHmm::random(35, 100 + i)).collect();
        let query = models[5].consensus();
        let hits = hmmpfam(&models, &query, i32::MIN);
        assert_eq!(hits[0].hmm_index, 5);
        assert_eq!(hits.len(), 8);
    }

    #[test]
    fn hmmpfam_threshold_filters() {
        let models: Vec<ProfileHmm> = (0..5).map(|i| ProfileHmm::random(35, 200 + i)).collect();
        let query = models[2].consensus();
        let hits = hmmpfam(&models, &query, 0);
        // Only the true model should score positively.
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].hmm_index, 2);
    }

    #[test]
    fn viterbi_deterministic() {
        let hmm = ProfileHmm::random(20, 77);
        let mut g = SeqGen::new(Alphabet::Protein, 78);
        let s = g.uniform(30);
        assert_eq!(viterbi_score(&hmm, &s), viterbi_score(&hmm, &s));
    }
}
