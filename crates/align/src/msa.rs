//! Progressive multiple sequence alignment — the Clustalw model.
//!
//! Clustalw's three phases, as described in the paper's Section II:
//!
//! 1. **Pairwise**: all `n(n-1)/2` pairs are aligned with the DP kernel
//!    (`forward_pass`) to obtain a distance matrix;
//! 2. **Guide tree**: cluster analysis over the distances (we implement
//!    UPGMA);
//! 3. **Progressive**: sequences/profiles are merged following the tree,
//!    one alignment at a time.
//!
//! Phase 1 dominates runtime, which is why the paper's counters are
//! collected there.

use crate::pairwise::{needleman_wunsch, AlignOp};
use bioseq::{Alphabet, GapPenalties, Sequence, SubstitutionMatrix};

/// Gap cell marker inside an alignment row.
pub const GAP: u8 = u8::MAX;

/// A multiple sequence alignment: rows of equal length where each cell is a
/// residue code or [`GAP`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msa {
    names: Vec<String>,
    rows: Vec<Vec<u8>>,
    alphabet: Alphabet,
}

impl Msa {
    /// Number of sequences.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Alignment length in columns.
    pub fn num_columns(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// Row `i` as residue codes with [`GAP`] markers.
    pub fn row(&self, i: usize) -> &[u8] {
        &self.rows[i]
    }

    /// Name of row `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Render the alignment as FASTA-style text with `-` for gaps.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, row) in self.names.iter().zip(&self.rows) {
            out.push('>');
            out.push_str(name);
            out.push('\n');
            for &c in row {
                out.push(if c == GAP { '-' } else { self.alphabet.decode(c) as char });
            }
            out.push('\n');
        }
        out
    }

    /// Remove gap columns from row `i`, recovering the input sequence.
    pub fn ungapped_row(&self, i: usize) -> Sequence {
        let codes: Vec<u8> = self.rows[i].iter().copied().filter(|&c| c != GAP).collect();
        Sequence::from_codes(self.names[i].clone(), self.alphabet, codes)
    }

    /// Average pairwise identity over all rows (gap columns excluded).
    pub fn average_identity(&self) -> f64 {
        let n = self.num_rows();
        if n < 2 {
            return 1.0;
        }
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let (mut same, mut cols) = (0usize, 0usize);
                for (&a, &b) in self.rows[i].iter().zip(&self.rows[j]) {
                    if a != GAP && b != GAP {
                        cols += 1;
                        if a == b {
                            same += 1;
                        }
                    }
                }
                if cols > 0 {
                    total += same as f64 / cols as f64;
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total / pairs as f64
        }
    }
}

/// A node of the UPGMA guide tree.
#[derive(Debug, Clone, PartialEq)]
pub enum GuideTree {
    /// A single input sequence, by index.
    Leaf(usize),
    /// A merge of two subtrees at the given distance.
    Node {
        /// Left subtree.
        left: Box<GuideTree>,
        /// Right subtree.
        right: Box<GuideTree>,
        /// UPGMA merge height (average pairwise distance).
        height: f64,
    },
}

impl GuideTree {
    /// Indices of all leaves under this node, left to right.
    pub fn leaves(&self) -> Vec<usize> {
        match self {
            GuideTree::Leaf(i) => vec![*i],
            GuideTree::Node { left, right, .. } => {
                let mut l = left.leaves();
                l.extend(right.leaves());
                l
            }
        }
    }
}

/// Pairwise distance matrix (symmetric, zero diagonal) from phase 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<f64>,
}

impl DistanceMatrix {
    /// Build a matrix from a row-major flat vector (`n × n` entries).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != n * n`.
    pub fn from_flat(n: usize, flat: Vec<f64>) -> Self {
        assert_eq!(flat.len(), n * n, "flat distance matrix has wrong arity");
        DistanceMatrix { n, d: flat }
    }

    /// Distance between sequences `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.n + j]
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Phase 1: compute all-pairs distances as `1 − identity` of the global
/// alignment of each pair. Performs exactly `n(n-1)/2` DP alignments.
pub fn pairwise_distances(
    seqs: &[Sequence],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> DistanceMatrix {
    let n = seqs.len();
    let mut d = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let aln = needleman_wunsch(seqs[i].codes(), seqs[j].codes(), matrix, gaps);
            let dist = 1.0 - aln.identity(seqs[i].codes(), seqs[j].codes());
            d[i * n + j] = dist;
            d[j * n + i] = dist;
        }
    }
    DistanceMatrix { n, d }
}

/// Phase 2: UPGMA clustering of the distance matrix into a guide tree.
///
/// # Panics
///
/// Panics if the matrix is empty.
pub fn upgma(dist: &DistanceMatrix) -> GuideTree {
    assert!(!dist.is_empty(), "cannot build a guide tree from zero sequences");
    let n = dist.len();
    // Active clusters: (tree, member leaf indices).
    let mut clusters: Vec<Option<(GuideTree, Vec<usize>)>> =
        (0..n).map(|i| Some((GuideTree::Leaf(i), vec![i]))).collect();
    let mut remaining = n;
    while remaining > 1 {
        // Find the closest pair of active clusters by average linkage.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..clusters.len() {
            let Some((_, mi)) = &clusters[i] else { continue };
            for (j, cj) in clusters.iter().enumerate().skip(i + 1) {
                let Some((_, mj)) = cj else { continue };
                let mut sum = 0.0;
                for &a in mi {
                    for &b in mj {
                        sum += dist.get(a, b);
                    }
                }
                let avg = sum / (mi.len() * mj.len()) as f64;
                if best.is_none_or(|(_, _, d)| avg < d) {
                    best = Some((i, j, avg));
                }
            }
        }
        let (i, j, height) = best.expect("at least two active clusters");
        let (tl, ml) = clusters[i].take().expect("cluster i active");
        let (tr, mr) = clusters[j].take().expect("cluster j active");
        let mut members = ml;
        members.extend(mr);
        clusters[i] =
            Some((GuideTree::Node { left: Box::new(tl), right: Box::new(tr), height }, members));
        remaining -= 1;
    }
    clusters.into_iter().flatten().next().expect("one cluster remains").0
}

/// Column-frequency profile used during progressive alignment.
struct Profile {
    names: Vec<String>,
    rows: Vec<Vec<u8>>,
}

impl Profile {
    fn from_sequence(s: &Sequence) -> Self {
        Profile { names: vec![s.name().to_string()], rows: vec![s.codes().to_vec()] }
    }

    fn columns(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// Average substitution score between column `ca` of `self` and column
    /// `cb` of `other` (gap cells contribute nothing, as in Clustalw's
    /// profile scoring).
    fn column_score(&self, other: &Profile, ca: usize, cb: usize, m: &SubstitutionMatrix) -> i32 {
        let mut sum = 0i64;
        let mut pairs = 0i64;
        for ra in &self.rows {
            let a = ra[ca];
            if a == GAP {
                continue;
            }
            for rb in &other.rows {
                let b = rb[cb];
                if b == GAP {
                    continue;
                }
                sum += m.score(a, b) as i64;
                pairs += 1;
            }
        }
        if pairs == 0 {
            0
        } else {
            (sum / pairs) as i32
        }
    }

    /// Merge two profiles with the op sequence of a global profile-profile
    /// alignment.
    fn merge(self, other: Profile, ops: &[AlignOp]) -> Profile {
        let mut rows: Vec<Vec<u8>> = vec![Vec::new(); self.rows.len() + other.rows.len()];
        let split = self.rows.len();
        let (mut ca, mut cb) = (0usize, 0usize);
        for op in ops {
            match op {
                AlignOp::Subst => {
                    for (k, r) in self.rows.iter().enumerate() {
                        rows[k].push(r[ca]);
                    }
                    for (k, r) in other.rows.iter().enumerate() {
                        rows[split + k].push(r[cb]);
                    }
                    ca += 1;
                    cb += 1;
                }
                AlignOp::InsertA => {
                    for row in rows.iter_mut().take(split) {
                        row.push(GAP);
                    }
                    for (k, r) in other.rows.iter().enumerate() {
                        rows[split + k].push(r[cb]);
                    }
                    cb += 1;
                }
                AlignOp::InsertB => {
                    for (k, r) in self.rows.iter().enumerate() {
                        rows[k].push(r[ca]);
                    }
                    for row in rows.iter_mut().skip(split) {
                        row.push(GAP);
                    }
                    ca += 1;
                }
            }
        }
        let mut names = self.names;
        names.extend(other.names);
        Profile { names, rows }
    }
}

/// Global profile-profile alignment (NW over column scores).
fn align_profiles(
    a: &Profile,
    b: &Profile,
    m: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> Vec<AlignOp> {
    let (wg, ws) = (gaps.open, gaps.extend);
    let (n, cols_b) = (a.columns(), b.columns());
    let width = cols_b + 1;
    let neg = crate::pairwise::NEG_INF;
    let mut v = vec![neg; (n + 1) * width];
    let mut e = vec![neg; (n + 1) * width];
    let mut f = vec![neg; (n + 1) * width];
    v[0] = 0;
    for j in 1..=cols_b {
        v[j] = -wg - j as i32 * ws;
        f[j] = v[j];
    }
    for i in 1..=n {
        v[i * width] = -wg - i as i32 * ws;
        e[i * width] = v[i * width];
        for j in 1..=cols_b {
            let idx = i * width + j;
            let g = v[idx - width - 1] + a.column_score(b, i - 1, j - 1, m);
            let e_cur = e[idx - 1].max(v[idx - 1] - wg) - ws;
            let f_cur = f[idx - width].max(v[idx - width] - wg) - ws;
            v[idx] = g.max(e_cur).max(f_cur);
            e[idx] = e_cur;
            f[idx] = f_cur;
        }
    }
    let mut ops_rev = Vec::new();
    let (mut i, mut j) = (n, cols_b);
    while i > 0 || j > 0 {
        let idx = i * width + j;
        if i > 0 && j > 0 && v[idx] == v[idx - width - 1] + a.column_score(b, i - 1, j - 1, m) {
            ops_rev.push(AlignOp::Subst);
            i -= 1;
            j -= 1;
        } else if j > 0 && (i == 0 || v[idx] == e[idx]) {
            ops_rev.push(AlignOp::InsertA);
            j -= 1;
        } else {
            ops_rev.push(AlignOp::InsertB);
            i -= 1;
        }
    }
    ops_rev.reverse();
    ops_rev
}

fn build_profile(
    tree: &GuideTree,
    seqs: &[Sequence],
    m: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> Profile {
    match tree {
        GuideTree::Leaf(i) => Profile::from_sequence(&seqs[*i]),
        GuideTree::Node { left, right, .. } => {
            let pl = build_profile(left, seqs, m, gaps);
            let pr = build_profile(right, seqs, m, gaps);
            let ops = align_profiles(&pl, &pr, m, gaps);
            pl.merge(pr, &ops)
        }
    }
}

/// Run the full three-phase Clustalw pipeline and return the alignment.
///
/// # Panics
///
/// Panics if `seqs` is empty or alphabets are mixed.
///
/// # Example
///
/// ```
/// use bioseq::{generate::SeqGen, Alphabet, GapPenalties, SubstitutionMatrix};
/// use bioalign::msa::progressive_align;
///
/// let mut g = SeqGen::new(Alphabet::Protein, 3);
/// let fam = g.family(4, 60, 0.15, 0.05);
/// let msa = progressive_align(&fam, &SubstitutionMatrix::blosum62(), GapPenalties::new(10, 2));
/// assert_eq!(msa.num_rows(), 4);
/// assert!(msa.average_identity() > 0.5);
/// ```
pub fn progressive_align(
    seqs: &[Sequence],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> Msa {
    assert!(!seqs.is_empty(), "cannot align zero sequences");
    let alphabet = seqs[0].alphabet();
    assert!(seqs.iter().all(|s| s.alphabet() == alphabet), "all sequences must share one alphabet");
    if seqs.len() == 1 {
        return Msa {
            names: vec![seqs[0].name().to_string()],
            rows: vec![seqs[0].codes().to_vec()],
            alphabet,
        };
    }
    let dist = pairwise_distances(seqs, matrix, gaps);
    let tree = upgma(&dist);
    let profile = build_profile(&tree, seqs, matrix, gaps);
    Msa { names: profile.names, rows: profile.rows, alphabet }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::generate::SeqGen;

    fn family(n: usize, len: usize, seed: u64) -> Vec<Sequence> {
        let mut g = SeqGen::new(Alphabet::Protein, seed);
        g.family(n, len, 0.15, 0.05)
    }

    #[test]
    fn distances_are_symmetric_with_zero_diagonal() {
        let fam = family(5, 40, 1);
        let d = pairwise_distances(&fam, &SubstitutionMatrix::blosum62(), GapPenalties::new(10, 2));
        for i in 0..5 {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..5 {
                assert_eq!(d.get(i, j), d.get(j, i));
                assert!((0.0..=1.0).contains(&d.get(i, j)));
            }
        }
    }

    #[test]
    fn related_pairs_are_closer_than_unrelated() {
        let mut g = SeqGen::new(Alphabet::Protein, 9);
        let anc = g.uniform(80);
        let close = g.mutate(&anc, 0.05);
        let far = g.uniform(80);
        let seqs = vec![anc, close, far];
        let d =
            pairwise_distances(&seqs, &SubstitutionMatrix::blosum62(), GapPenalties::new(10, 2));
        assert!(d.get(0, 1) < d.get(0, 2));
        assert!(d.get(0, 1) < d.get(1, 2));
    }

    #[test]
    fn upgma_merges_closest_first() {
        let mut g = SeqGen::new(Alphabet::Protein, 11);
        let anc = g.uniform(60);
        let twin = g.mutate(&anc, 0.02);
        let cousin = g.mutate(&anc, 0.40);
        let seqs = vec![anc, twin, cousin];
        let d =
            pairwise_distances(&seqs, &SubstitutionMatrix::blosum62(), GapPenalties::new(10, 2));
        let tree = upgma(&d);
        // The deepest merge should pair sequences 0 and 1.
        match tree {
            GuideTree::Node { left, right, .. } => {
                let inner = if matches!(*left, GuideTree::Node { .. }) { left } else { right };
                let mut leaves = inner.leaves();
                leaves.sort_unstable();
                assert_eq!(leaves, vec![0, 1]);
            }
            GuideTree::Leaf(_) => panic!("tree of 3 must be a node"),
        }
    }

    #[test]
    fn guide_tree_covers_all_leaves() {
        let fam = family(7, 30, 13);
        let d = pairwise_distances(&fam, &SubstitutionMatrix::blosum62(), GapPenalties::new(10, 2));
        let mut leaves = upgma(&d).leaves();
        leaves.sort_unstable();
        assert_eq!(leaves, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn msa_rows_recover_inputs() {
        let fam = family(5, 50, 17);
        let msa =
            progressive_align(&fam, &SubstitutionMatrix::blosum62(), GapPenalties::new(10, 2));
        assert_eq!(msa.num_rows(), 5);
        // Every input sequence appears (possibly reordered by the tree).
        for s in &fam {
            let found = (0..msa.num_rows()).any(|i| msa.ungapped_row(i).codes() == s.codes());
            assert!(found, "sequence {} missing from MSA", s.name());
        }
    }

    #[test]
    fn msa_rows_have_equal_length() {
        let fam = family(6, 45, 19);
        let msa =
            progressive_align(&fam, &SubstitutionMatrix::blosum62(), GapPenalties::new(10, 2));
        let cols = msa.num_columns();
        for i in 0..msa.num_rows() {
            assert_eq!(msa.row(i).len(), cols);
        }
        assert!(cols >= 45);
    }

    #[test]
    fn msa_of_identical_sequences_has_no_gaps() {
        let s = Sequence::from_text("s", Alphabet::Protein, "MKVWHEAGMKVW").unwrap();
        let seqs = vec![s.renamed("a"), s.renamed("b"), s.renamed("c")];
        let msa =
            progressive_align(&seqs, &SubstitutionMatrix::blosum62(), GapPenalties::new(10, 2));
        assert_eq!(msa.num_columns(), 12);
        assert_eq!(msa.average_identity(), 1.0);
    }

    #[test]
    fn single_sequence_alignment_is_trivial() {
        let s = Sequence::from_text("solo", Alphabet::Protein, "MKV").unwrap();
        let msa = progressive_align(
            std::slice::from_ref(&s),
            &SubstitutionMatrix::blosum62(),
            GapPenalties::new(10, 2),
        );
        assert_eq!(msa.num_rows(), 1);
        assert_eq!(msa.ungapped_row(0).codes(), s.codes());
    }

    #[test]
    fn to_text_renders_gaps() {
        let fam = family(3, 20, 23);
        let msa =
            progressive_align(&fam, &SubstitutionMatrix::blosum62(), GapPenalties::new(10, 2));
        let text = msa.to_text();
        assert_eq!(text.lines().count(), 6);
        assert!(text.starts_with('>'));
    }

    #[test]
    fn family_alignment_identity_is_high() {
        let fam = family(5, 80, 29);
        let msa =
            progressive_align(&fam, &SubstitutionMatrix::blosum62(), GapPenalties::new(10, 2));
        assert!(msa.average_identity() > 0.6, "identity {}", msa.average_identity());
    }
}
