//! Karlin-Altschul statistics for local alignment scores.
//!
//! Gapped BLAST ranks hits by *E-value*, the expected number of chance
//! alignments scoring at least `S` between a query of length `m` and a
//! database of length `n`:
//!
//! ```text
//! E = K · m · n · e^(−λS)
//! ```
//!
//! `λ` is the unique positive solution of `Σ pᵢ pⱼ e^(λ·s(i,j)) = 1` over
//! the residue background frequencies `p` and the substitution matrix `s`
//! (Karlin & Altschul 1990); `K` is estimated here with the standard
//! geometric-mean approximation. The paper's Blast workload sorts hits by
//! raw score; this module adds the statistical layer a production tool
//! reports alongside.

use bioseq::SubstitutionMatrix;

/// Statistical parameters of a scoring system under given background
/// frequencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KarlinParams {
    /// The scale parameter λ.
    pub lambda: f64,
    /// The search-space constant K.
    pub k: f64,
    /// Expected score per aligned residue pair (must be negative for
    /// local-alignment statistics to exist).
    pub expected_score: f64,
}

/// Error computing Karlin-Altschul parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComputeParamsError {
    /// The expected pair score is non-negative: local alignment statistics
    /// are undefined (alignments grow without bound).
    NonNegativeExpectedScore,
    /// The matrix has no positive score: λ has no positive root.
    NoPositiveScore,
}

impl std::fmt::Display for ComputeParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComputeParamsError::NonNegativeExpectedScore => {
                write!(f, "expected pair score is non-negative")
            }
            ComputeParamsError::NoPositiveScore => {
                write!(f, "substitution matrix has no positive score")
            }
        }
    }
}

impl std::error::Error for ComputeParamsError {}

/// Uniform background frequencies over the 20 standard residues.
pub fn uniform_background() -> Vec<f64> {
    vec![1.0 / 20.0; 20]
}

/// Robinson & Robinson amino-acid background frequencies (the standard
/// BLAST background), in BLOSUM residue order `ARNDCQEGHILKMFPSTWYV`.
pub fn robinson_background() -> Vec<f64> {
    let f = [
        0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295, 0.07377, 0.02199, 0.05142,
        0.09019, 0.05744, 0.02243, 0.03856, 0.05203, 0.07120, 0.05841, 0.01330, 0.03216, 0.06441,
    ];
    f.to_vec()
}

fn sum_exp(matrix: &SubstitutionMatrix, bg: &[f64], lambda: f64) -> f64 {
    let mut total = 0.0;
    for (i, &pi) in bg.iter().enumerate() {
        for (j, &pj) in bg.iter().enumerate() {
            total += pi * pj * (lambda * matrix.score(i as u8, j as u8) as f64).exp();
        }
    }
    total
}

/// Compute λ and K for `matrix` under background frequencies `bg`
/// (length 20, summing to ≈1).
///
/// # Errors
///
/// Returns [`ComputeParamsError`] when the scoring system does not admit
/// local-alignment statistics.
///
/// # Panics
///
/// Panics if `bg` does not have 20 entries.
///
/// # Example
///
/// ```
/// use bioalign::stats::{compute_params, robinson_background};
/// use bioseq::SubstitutionMatrix;
///
/// let p = compute_params(&SubstitutionMatrix::blosum62(), &robinson_background())?;
/// // Published ungapped BLOSUM62 lambda is ~0.318 (natural-log units).
/// assert!((p.lambda - 0.318).abs() < 0.02, "lambda {}", p.lambda);
/// # Ok::<(), bioalign::stats::ComputeParamsError>(())
/// ```
pub fn compute_params(
    matrix: &SubstitutionMatrix,
    bg: &[f64],
) -> Result<KarlinParams, ComputeParamsError> {
    assert_eq!(bg.len(), 20, "background covers the 20 standard residues");
    let mut expected = 0.0;
    let mut has_positive = false;
    for (i, &pi) in bg.iter().enumerate() {
        for (j, &pj) in bg.iter().enumerate() {
            let s = matrix.score(i as u8, j as u8) as f64;
            expected += pi * pj * s;
            if s > 0.0 {
                has_positive = true;
            }
        }
    }
    if expected >= 0.0 {
        return Err(ComputeParamsError::NonNegativeExpectedScore);
    }
    if !has_positive {
        return Err(ComputeParamsError::NoPositiveScore);
    }
    // f(λ) = Σ p p e^{λs} − 1 is convex with f(0) = 0, f'(0) = E[s] < 0 and
    // f(∞) = ∞: bisect on the positive root.
    let mut hi = 1.0f64;
    while sum_exp(matrix, bg, hi) < 1.0 {
        hi *= 2.0;
        assert!(hi < 1e6, "lambda search diverged");
    }
    let mut lo = 0.0f64;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if sum_exp(matrix, bg, mid) < 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let lambda = 0.5 * (lo + hi);
    // K via the common approximation K ≈ (E[s·e^{λs}]·λ)⁻¹-weighted
    // geometric correction; we use the simpler H-based estimate
    // K ≈ λ·H / (E[|s|]·e) bounded to the BLAST-typical range. For the
    // reproduction only relative E-values matter, so a coarse K is fine.
    let mut h = 0.0;
    for (i, &pi) in bg.iter().enumerate() {
        for (j, &pj) in bg.iter().enumerate() {
            let s = matrix.score(i as u8, j as u8) as f64;
            h += pi * pj * s * (lambda * s).exp();
        }
    }
    let h = lambda * h; // relative entropy per pair, nats
    let k = (0.7 * h / lambda.exp()).clamp(0.01, 0.5);
    Ok(KarlinParams { lambda, k, expected_score: expected })
}

impl KarlinParams {
    /// Bit score of a raw alignment score.
    pub fn bit_score(&self, raw: i32) -> f64 {
        (self.lambda * raw as f64 - self.k.ln()) / std::f64::consts::LN_2
    }

    /// E-value of a raw score for a query of length `m` against a database
    /// of total length `n`.
    pub fn evalue(&self, raw: i32, m: usize, n: usize) -> f64 {
        self.k * m as f64 * n as f64 * (-self.lambda * raw as f64).exp()
    }

    /// The raw score needed for an E-value of `e` in an `m × n` search.
    pub fn score_for_evalue(&self, e: f64, m: usize, n: usize) -> i32 {
        ((self.k * m as f64 * n as f64 / e).ln() / self.lambda).ceil() as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::generate::SeqGen;
    use bioseq::Alphabet;

    #[test]
    // 0.318 is the published BLOSUM62 lambda, not an approximation of 1/pi.
    #[allow(clippy::approx_constant)]
    fn blosum62_lambda_matches_published_value() {
        let p = compute_params(&SubstitutionMatrix::blosum62(), &robinson_background()).unwrap();
        assert!((p.lambda - 0.318).abs() < 0.02, "lambda {}", p.lambda);
        assert!(p.expected_score < 0.0);
    }

    #[test]
    fn uniform_background_also_works() {
        let p = compute_params(&SubstitutionMatrix::blosum62(), &uniform_background()).unwrap();
        assert!(p.lambda > 0.2 && p.lambda < 0.5, "lambda {}", p.lambda);
    }

    #[test]
    fn lambda_root_property() {
        // Σ p p e^{λ s} must be 1 at the computed λ.
        let m = SubstitutionMatrix::blosum62();
        let bg = robinson_background();
        let p = compute_params(&m, &bg).unwrap();
        assert!((sum_exp(&m, &bg, p.lambda) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_match_matrix_is_rejected() {
        let m = SubstitutionMatrix::identity(Alphabet::Protein, 1, 1);
        assert_eq!(
            compute_params(&m, &uniform_background()),
            Err(ComputeParamsError::NonNegativeExpectedScore)
        );
    }

    #[test]
    fn all_negative_matrix_is_rejected() {
        let m = SubstitutionMatrix::identity(Alphabet::Protein, -1, -2);
        assert_eq!(
            compute_params(&m, &uniform_background()),
            Err(ComputeParamsError::NoPositiveScore)
        );
    }

    #[test]
    fn evalue_decreases_with_score_and_increases_with_space() {
        let p = compute_params(&SubstitutionMatrix::blosum62(), &robinson_background()).unwrap();
        assert!(p.evalue(50, 100, 10_000) > p.evalue(60, 100, 10_000));
        assert!(p.evalue(50, 100, 100_000) > p.evalue(50, 100, 10_000));
        let s = p.score_for_evalue(1e-3, 100, 10_000);
        assert!(p.evalue(s, 100, 10_000) <= 1e-3);
        assert!(p.evalue(s - 2, 100, 10_000) > 1e-3);
    }

    #[test]
    fn bit_scores_are_monotone() {
        let p = compute_params(&SubstitutionMatrix::blosum62(), &robinson_background()).unwrap();
        assert!(p.bit_score(60) > p.bit_score(50));
    }

    #[test]
    fn random_alignment_scores_obey_evalue_ordering() {
        // Empirical sanity check: among random sequence pairs, the count
        // with score >= S should shrink as S grows, roughly exponentially.
        use crate::pairwise::smith_waterman_score;
        use bioseq::GapPenalties;
        let m = SubstitutionMatrix::blosum62();
        let gp = GapPenalties::new(10, 2);
        let mut g = SeqGen::new(Alphabet::Protein, 5);
        let scores: Vec<i32> = (0..60)
            .map(|_| {
                let a = g.uniform(60);
                let b = g.uniform(60);
                smith_waterman_score(a.codes(), b.codes(), &m, gp)
            })
            .collect();
        let lo = scores.iter().filter(|&&s| s >= 20).count();
        let hi = scores.iter().filter(|&&s| s >= 40).count();
        assert!(lo > hi, "{lo} vs {hi}");
    }
}
