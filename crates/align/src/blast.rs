//! Seeded protein database search — the Blast (`blastp`) model.
//!
//! Gapped BLAST (Altschul et al. 1997, the paper's reference \[7\]) searches
//! in stages:
//!
//! 1. **Word seeding** — query 3-mers and their *neighborhood* (all words
//!    scoring ≥ `word_threshold` under the substitution matrix) are indexed;
//!    database words that hit the index produce diagonal hits.
//! 2. **Two-hit trigger** — two non-overlapping hits on the same diagonal
//!    within `two_hit_window` trigger an ungapped extension.
//! 3. **Ungapped X-drop extension** — the hit is extended in both directions
//!    until the running score drops `x_drop_ungapped` below its maximum.
//! 4. **Gapped extension** (`SEMI_G_ALIGN_EX` in the paper's Figure 1) —
//!    HSPs scoring ≥ `gap_trigger` get a banded affine DP extension around
//!    the seed in both directions.
//!
//! The gapped extension is the dynamic-programming kernel whose branches
//! the paper measures; [`gapped_extend_score`] is implemented with the same
//! integer recurrence as the simulated kernel.

use crate::pairwise::NEG_INF;
use bioseq::{GapPenalties, Sequence, SubstitutionMatrix};
use std::collections::HashMap;

/// Tuning parameters for the staged search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlastParams {
    /// Word length (protein BLAST default: 3).
    pub word_len: usize,
    /// Minimum self-score for a word neighborhood member (default 11, as in
    /// NCBI blastp).
    pub word_threshold: i32,
    /// Maximum distance between two diagonal hits that still triggers an
    /// extension (default 40).
    pub two_hit_window: usize,
    /// X-drop for the ungapped extension (default 7).
    pub x_drop_ungapped: i32,
    /// Ungapped score required to trigger a gapped extension (default 22).
    pub gap_trigger: i32,
    /// Band half-width for the gapped extension (default 24).
    pub band: usize,
    /// Gap penalties for the gapped extension.
    pub gaps: GapPenalties,
    /// Minimum gapped score to report.
    pub min_report_score: i32,
}

impl Default for BlastParams {
    fn default() -> Self {
        BlastParams {
            word_len: 3,
            word_threshold: 11,
            two_hit_window: 40,
            x_drop_ungapped: 7,
            gap_trigger: 22,
            band: 24,
            gaps: GapPenalties::new(10, 2),
            min_report_score: 35,
        }
    }
}

/// A reported database hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlastHit {
    /// Index of the subject in the database slice.
    pub db_index: usize,
    /// Gapped alignment score.
    pub score: i32,
    /// Seed position in the query where the extension was anchored.
    pub query_pos: usize,
    /// Seed position in the subject.
    pub subject_pos: usize,
}

/// Work counters for the staged search — used by the workload drivers to
/// attribute simulated time per phase (paper Figure 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlastStats {
    /// Raw word hits found in stage 1.
    pub word_hits: u64,
    /// Two-hit pairs that triggered ungapped extensions.
    pub ungapped_extensions: u64,
    /// Ungapped HSPs that reached the gap trigger.
    pub gapped_extensions: u64,
    /// DP cells evaluated during gapped extensions.
    pub gapped_cells: u64,
}

/// Inverted index from word id to query positions, including neighborhood
/// words (stage 1 preprocessing).
#[derive(Debug)]
pub struct WordIndex {
    word_len: usize,
    alpha: usize,
    map: HashMap<u32, Vec<u32>>,
}

fn word_id(codes: &[u8], alpha: usize) -> u32 {
    codes.iter().fold(0u32, |acc, &c| acc * alpha as u32 + c as u32)
}

impl WordIndex {
    /// Build the neighborhood word index of `query`.
    ///
    /// For each query position `i`, every word `w` with
    /// `score(query[i..i+k], w) >= threshold` is indexed. The neighborhood
    /// is enumerated recursively with pruning against the per-position
    /// maximum achievable remainder, so construction is fast for real
    /// thresholds.
    pub fn build(query: &Sequence, matrix: &SubstitutionMatrix, params: &BlastParams) -> Self {
        let k = params.word_len;
        let core = query.alphabet().core_size();
        let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
        if query.len() < k {
            return WordIndex { word_len: k, alpha: core, map };
        }
        // Per-residue best substitution score (for pruning).
        let best: Vec<i32> = (0..core)
            .map(|r| (0..core).map(|s| matrix.score(r as u8, s as u8)).max().unwrap_or(0))
            .collect();
        let q = query.codes();
        let mut word = vec![0u8; k];
        for i in 0..=(q.len() - k) {
            let target = &q[i..i + k];
            // Max achievable suffix score from each depth.
            let mut suffix_best = vec![0i32; k + 1];
            for d in (0..k).rev() {
                suffix_best[d] = suffix_best[d + 1] + best[target[d] as usize];
            }
            enumerate_neighborhood(
                target,
                matrix,
                core,
                params.word_threshold,
                0,
                0,
                &suffix_best,
                &mut word,
                &mut |w| {
                    map.entry(word_id(w, core)).or_default().push(i as u32);
                },
            );
        }
        WordIndex { word_len: k, alpha: core, map }
    }

    /// Query positions whose neighborhood contains the word at
    /// `subject[j..j+k]`, or an empty slice.
    pub fn lookup(&self, subject_word: &[u8]) -> &[u32] {
        debug_assert_eq!(subject_word.len(), self.word_len);
        if subject_word.iter().any(|&c| c as usize >= self.alpha) {
            return &[];
        }
        self.map.get(&word_id(subject_word, self.alpha)).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct words indexed.
    pub fn num_words(&self) -> usize {
        self.map.len()
    }
}

#[allow(clippy::too_many_arguments)]
fn enumerate_neighborhood(
    target: &[u8],
    matrix: &SubstitutionMatrix,
    core: usize,
    threshold: i32,
    depth: usize,
    score: i32,
    suffix_best: &[i32],
    word: &mut [u8],
    emit: &mut impl FnMut(&[u8]),
) {
    if depth == target.len() {
        if score >= threshold {
            emit(word);
        }
        return;
    }
    for c in 0..core as u8 {
        let s = score + matrix.score(target[depth], c);
        // Prune: even the best completions cannot reach the threshold.
        if s + suffix_best[depth + 1] < threshold {
            continue;
        }
        word[depth] = c;
        enumerate_neighborhood(
            target,
            matrix,
            core,
            threshold,
            depth + 1,
            s,
            suffix_best,
            word,
            emit,
        );
    }
}

/// Stage 3: ungapped X-drop extension of a word hit at `(qi, sj)`.
///
/// Returns `(score, best_q, best_s)` — the HSP score and the anchor (the
/// position pair where the running score peaked).
pub fn ungapped_extend(
    query: &[u8],
    subject: &[u8],
    qi: usize,
    sj: usize,
    word_len: usize,
    matrix: &SubstitutionMatrix,
    x_drop: i32,
) -> (i32, usize, usize) {
    // Score the seed word itself.
    let mut score: i32 = (0..word_len).map(|d| matrix.score(query[qi + d], subject[sj + d])).sum();
    let mut best = score;
    let (mut anchor_q, mut anchor_s) = (qi + word_len - 1, sj + word_len - 1);
    // Extend right.
    {
        let mut s = score;
        let (mut i, mut j) = (qi + word_len, sj + word_len);
        while i < query.len() && j < subject.len() {
            s += matrix.score(query[i], subject[j]);
            if s > best {
                best = s;
                anchor_q = i;
                anchor_s = j;
            }
            if s <= best - x_drop {
                break;
            }
            i += 1;
            j += 1;
        }
    }
    score = best;
    // Extend left.
    {
        let mut s = score;
        let (mut i, mut j) = (qi, sj);
        let mut running_best = score;
        while i > 0 && j > 0 {
            i -= 1;
            j -= 1;
            s += matrix.score(query[i], subject[j]);
            if s > running_best {
                running_best = s;
            }
            if s <= running_best - x_drop {
                break;
            }
        }
        best = running_best;
    }
    (best, anchor_q, anchor_s)
}

/// Stage 4 (`SEMI_G_ALIGN_EX`): banded affine gapped extension around an
/// anchor, in both directions. Returns the gapped score and counts DP cells
/// into `cells`.
///
/// The forward half aligns `query[anchor_q+1..]` vs `subject[anchor_s+1..]`
/// allowing free termination anywhere (score-maximising semi-global DP);
/// the backward half does the same on the reversed prefixes; the anchor
/// pair itself is scored once.
#[allow(clippy::too_many_arguments)]
pub fn gapped_extend_score(
    query: &[u8],
    subject: &[u8],
    anchor_q: usize,
    anchor_s: usize,
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    band: usize,
    cells: &mut u64,
) -> i32 {
    let anchor_score = matrix.score(query[anchor_q], subject[anchor_s]);
    let fwd = banded_semiglobal(
        &query[anchor_q + 1..],
        &subject[anchor_s + 1..],
        matrix,
        gaps,
        band,
        cells,
    );
    let q_rev: Vec<u8> = query[..anchor_q].iter().rev().copied().collect();
    let s_rev: Vec<u8> = subject[..anchor_s].iter().rev().copied().collect();
    let bwd = banded_semiglobal(&q_rev, &s_rev, matrix, gaps, band, cells);
    anchor_score + fwd + bwd
}

/// Best-prefix-pair score of a banded affine DP starting at the origin:
/// `max(0, max_{i,j in band} V(i,j))`.
fn banded_semiglobal(
    a: &[u8],
    b: &[u8],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    band: usize,
    cells: &mut u64,
) -> i32 {
    let (wg, ws) = (gaps.open, gaps.extend);
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return 0;
    }
    let width = m + 1;
    let mut v = vec![NEG_INF; width];
    let mut f = vec![NEG_INF; width];
    v[0] = 0;
    for j in 1..=m.min(band) {
        v[j] = -wg - j as i32 * ws;
        f[j] = v[j];
    }
    let mut best = 0i32;
    for i in 1..=n {
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(m);
        if lo > m {
            break;
        }
        let mut diag_prev = if lo == 1 { v[0] } else { v[lo - 1] };
        let v_i0 = if i <= band { -wg - i as i32 * ws } else { NEG_INF };
        if lo == 1 {
            v[0] = v_i0;
        }
        let mut e = if lo == 1 { v_i0 } else { NEG_INF };
        let mut v_left = if lo == 1 { v_i0 } else { NEG_INF };
        // Cells outside the band on the right edge must not leak stale
        // values from earlier rows into the diagonal term.
        if hi < m {
            v[hi + 1] = NEG_INF;
            f[hi + 1] = NEG_INF;
        }
        for j in lo..=hi {
            *cells += 1;
            let g = diag_prev + matrix.score(a[i - 1], b[j - 1]);
            let e_cur = e.max(v_left - wg) - ws;
            let f_cur = f[j].max(v[j] - wg) - ws;
            let val = g.max(e_cur).max(f_cur);
            diag_prev = v[j];
            v[j] = val;
            f[j] = f_cur;
            e = e_cur;
            v_left = val;
            if val > best {
                best = val;
            }
        }
    }
    best
}

/// Full staged search of `query` against `database`.
///
/// Returns hits (best first) and work counters.
///
/// # Example
///
/// ```
/// use bioseq::{generate::SeqGen, Alphabet, SubstitutionMatrix};
/// use bioalign::blast::{blastp, BlastParams};
///
/// let mut g = SeqGen::new(Alphabet::Protein, 8);
/// let query = g.uniform(150);
/// let db = g.database(&query, 40, 4, 100..200);
/// let (hits, stats) = blastp(&query, &db, &SubstitutionMatrix::blosum62(), &BlastParams::default());
/// assert!(hits.len() >= 3);
/// assert!(stats.gapped_extensions >= hits.len() as u64);
/// ```
pub fn blastp(
    query: &Sequence,
    database: &[Sequence],
    matrix: &SubstitutionMatrix,
    params: &BlastParams,
) -> (Vec<BlastHit>, BlastStats) {
    let mut stats = BlastStats::default();
    let index = WordIndex::build(query, matrix, params);
    let k = params.word_len;
    let mut hits = Vec::new();
    for (db_index, subject) in database.iter().enumerate() {
        if subject.len() < k {
            continue;
        }
        let s = subject.codes();
        let q = query.codes();
        // last_hit_end[diag] = subject offset just past the last word hit on
        // that diagonal; diag = j - i + query.len().
        let mut last_hit: HashMap<isize, usize> = HashMap::new();
        let mut extended_to: HashMap<isize, usize> = HashMap::new();
        let mut best_for_subject: Option<BlastHit> = None;
        for j in 0..=(s.len() - k) {
            for &qi in index.lookup(&s[j..j + k]) {
                let qi = qi as usize;
                stats.word_hits += 1;
                let diag = j as isize - qi as isize;
                // Skip regions already covered by an extension on this diagonal.
                if extended_to.get(&diag).is_some_and(|&end| j < end) {
                    continue;
                }
                let prev = last_hit.get(&diag).copied();
                // Overlapping hits are ignored entirely (they neither
                // trigger nor advance the recorded hit).
                if prev.is_some_and(|prev_end| j < prev_end) {
                    continue;
                }
                last_hit.insert(diag, j + k);
                let two_hit = prev.is_some_and(|prev_end| j - prev_end <= params.two_hit_window);
                if !two_hit {
                    continue;
                }
                stats.ungapped_extensions += 1;
                let (uscore, aq, asj) =
                    ungapped_extend(q, s, qi, j, k, matrix, params.x_drop_ungapped);
                if uscore < params.gap_trigger {
                    continue;
                }
                stats.gapped_extensions += 1;
                let gscore = gapped_extend_score(
                    q,
                    s,
                    aq,
                    asj,
                    matrix,
                    params.gaps,
                    params.band,
                    &mut stats.gapped_cells,
                );
                extended_to.insert(diag, asj + 1);
                if gscore >= params.min_report_score
                    && best_for_subject.as_ref().is_none_or(|h| gscore > h.score)
                {
                    best_for_subject =
                        Some(BlastHit { db_index, score: gscore, query_pos: aq, subject_pos: asj });
                }
            }
        }
        if let Some(h) = best_for_subject {
            hits.push(h);
        }
    }
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
    (hits, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::{generate::SeqGen, Alphabet};

    fn blosum() -> SubstitutionMatrix {
        SubstitutionMatrix::blosum62()
    }

    #[test]
    fn word_index_contains_exact_words() {
        let mut g = SeqGen::new(Alphabet::Protein, 1);
        let q = g.uniform(50);
        let params = BlastParams::default();
        let idx = WordIndex::build(&q, &blosum(), &params);
        // Every exact query word that scores itself >= threshold must be present.
        let m = blosum();
        for i in 0..=(q.len() - 3) {
            let w = &q.codes()[i..i + 3];
            let self_score: i32 = w.iter().map(|&c| m.score(c, c)).sum();
            if self_score >= params.word_threshold {
                assert!(idx.lookup(w).contains(&(i as u32)), "exact word at {i} missing");
            }
        }
    }

    #[test]
    fn word_index_neighborhood_members_score_above_threshold() {
        let q = Sequence::from_text("q", Alphabet::Protein, "WWW").unwrap();
        let params = BlastParams::default();
        let idx = WordIndex::build(&q, &blosum(), &params);
        // W scores 11 against itself; WWW self-score 33 — many neighbors.
        assert!(idx.num_words() > 1);
        let m = blosum();
        // Check a specific neighbor: WWF (W/W 11 + W/W 11 + W/F 1 = 23 >= 11).
        let f = Alphabet::Protein.encode(b'F').unwrap();
        let w = Alphabet::Protein.encode(b'W').unwrap();
        assert!(idx.lookup(&[w, w, f]).contains(&0));
        assert_eq!(m.score(w, f), 1, "sanity: W/F BLOSUM62 score changed?");
    }

    #[test]
    fn ungapped_extend_covers_perfect_match() {
        let mut g = SeqGen::new(Alphabet::Protein, 2);
        let q = g.uniform(40);
        let m = blosum();
        let (score, aq, asj) = ungapped_extend(q.codes(), q.codes(), 10, 10, 3, &m, 7);
        let self_score: i32 = q.codes().iter().map(|&c| m.score(c, c)).sum();
        assert_eq!(score, self_score);
        assert_eq!(aq, q.len() - 1);
        assert_eq!(asj, q.len() - 1);
    }

    #[test]
    fn ungapped_extend_stops_at_xdrop() {
        // Identical prefix, then garbage: extension must stop near the
        // boundary instead of dragging through the mismatches.
        let m = SubstitutionMatrix::identity(Alphabet::Protein, 5, -5);
        let a = Sequence::from_text("a", Alphabet::Protein, "MKVWHEAGPPPPPPPP").unwrap();
        let b = Sequence::from_text("b", Alphabet::Protein, "MKVWHEAGWWWWWWWW").unwrap();
        let (score, aq, _) = ungapped_extend(a.codes(), b.codes(), 0, 0, 3, &m, 7);
        assert_eq!(score, 8 * 5);
        assert_eq!(aq, 7);
    }

    #[test]
    fn gapped_extension_recovers_full_identity_score() {
        let mut g = SeqGen::new(Alphabet::Protein, 3);
        let q = g.uniform(60);
        let m = blosum();
        let mut cells = 0;
        let s = gapped_extend_score(
            q.codes(),
            q.codes(),
            30,
            30,
            &m,
            GapPenalties::new(10, 2),
            16,
            &mut cells,
        );
        let self_score: i32 = q.codes().iter().map(|&c| m.score(c, c)).sum();
        assert_eq!(s, self_score);
        assert!(cells > 0);
    }

    #[test]
    fn gapped_extension_bridges_a_gap() {
        let m = SubstitutionMatrix::identity(Alphabet::Protein, 5, -4);
        // Subject has 2 extra residues in the middle vs query.
        let q = Sequence::from_text("q", Alphabet::Protein, "MKVWHEAGMKVWHEAG").unwrap();
        let s = Sequence::from_text("s", Alphabet::Protein, "MKVWHEAGPPMKVWHEAG").unwrap();
        let mut cells = 0;
        let score = gapped_extend_score(
            q.codes(),
            s.codes(),
            3,
            3,
            &m,
            GapPenalties::new(3, 1),
            10,
            &mut cells,
        );
        // 16 matches * 5 - gap(2) = 80 - (3 + 2) = 75.
        assert_eq!(score, 75);
    }

    #[test]
    fn blastp_finds_planted_homologs() {
        let mut g = SeqGen::new(Alphabet::Protein, 8);
        let query = g.uniform(150);
        let db = g.database(&query, 40, 4, 100..200);
        let (hits, stats) = blastp(&query, &db, &blosum(), &BlastParams::default());
        assert!(hits.len() >= 3, "found only {} hits", hits.len());
        assert!(stats.word_hits > stats.ungapped_extensions);
        assert!(stats.ungapped_extensions >= stats.gapped_extensions);
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn blastp_self_search_scores_near_self_similarity() {
        let mut g = SeqGen::new(Alphabet::Protein, 21);
        let query = g.uniform(100);
        let m = blosum();
        let (hits, _) = blastp(&query, std::slice::from_ref(&query), &m, &BlastParams::default());
        assert_eq!(hits.len(), 1);
        let self_score: i32 = query.codes().iter().map(|&c| m.score(c, c)).sum();
        // Banded extension may clip slightly, but must be close.
        assert!(hits[0].score >= self_score * 9 / 10, "{} vs {self_score}", hits[0].score);
    }

    #[test]
    fn blastp_mostly_ignores_random_database() {
        let mut g = SeqGen::new(Alphabet::Protein, 5);
        let query = g.uniform(120);
        // Unrelated database (no planted homologs).
        let other = g.uniform(120);
        let db = g.database(&other, 30, 0, 80..160);
        let (hits, _) = blastp(&query, &db, &blosum(), &BlastParams::default());
        assert!(hits.len() <= 3, "too many random hits: {}", hits.len());
    }

    #[test]
    fn blastp_short_subject_is_skipped() {
        let query = Sequence::from_text("q", Alphabet::Protein, "MKVWHEAGMKVW").unwrap();
        let tiny = Sequence::from_text("t", Alphabet::Protein, "MK").unwrap();
        let (hits, stats) = blastp(&query, &[tiny], &blosum(), &BlastParams::default());
        assert!(hits.is_empty());
        assert_eq!(stats.word_hits, 0);
    }
}
