//! Neighbor joining — the other classic guide-tree construction.
//!
//! Clustalw 1.8x builds its guide tree with neighbor joining (Saitou & Nei
//! 1987) rather than UPGMA; this module provides it as an alternative to
//! [`crate::msa::upgma`], with the standard Q-matrix selection and
//! branch-length estimates.

use crate::msa::DistanceMatrix;

/// A node of an unrooted NJ tree, rooted arbitrarily at the final join.
#[derive(Debug, Clone, PartialEq)]
pub enum NjTree {
    /// An input sequence, by index.
    Leaf(usize),
    /// An internal join.
    Node {
        /// Left child and its branch length.
        left: (Box<NjTree>, f64),
        /// Right child and its branch length.
        right: (Box<NjTree>, f64),
    },
}

impl NjTree {
    /// Indices of all leaves under this node, left to right.
    pub fn leaves(&self) -> Vec<usize> {
        match self {
            NjTree::Leaf(i) => vec![*i],
            NjTree::Node { left, right } => {
                let mut l = left.0.leaves();
                l.extend(right.0.leaves());
                l
            }
        }
    }

    /// Total branch length of the tree.
    pub fn total_length(&self) -> f64 {
        match self {
            NjTree::Leaf(_) => 0.0,
            NjTree::Node { left, right } => {
                left.1.max(0.0) + right.1.max(0.0) + left.0.total_length() + right.0.total_length()
            }
        }
    }

    /// Render in Newick format (`(a:0.1,b:0.2);` style, leaf indices as
    /// names).
    pub fn to_newick(&self) -> String {
        fn go(t: &NjTree, out: &mut String) {
            match t {
                NjTree::Leaf(i) => out.push_str(&i.to_string()),
                NjTree::Node { left, right } => {
                    out.push('(');
                    go(&left.0, out);
                    out.push_str(&format!(":{:.4},", left.1.max(0.0)));
                    go(&right.0, out);
                    out.push_str(&format!(":{:.4})", right.1.max(0.0)));
                }
            }
        }
        let mut s = String::new();
        go(self, &mut s);
        s.push(';');
        s
    }
}

/// Build a neighbor-joining tree from a distance matrix.
///
/// # Panics
///
/// Panics if the matrix is empty.
pub fn neighbor_joining(dist: &DistanceMatrix) -> NjTree {
    let n = dist.len();
    assert!(n > 0, "cannot build a tree from zero sequences");
    if n == 1 {
        return NjTree::Leaf(0);
    }
    // Working copies: active node list with trees and a mutable distance
    // table indexed by slot.
    let mut nodes: Vec<Option<NjTree>> = (0..n).map(|i| Some(NjTree::Leaf(i))).collect();
    let mut d: Vec<Vec<f64>> = (0..n).map(|i| (0..n).map(|j| dist.get(i, j)).collect()).collect();
    let mut active: Vec<usize> = (0..n).collect();

    while active.len() > 2 {
        let r = active.len() as f64;
        // Row sums over active entries.
        let sums: Vec<f64> =
            active.iter().map(|&i| active.iter().map(|&j| d[i][j]).sum()).collect();
        // Q(i,j) = (r-2) d(i,j) − sum_i − sum_j; pick the minimum.
        let (mut bi, mut bj, mut bq) = (0usize, 1usize, f64::INFINITY);
        for (ai, &i) in active.iter().enumerate() {
            for (aj, &j) in active.iter().enumerate().skip(ai + 1) {
                let q = (r - 2.0) * d[i][j] - sums[ai] - sums[aj];
                if q < bq {
                    bq = q;
                    bi = ai;
                    bj = aj;
                }
            }
        }
        let (i, j) = (active[bi], active[bj]);
        // Branch lengths to the new node.
        let li = 0.5 * d[i][j] + (sums[bi] - sums[bj]) / (2.0 * (r - 2.0));
        let lj = d[i][j] - li;
        let left = nodes[i].take().expect("active node");
        let right = nodes[j].take().expect("active node");
        let joined = NjTree::Node { left: (Box::new(left), li), right: (Box::new(right), lj) };
        // Distances from the new node (reuse slot i).
        let dij = d[i][j];
        for &k in &active {
            if k != i && k != j {
                let dk = 0.5 * (d[i][k] + d[j][k] - dij);
                d[i][k] = dk;
                d[k][i] = dk;
            }
        }
        nodes[i] = Some(joined);
        active.remove(bj);
    }
    // Join the last two.
    let (i, j) = (active[0], active[1]);
    let dij = d[i][j];
    let left = nodes[i].take().expect("active");
    let right = nodes[j].take().expect("active");
    NjTree::Node { left: (Box::new(left), 0.5 * dij), right: (Box::new(right), 0.5 * dij) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msa::pairwise_distances;
    use bioseq::generate::SeqGen;
    use bioseq::{Alphabet, GapPenalties, SubstitutionMatrix};

    /// The classic 4-taxon additive example: NJ must recover exact branch
    /// lengths for an additive matrix.
    fn additive_matrix() -> DistanceMatrix {
        // Tree: (A:2,B:3)-1-(C:4,D:5), i.e. dAB=5, dAC=7, dAD=8, dBC=8,
        // dBD=9, dCD=9.
        DistanceMatrix::from_flat(
            4,
            vec![
                0.0, 5.0, 7.0, 8.0, //
                5.0, 0.0, 8.0, 9.0, //
                7.0, 8.0, 0.0, 9.0, //
                8.0, 9.0, 9.0, 0.0,
            ],
        )
    }

    #[test]
    fn recovers_additive_topology() {
        let tree = neighbor_joining(&additive_matrix());
        // A and B must be siblings somewhere in the tree.
        fn siblings(t: &NjTree) -> Vec<(Vec<usize>, Vec<usize>)> {
            match t {
                NjTree::Leaf(_) => vec![],
                NjTree::Node { left, right } => {
                    let mut v = vec![(left.0.leaves(), right.0.leaves())];
                    v.extend(siblings(&left.0));
                    v.extend(siblings(&right.0));
                    v
                }
            }
        }
        let pairs = siblings(&tree);
        let ab_joined = pairs
            .iter()
            .any(|(l, r)| (l == &vec![0] && r == &vec![1]) || (l == &vec![1] && r == &vec![0]));
        assert!(ab_joined, "A,B not siblings: {}", tree.to_newick());
        // Additive matrix ⇒ total branch length = 2+3+1+4+5 = 15.
        assert!((tree.total_length() - 15.0).abs() < 1e-9, "total length {}", tree.total_length());
    }

    #[test]
    fn covers_all_leaves() {
        let mut g = SeqGen::new(Alphabet::Protein, 3);
        let fam = g.family(7, 50, 0.3, 0.0);
        let d = pairwise_distances(&fam, &SubstitutionMatrix::blosum62(), GapPenalties::new(10, 2));
        let tree = neighbor_joining(&d);
        let mut leaves = tree.leaves();
        leaves.sort_unstable();
        assert_eq!(leaves, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn close_relatives_join_first() {
        let mut g = SeqGen::new(Alphabet::Protein, 11);
        let anc = g.uniform(80);
        let twin = g.mutate(&anc, 0.02);
        let far1 = g.uniform(80);
        let far2 = g.uniform(80);
        let seqs = vec![anc, twin, far1, far2];
        let d =
            pairwise_distances(&seqs, &SubstitutionMatrix::blosum62(), GapPenalties::new(10, 2));
        let tree = neighbor_joining(&d);
        let newick = tree.to_newick();
        // 0 and 1 must appear as a cherry.
        assert!(
            newick.contains("(0:") && newick.contains(",1:")
                || newick.contains("(1:") && newick.contains(",0:"),
            "{newick}"
        );
    }

    #[test]
    fn single_and_pair_edge_cases() {
        let d1 = DistanceMatrix::from_flat(1, vec![0.0]);
        assert_eq!(neighbor_joining(&d1), NjTree::Leaf(0));
        let d2 = DistanceMatrix::from_flat(2, vec![0.0, 4.0, 4.0, 0.0]);
        let t = neighbor_joining(&d2);
        assert!((t.total_length() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn newick_is_well_formed() {
        let tree = neighbor_joining(&additive_matrix());
        let s = tree.to_newick();
        assert!(s.ends_with(';'));
        assert_eq!(s.matches('(').count(), s.matches(')').count());
        for i in 0..4 {
            assert!(s.contains(&i.to_string()));
        }
    }
}
