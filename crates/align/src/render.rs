//! Human-readable alignment rendering (the classic three-line view).
//!
//! ```text
//! query    1 HEAGAWGHE-E 10
//!            ||  AWHE  |
//! subject  4 PA--AWHEAEE 12
//! ```
//!
//! The middle line marks identities with `|`, positive BLOSUM scores with
//! `+`, and everything else with a space — the convention of BLAST's
//! pairwise report.

use crate::pairwise::{AlignOp, GlobalAlignment, LocalAlignment};
use bioseq::{Sequence, SubstitutionMatrix};

/// One rendered alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rendered {
    /// The three display lines per block, concatenated with newlines.
    pub text: String,
    /// Number of identical columns.
    pub identities: usize,
    /// Number of positively scoring (but not identical) columns.
    pub positives: usize,
    /// Number of gap columns.
    pub gaps: usize,
    /// Total alignment columns.
    pub columns: usize,
}

fn render_ops(
    ops: &[AlignOp],
    a: &Sequence,
    b: &Sequence,
    mut ai: usize,
    mut bi: usize,
    matrix: &SubstitutionMatrix,
    width: usize,
) -> Rendered {
    let alphabet = a.alphabet();
    let mut top = String::new();
    let mut mid = String::new();
    let mut bot = String::new();
    let (mut identities, mut positives, mut gaps) = (0, 0, 0);
    for op in ops {
        match op {
            AlignOp::Subst => {
                let (ca, cb) = (a.codes()[ai], b.codes()[bi]);
                top.push(alphabet.decode(ca) as char);
                bot.push(alphabet.decode(cb) as char);
                if ca == cb {
                    mid.push('|');
                    identities += 1;
                } else if matrix.score(ca, cb) > 0 {
                    mid.push('+');
                    positives += 1;
                } else {
                    mid.push(' ');
                }
                ai += 1;
                bi += 1;
            }
            AlignOp::InsertA => {
                top.push('-');
                mid.push(' ');
                bot.push(alphabet.decode(b.codes()[bi]) as char);
                bi += 1;
                gaps += 1;
            }
            AlignOp::InsertB => {
                top.push(alphabet.decode(a.codes()[ai]) as char);
                mid.push(' ');
                bot.push('-');
                ai += 1;
                gaps += 1;
            }
        }
    }
    // Wrap into blocks of `width` columns.
    let columns = ops.len();
    let mut text = String::new();
    let mut start = 0;
    while start < columns {
        let end = (start + width).min(columns);
        text.push_str(&top[start..end]);
        text.push('\n');
        text.push_str(&mid[start..end]);
        text.push('\n');
        text.push_str(&bot[start..end]);
        text.push('\n');
        if end < columns {
            text.push('\n');
        }
        start = end;
    }
    Rendered { text, identities, positives, gaps, columns }
}

/// Render a local alignment at the given line width.
///
/// # Panics
///
/// Panics if the alignment's coordinates do not fit the sequences.
pub fn render_local(
    aln: &LocalAlignment,
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstitutionMatrix,
    width: usize,
) -> Rendered {
    render_ops(&aln.ops, a, b, aln.start_a, aln.start_b, matrix, width.max(10))
}

/// Render a global alignment at the given line width.
///
/// # Panics
///
/// Panics if the alignment's ops do not cover the sequences.
pub fn render_global(
    aln: &GlobalAlignment,
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstitutionMatrix,
    width: usize,
) -> Rendered {
    render_ops(&aln.ops, a, b, 0, 0, matrix, width.max(10))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::{needleman_wunsch, smith_waterman};
    use bioseq::{Alphabet, GapPenalties};

    fn prot(s: &str) -> Sequence {
        Sequence::from_text("t", Alphabet::Protein, s).unwrap()
    }

    #[test]
    fn identical_sequences_render_all_bars() {
        let a = prot("MKVWHEAG");
        let m = SubstitutionMatrix::blosum62();
        let aln = needleman_wunsch(a.codes(), a.codes(), &m, GapPenalties::new(10, 2));
        let r = render_global(&aln, &a, &a, &m, 60);
        assert_eq!(r.identities, 8);
        assert_eq!(r.gaps, 0);
        let lines: Vec<&str> = r.text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "MKVWHEAG");
        assert_eq!(lines[1], "||||||||");
        assert_eq!(lines[2], "MKVWHEAG");
    }

    #[test]
    fn gaps_render_dashes() {
        let a = prot("MKVWHEAG");
        let b = prot("MKVHEAG"); // W deleted
        let m = SubstitutionMatrix::blosum62();
        let aln = needleman_wunsch(a.codes(), b.codes(), &m, GapPenalties::new(10, 2));
        let r = render_global(&aln, &a, &b, &m, 60);
        assert_eq!(r.gaps, 1);
        assert!(r.text.contains('-'));
        assert_eq!(r.columns, 8);
    }

    #[test]
    fn positives_marked_plus() {
        // I/L scores +2 in BLOSUM62: a positive non-identity.
        let a = prot("MKIW");
        let b = prot("MKLW");
        let m = SubstitutionMatrix::blosum62();
        let aln = needleman_wunsch(a.codes(), b.codes(), &m, GapPenalties::new(10, 2));
        let r = render_global(&aln, &a, &b, &m, 60);
        assert_eq!(r.identities, 3);
        assert_eq!(r.positives, 1);
        assert!(r.text.lines().nth(1).unwrap().contains('+'));
    }

    #[test]
    fn local_render_covers_only_the_matched_region() {
        let m = SubstitutionMatrix::blosum62();
        let a = prot("PPPPMKVWHEAGPPPP");
        let b = prot("MKVWHEAG");
        let aln = smith_waterman(a.codes(), b.codes(), &m, GapPenalties::new(10, 2));
        let r = render_local(&aln, &a, &b, &m, 60);
        assert_eq!(r.columns, 8);
        assert_eq!(r.identities, 8);
        assert!(!r.text.contains('P'));
    }

    #[test]
    fn wrapping_produces_multiple_blocks() {
        let text: String = "MKVWHEAG".repeat(4);
        let a = prot(&text);
        let m = SubstitutionMatrix::blosum62();
        let aln = needleman_wunsch(a.codes(), a.codes(), &m, GapPenalties::new(10, 2));
        let r = render_global(&aln, &a, &a, &m, 10);
        // 32 columns at width 10 → 4 blocks of 3 lines + separators.
        let blank_separators = r.text.matches("\n\n").count();
        assert_eq!(blank_separators, 3);
    }
}
