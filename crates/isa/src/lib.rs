//! PowerPC-subset instruction set architecture.
//!
//! This crate defines the ISA executed by the POWER5 timing model: a
//! faithful subset of the 32-bit PowerPC application ISA (the paper's
//! kernels are plain 32-bit integer code), extended with the paper's two
//! proposed predicated instructions:
//!
//! * **`isel RT,RA,RB,BC`** — the embedded-PowerPC integer select, chosen
//!   by a condition-register bit (requires a preceding `cmp`);
//! * **`maxw RT,RA,RB`** — the paper's hypothetical single-cycle fused
//!   signed maximum ("we selected an unused PowerPC primary and extended
//!   opcode combination").
//!
//! Provided here:
//!
//! * [`insn::Instruction`] — the decoded instruction enum with per-insn
//!   classification (execution unit, latency class, registers read and
//!   written) consumed by the timing model;
//! * [`mod@encode`] — binary encode/decode in genuine PowerPC instruction
//!   formats (D/X/XO/I/B/M-form), property-tested for round-tripping;
//! * [`disasm`] — textual disassembly;
//! * [`exec`] — functional semantics: [`exec::CpuState`] + [`exec::Memory`]
//!   with a single-instruction [`exec::step`] that also reports the
//!   branch/memory events the timing model needs.
//!
//! # Example
//!
//! ```
//! use ppc_isa::insn::Instruction;
//! use ppc_isa::reg::Gpr;
//! use ppc_isa::encode::{encode, decode};
//!
//! let insn = Instruction::Add { rt: Gpr(3), ra: Gpr(4), rb: Gpr(5) };
//! let word = encode(&insn);
//! assert_eq!(decode(word)?, insn);
//! assert_eq!(insn.to_string(), "add r3, r4, r5");
//! # Ok::<(), ppc_isa::encode::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disasm;
pub mod encode;
pub mod exec;
pub mod insn;
pub mod reg;

pub use encode::{decode, encode, DecodeError};
pub use exec::{eval_cond, rlwinm_mask, step, CpuState, Memory, StepEvent};
pub use insn::{ExecUnit, Instruction, LatencyClass};
pub use reg::{CrBit, CrField, Gpr};
