//! Binary encoding and decoding in genuine PowerPC instruction formats.
//!
//! PowerPC numbers bits big-endian: bit 0 is the most significant bit of
//! the 32-bit word. The primary opcode occupies bits 0–5; opcode-31
//! instructions carry a 10-bit extended opcode in bits 21–30 (XO-form
//! arithmetic uses bits 22–30 with an OE bit at 21 — with OE always 0 the
//! 10-bit view is equivalent, which is how we dispatch).
//!
//! The paper's `maxw` extension is encoded as opcode 31 / extended opcode
//! 333 — "an unused PowerPC primary and extended opcode combination", per
//! its Section IV-A. `isel` uses its real embedded-PowerPC encoding
//! (opcode 31, 5-bit extended opcode 15 in bits 26–30 with the `BC` field
//! at bits 21–25).

use crate::insn::{BranchCond, Instruction};
use crate::reg::{CrBit, CrField, Gpr};
use std::fmt;

/// Error returned when a word does not decode to a subset instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The instruction word.
    pub word: u32,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#010x}: {}", self.word, self.reason)
    }
}

impl std::error::Error for DecodeError {}

// Place `value` into big-endian bits `start..=end`.
#[inline]
fn put(value: u32, start: u32, end: u32) -> u32 {
    debug_assert!(start <= end && end <= 31);
    let width = end - start + 1;
    debug_assert!(width == 32 || value < (1 << width), "field overflow");
    value << (31 - end)
}

// Extract big-endian bits `start..=end`.
#[inline]
fn get(word: u32, start: u32, end: u32) -> u32 {
    let width = end - start + 1;
    (word >> (31 - end)) & ((1u64 << width) as u32).wrapping_sub(1)
}

fn bo_of(cond: BranchCond) -> (u32, u32) {
    match cond {
        BranchCond::IfFalse(bit) => (0b00100, bit.0 as u32),
        BranchCond::IfTrue(bit) => (0b01100, bit.0 as u32),
        BranchCond::DecrementNotZero => (0b10000, 0),
        BranchCond::Always => (0b10100, 0),
    }
}

fn cond_of(bo: u32, bi: u32, word: u32) -> Result<BranchCond, DecodeError> {
    match bo {
        0b00100 => Ok(BranchCond::IfFalse(CrBit(bi as u8))),
        0b01100 => Ok(BranchCond::IfTrue(CrBit(bi as u8))),
        0b10000 => Ok(BranchCond::DecrementNotZero),
        0b10100 => Ok(BranchCond::Always),
        _ => Err(DecodeError { word, reason: "unsupported BO field" }),
    }
}

/// Extended opcode chosen for the hypothetical `maxw` (unused in the real
/// Power ISA's opcode-31 space).
pub const MAXW_XO: u32 = 333;

/// Encode an instruction to its 32-bit word.
pub fn encode(insn: &Instruction) -> u32 {
    use Instruction::*;
    let d_form = |op: u32, rt: Gpr, ra: Gpr, imm: u16| {
        put(op, 0, 5) | put(rt.0 as u32, 6, 10) | put(ra.0 as u32, 11, 15) | put(imm as u32, 16, 31)
    };
    let x_form = |rt: u32, ra: u32, rb: u32, xo: u32| {
        put(31, 0, 5) | put(rt, 6, 10) | put(ra, 11, 15) | put(rb, 16, 20) | put(xo, 21, 30)
    };
    match *insn {
        Addi { rt, ra, imm } => d_form(14, rt, ra, imm as u16),
        Addis { rt, ra, imm } => d_form(15, rt, ra, imm as u16),
        Add { rt, ra, rb } => x_form(rt.0 as u32, ra.0 as u32, rb.0 as u32, 266),
        Subf { rt, ra, rb } => x_form(rt.0 as u32, ra.0 as u32, rb.0 as u32, 40),
        Neg { rt, ra } => x_form(rt.0 as u32, ra.0 as u32, 0, 104),
        Mullw { rt, ra, rb } => x_form(rt.0 as u32, ra.0 as u32, rb.0 as u32, 235),
        Divw { rt, ra, rb } => x_form(rt.0 as u32, ra.0 as u32, rb.0 as u32, 491),
        And { ra, rs, rb } => x_form(rs.0 as u32, ra.0 as u32, rb.0 as u32, 28),
        Or { ra, rs, rb } => x_form(rs.0 as u32, ra.0 as u32, rb.0 as u32, 444),
        Xor { ra, rs, rb } => x_form(rs.0 as u32, ra.0 as u32, rb.0 as u32, 316),
        Ori { ra, rs, uimm } => d_form(24, rs, ra, uimm),
        AndiDot { ra, rs, uimm } => d_form(28, rs, ra, uimm),
        Xori { ra, rs, uimm } => d_form(26, rs, ra, uimm),
        Slw { ra, rs, rb } => x_form(rs.0 as u32, ra.0 as u32, rb.0 as u32, 24),
        Srw { ra, rs, rb } => x_form(rs.0 as u32, ra.0 as u32, rb.0 as u32, 536),
        Sraw { ra, rs, rb } => x_form(rs.0 as u32, ra.0 as u32, rb.0 as u32, 792),
        Srawi { ra, rs, sh } => x_form(rs.0 as u32, ra.0 as u32, sh as u32, 824),
        Rlwinm { ra, rs, sh, mb, me } => {
            put(21, 0, 5)
                | put(rs.0 as u32, 6, 10)
                | put(ra.0 as u32, 11, 15)
                | put(sh as u32, 16, 20)
                | put(mb as u32, 21, 25)
                | put(me as u32, 26, 30)
        }
        Extsb { ra, rs } => x_form(rs.0 as u32, ra.0 as u32, 0, 954),
        Extsh { ra, rs } => x_form(rs.0 as u32, ra.0 as u32, 0, 922),
        Cmpw { crf, ra, rb } => x_form((crf.0 as u32) << 2, ra.0 as u32, rb.0 as u32, 0),
        Cmplw { crf, ra, rb } => x_form((crf.0 as u32) << 2, ra.0 as u32, rb.0 as u32, 32),
        Cmpwi { crf, ra, imm } => {
            put(11, 0, 5)
                | put((crf.0 as u32) << 2, 6, 10)
                | put(ra.0 as u32, 11, 15)
                | put(imm as u16 as u32, 16, 31)
        }
        Cmplwi { crf, ra, uimm } => {
            put(10, 0, 5)
                | put((crf.0 as u32) << 2, 6, 10)
                | put(ra.0 as u32, 11, 15)
                | put(uimm as u32, 16, 31)
        }
        Isel { rt, ra, rb, bc } => {
            put(31, 0, 5)
                | put(rt.0 as u32, 6, 10)
                | put(ra.0 as u32, 11, 15)
                | put(rb.0 as u32, 16, 20)
                | put(bc.0 as u32, 21, 25)
                | put(15, 26, 30)
        }
        Maxw { rt, ra, rb } => x_form(rt.0 as u32, ra.0 as u32, rb.0 as u32, MAXW_XO),
        B { offset, link } => {
            debug_assert!(offset % 4 == 0, "branch offsets are word-aligned");
            let li = ((offset >> 2) as u32) & 0x00FF_FFFF;
            put(18, 0, 5) | put(li, 6, 29) | put(link as u32, 31, 31)
        }
        Bc { cond, offset, link } => {
            debug_assert!(offset % 4 == 0);
            let (bo, bi) = bo_of(cond);
            let bd = (((offset as i32) >> 2) as u32) & 0x3FFF;
            put(16, 0, 5)
                | put(bo, 6, 10)
                | put(bi, 11, 15)
                | put(bd, 16, 29)
                | put(link as u32, 31, 31)
        }
        Bclr { cond } => {
            let (bo, bi) = bo_of(cond);
            put(19, 0, 5) | put(bo, 6, 10) | put(bi, 11, 15) | put(16, 21, 30)
        }
        Bcctr { cond } => {
            let (bo, bi) = bo_of(cond);
            put(19, 0, 5) | put(bo, 6, 10) | put(bi, 11, 15) | put(528, 21, 30)
        }
        Lwz { rt, ra, disp } => d_form(32, rt, ra, disp as u16),
        Lbz { rt, ra, disp } => d_form(34, rt, ra, disp as u16),
        Lhz { rt, ra, disp } => d_form(40, rt, ra, disp as u16),
        Lha { rt, ra, disp } => d_form(42, rt, ra, disp as u16),
        Stw { rs, ra, disp } => d_form(36, rs, ra, disp as u16),
        Stb { rs, ra, disp } => d_form(38, rs, ra, disp as u16),
        Sth { rs, ra, disp } => d_form(44, rs, ra, disp as u16),
        Lwzx { rt, ra, rb } => x_form(rt.0 as u32, ra.0 as u32, rb.0 as u32, 23),
        Lbzx { rt, ra, rb } => x_form(rt.0 as u32, ra.0 as u32, rb.0 as u32, 87),
        Stwx { rs, ra, rb } => x_form(rs.0 as u32, ra.0 as u32, rb.0 as u32, 151),
        // SPR numbers encode with their 5-bit halves swapped; LR = 8 and
        // CTR = 9 both fit in the low half, which lands in bits 11–15.
        Mflr { rt } => x_form(rt.0 as u32, 8, 0, 339),
        Mfctr { rt } => x_form(rt.0 as u32, 9, 0, 339),
        Mtlr { rs } => x_form(rs.0 as u32, 8, 0, 467),
        Mtctr { rs } => x_form(rs.0 as u32, 9, 0, 467),
        Trap => x_form(31, 0, 0, 4),
    }
}

/// Decode a 32-bit word.
///
/// # Errors
///
/// Returns [`DecodeError`] for words outside the subset (unknown primary or
/// extended opcodes, unsupported `BO` fields, set `Rc`/`OE` bits).
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    use Instruction::*;
    let op = get(word, 0, 5);
    let rt = Gpr(get(word, 6, 10) as u8);
    let ra = Gpr(get(word, 11, 15) as u8);
    let rb = Gpr(get(word, 16, 20) as u8);
    let imm = get(word, 16, 31) as u16;
    let err = |reason| Err(DecodeError { word, reason });
    match op {
        10 => Ok(Cmplwi { crf: CrField((rt.0 >> 2) & 7), ra, uimm: imm }),
        11 => Ok(Cmpwi { crf: CrField((rt.0 >> 2) & 7), ra, imm: imm as i16 }),
        14 => Ok(Addi { rt, ra, imm: imm as i16 }),
        15 => Ok(Addis { rt, ra, imm: imm as i16 }),
        16 => {
            if get(word, 30, 30) != 0 {
                return err("absolute bc not supported");
            }
            let cond = cond_of(get(word, 6, 10), get(word, 11, 15), word)?;
            let bd = get(word, 16, 29);
            // Sign-extend the 14-bit word offset and rescale to bytes.
            let offset = ((bd << 18) as i32 >> 18) << 2;
            Ok(Bc { cond, offset: offset as i16, link: get(word, 31, 31) != 0 })
        }
        18 => {
            if get(word, 30, 30) != 0 {
                return err("absolute b not supported");
            }
            let li = get(word, 6, 29);
            let offset = ((li << 8) as i32 >> 8) << 2;
            Ok(B { offset, link: get(word, 31, 31) != 0 })
        }
        19 => {
            let cond = cond_of(get(word, 6, 10), get(word, 11, 15), word)?;
            match get(word, 21, 30) {
                16 => Ok(Bclr { cond }),
                528 => Ok(Bcctr { cond }),
                _ => err("unknown opcode-19 extended opcode"),
            }
        }
        21 => Ok(Rlwinm {
            ra,
            rs: rt,
            sh: get(word, 16, 20) as u8,
            mb: get(word, 21, 25) as u8,
            me: get(word, 26, 30) as u8,
        }),
        24 => Ok(Ori { ra, rs: rt, uimm: imm }),
        26 => Ok(Xori { ra, rs: rt, uimm: imm }),
        28 => Ok(AndiDot { ra, rs: rt, uimm: imm }),
        32 => Ok(Lwz { rt, ra, disp: imm as i16 }),
        34 => Ok(Lbz { rt, ra, disp: imm as i16 }),
        36 => Ok(Stw { rs: rt, ra, disp: imm as i16 }),
        38 => Ok(Stb { rs: rt, ra, disp: imm as i16 }),
        40 => Ok(Lhz { rt, ra, disp: imm as i16 }),
        42 => Ok(Lha { rt, ra, disp: imm as i16 }),
        44 => Ok(Sth { rs: rt, ra, disp: imm as i16 }),
        31 => {
            // isel dispatches on the 5-bit extended opcode first.
            if get(word, 26, 30) == 15 {
                return Ok(Isel { rt, ra, rb, bc: CrBit(get(word, 21, 25) as u8) });
            }
            if get(word, 31, 31) != 0 {
                return err("Rc forms not supported");
            }
            match get(word, 21, 30) {
                0 => Ok(Cmpw { crf: CrField((rt.0 >> 2) & 7), ra, rb }),
                4 => {
                    if rt.0 == 31 {
                        Ok(Trap)
                    } else {
                        err("only trap-always (tw 31,...) is supported")
                    }
                }
                23 => Ok(Lwzx { rt, ra, rb }),
                24 => Ok(Slw { ra, rs: rt, rb }),
                28 => Ok(And { ra, rs: rt, rb }),
                32 => Ok(Cmplw { crf: CrField((rt.0 >> 2) & 7), ra, rb }),
                40 => Ok(Subf { rt, ra, rb }),
                87 => Ok(Lbzx { rt, ra, rb }),
                104 => Ok(Neg { rt, ra }),
                151 => Ok(Stwx { rs: rt, ra, rb }),
                235 => Ok(Mullw { rt, ra, rb }),
                266 => Ok(Add { rt, ra, rb }),
                316 => Ok(Xor { ra, rs: rt, rb }),
                MAXW_XO => Ok(Maxw { rt, ra, rb }),
                339 => match ra.0 {
                    8 => Ok(Mflr { rt }),
                    9 => Ok(Mfctr { rt }),
                    _ => err("unsupported SPR in mfspr"),
                },
                444 => Ok(Or { ra, rs: rt, rb }),
                467 => match ra.0 {
                    8 => Ok(Mtlr { rs: rt }),
                    9 => Ok(Mtctr { rs: rt }),
                    _ => err("unsupported SPR in mtspr"),
                },
                491 => Ok(Divw { rt, ra, rb }),
                536 => Ok(Srw { ra, rs: rt, rb }),
                792 => Ok(Sraw { ra, rs: rt, rb }),
                824 => Ok(Srawi { ra, rs: rt, sh: rb.0 }),
                922 => Ok(Extsh { ra, rs: rt }),
                954 => Ok(Extsb { ra, rs: rt }),
                _ => err("unknown opcode-31 extended opcode"),
            }
        }
        _ => err("unknown primary opcode"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gpr() -> impl Strategy<Value = Gpr> {
        (0u8..32).prop_map(Gpr)
    }

    fn crf() -> impl Strategy<Value = CrField> {
        (0u8..8).prop_map(CrField)
    }

    fn crbit() -> impl Strategy<Value = CrBit> {
        (0u8..32).prop_map(CrBit)
    }

    fn cond() -> impl Strategy<Value = BranchCond> {
        prop_oneof![
            crbit().prop_map(BranchCond::IfFalse),
            crbit().prop_map(BranchCond::IfTrue),
            Just(BranchCond::DecrementNotZero),
            Just(BranchCond::Always),
        ]
    }

    prop_compose! {
        fn word_offset26()(w in -(1i32 << 23)..(1i32 << 23)) -> i32 { w * 4 }
    }

    prop_compose! {
        fn word_offset16()(w in -(1i16 << 13)..(1i16 << 13)) -> i16 { w * 4 }
    }

    fn any_insn() -> impl Strategy<Value = Instruction> {
        use Instruction::*;
        prop_oneof![
            (gpr(), gpr(), any::<i16>()).prop_map(|(rt, ra, imm)| Addi { rt, ra, imm }),
            (gpr(), gpr(), any::<i16>()).prop_map(|(rt, ra, imm)| Addis { rt, ra, imm }),
            (gpr(), gpr(), gpr()).prop_map(|(rt, ra, rb)| Add { rt, ra, rb }),
            (gpr(), gpr(), gpr()).prop_map(|(rt, ra, rb)| Subf { rt, ra, rb }),
            (gpr(), gpr()).prop_map(|(rt, ra)| Neg { rt, ra }),
            (gpr(), gpr(), gpr()).prop_map(|(rt, ra, rb)| Mullw { rt, ra, rb }),
            (gpr(), gpr(), gpr()).prop_map(|(rt, ra, rb)| Divw { rt, ra, rb }),
            (gpr(), gpr(), gpr()).prop_map(|(ra, rs, rb)| And { ra, rs, rb }),
            (gpr(), gpr(), gpr()).prop_map(|(ra, rs, rb)| Or { ra, rs, rb }),
            (gpr(), gpr(), gpr()).prop_map(|(ra, rs, rb)| Xor { ra, rs, rb }),
            (gpr(), gpr(), any::<u16>()).prop_map(|(ra, rs, uimm)| Ori { ra, rs, uimm }),
            (gpr(), gpr(), any::<u16>()).prop_map(|(ra, rs, uimm)| AndiDot { ra, rs, uimm }),
            (gpr(), gpr(), any::<u16>()).prop_map(|(ra, rs, uimm)| Xori { ra, rs, uimm }),
            (gpr(), gpr(), gpr()).prop_map(|(ra, rs, rb)| Slw { ra, rs, rb }),
            (gpr(), gpr(), gpr()).prop_map(|(ra, rs, rb)| Srw { ra, rs, rb }),
            (gpr(), gpr(), gpr()).prop_map(|(ra, rs, rb)| Sraw { ra, rs, rb }),
            (gpr(), gpr(), 0u8..32).prop_map(|(ra, rs, sh)| Srawi { ra, rs, sh }),
            (gpr(), gpr(), 0u8..32, 0u8..32, 0u8..32).prop_map(|(ra, rs, sh, mb, me)| Rlwinm {
                ra,
                rs,
                sh,
                mb,
                me
            }),
            (gpr(), gpr()).prop_map(|(ra, rs)| Extsb { ra, rs }),
            (gpr(), gpr()).prop_map(|(ra, rs)| Extsh { ra, rs }),
            (crf(), gpr(), gpr()).prop_map(|(crf, ra, rb)| Cmpw { crf, ra, rb }),
            (crf(), gpr(), any::<i16>()).prop_map(|(crf, ra, imm)| Cmpwi { crf, ra, imm }),
            (crf(), gpr(), gpr()).prop_map(|(crf, ra, rb)| Cmplw { crf, ra, rb }),
            (crf(), gpr(), any::<u16>()).prop_map(|(crf, ra, uimm)| Cmplwi { crf, ra, uimm }),
            (gpr(), gpr(), gpr(), crbit()).prop_map(|(rt, ra, rb, bc)| Isel { rt, ra, rb, bc }),
            (gpr(), gpr(), gpr()).prop_map(|(rt, ra, rb)| Maxw { rt, ra, rb }),
            (word_offset26(), any::<bool>()).prop_map(|(offset, link)| B { offset, link }),
            (cond(), word_offset16(), any::<bool>()).prop_map(|(cond, offset, link)| Bc {
                cond,
                offset,
                link
            }),
            cond().prop_map(|cond| Bclr { cond }),
            cond().prop_map(|cond| Bcctr { cond }),
            (gpr(), gpr(), any::<i16>()).prop_map(|(rt, ra, disp)| Lwz { rt, ra, disp }),
            (gpr(), gpr(), gpr()).prop_map(|(rt, ra, rb)| Lwzx { rt, ra, rb }),
            (gpr(), gpr(), any::<i16>()).prop_map(|(rt, ra, disp)| Lbz { rt, ra, disp }),
            (gpr(), gpr(), gpr()).prop_map(|(rt, ra, rb)| Lbzx { rt, ra, rb }),
            (gpr(), gpr(), any::<i16>()).prop_map(|(rt, ra, disp)| Lhz { rt, ra, disp }),
            (gpr(), gpr(), any::<i16>()).prop_map(|(rt, ra, disp)| Lha { rt, ra, disp }),
            (gpr(), gpr(), any::<i16>()).prop_map(|(rs, ra, disp)| Stw { rs, ra, disp }),
            (gpr(), gpr(), gpr()).prop_map(|(rs, ra, rb)| Stwx { rs, ra, rb }),
            (gpr(), gpr(), any::<i16>()).prop_map(|(rs, ra, disp)| Stb { rs, ra, disp }),
            (gpr(), gpr(), any::<i16>()).prop_map(|(rs, ra, disp)| Sth { rs, ra, disp }),
            gpr().prop_map(|rt| Mflr { rt }),
            gpr().prop_map(|rs| Mtlr { rs }),
            gpr().prop_map(|rt| Mfctr { rt }),
            gpr().prop_map(|rs| Mtctr { rs }),
            Just(Trap),
        ]
    }

    proptest! {
        #[test]
        fn round_trip(insn in any_insn()) {
            let word = encode(&insn);
            let back = decode(word).expect("encoded word must decode");
            prop_assert_eq!(back, insn);
        }

        #[test]
        fn decode_never_panics(word in any::<u32>()) {
            let _ = decode(word);
        }

        #[test]
        fn decode_encode_fixpoint(word in any::<u32>()) {
            // Any decodable word re-encodes to something that decodes to the
            // same instruction (encode ∘ decode need not be identity on raw
            // bits because reserved fields are normalized).
            if let Ok(insn) = decode(word) {
                let word2 = encode(&insn);
                prop_assert_eq!(decode(word2).unwrap(), insn);
            }
        }
    }

    #[test]
    fn known_encodings() {
        // li r3, 1  ==  addi r3, r0, 1  ==  0x38600001
        let li = Instruction::Addi { rt: Gpr(3), ra: Gpr(0), imm: 1 };
        assert_eq!(encode(&li), 0x3860_0001);
        // blr == 0x4e800020
        let blr = Instruction::Bclr { cond: BranchCond::Always };
        assert_eq!(encode(&blr), 0x4e80_0020);
        // add r3, r4, r5 == 0x7c642a14
        let add = Instruction::Add { rt: Gpr(3), ra: Gpr(4), rb: Gpr(5) };
        assert_eq!(encode(&add), 0x7c64_2a14);
        // lwz r9, 8(r1) == 0x81210008
        let lwz = Instruction::Lwz { rt: Gpr(9), ra: Gpr(1), disp: 8 };
        assert_eq!(encode(&lwz), 0x8121_0008);
        // mflr r0 == 0x7c0802a6
        let mflr = Instruction::Mflr { rt: Gpr(0) };
        assert_eq!(encode(&mflr), 0x7c08_02a6);
        // trap (tw 31,0,0) == 0x7fe00008
        assert_eq!(encode(&Instruction::Trap), 0x7fe0_0008);
    }

    #[test]
    fn negative_branch_offsets_round_trip() {
        let b = Instruction::B { offset: -4096, link: false };
        assert_eq!(decode(encode(&b)).unwrap(), b);
        let bc = Instruction::Bc { cond: BranchCond::IfTrue(CrBit(2)), offset: -8, link: false };
        assert_eq!(decode(encode(&bc)).unwrap(), bc);
    }

    #[test]
    fn unknown_opcode_reports_error() {
        let e = decode(0x0000_0000).unwrap_err();
        assert!(e.to_string().contains("unknown primary opcode"));
        // opcode 31 with a bogus XO
        let word = 0x7C00_0000 | (1023 << 1);
        assert!(decode(word).is_err());
    }

    #[test]
    fn rc_bit_rejected() {
        // add. (Rc=1) is outside the subset.
        let word = encode(&Instruction::Add { rt: Gpr(1), ra: Gpr(2), rb: Gpr(3) }) | 1;
        assert!(decode(word).is_err());
    }

    #[test]
    fn nop_encodes_to_canonical_word() {
        assert_eq!(encode(&Instruction::nop()), 0x6000_0000);
        assert_eq!(decode(0x6000_0000).unwrap(), Instruction::nop());
    }
}
