//! The decoded instruction set and its timing-relevant classification.

use crate::reg::{CrBit, CrField, Gpr, ResList, Resource};

/// Branch-option (`BO`) encodings supported by the subset, a restriction of
/// the PowerPC `BO` field to the forms compilers actually emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if the CR bit is false (`BO = 0b00100`).
    IfFalse(CrBit),
    /// Branch if the CR bit is true (`BO = 0b01100`).
    IfTrue(CrBit),
    /// Decrement CTR, branch if CTR ≠ 0 (`bdnz`, `BO = 0b10000`).
    DecrementNotZero,
    /// Always branch (`BO = 0b10100`).
    Always,
}

/// A decoded instruction of the PowerPC subset.
///
/// Field-name conventions follow the Power ISA books: `rt` is the target,
/// `ra`/`rb` are sources, and the logical/shift group writes `ra` from
/// source `rs`. Immediates keep their architectural signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    // ---- D-form arithmetic -------------------------------------------
    /// `addi rt, ra, imm` — `ra = 0` reads as the value 0 (`li`).
    Addi {
        /// Target register.
        rt: Gpr,
        /// Source (0 ⇒ literal zero).
        ra: Gpr,
        /// Signed immediate.
        imm: i16,
    },
    /// `addis rt, ra, imm` — add `imm << 16`.
    Addis {
        /// Target register.
        rt: Gpr,
        /// Source (0 ⇒ literal zero).
        ra: Gpr,
        /// Signed immediate (shifted left 16).
        imm: i16,
    },

    // ---- XO-form arithmetic ------------------------------------------
    /// `add rt, ra, rb`.
    Add {
        /// Target.
        rt: Gpr,
        /// First source.
        ra: Gpr,
        /// Second source.
        rb: Gpr,
    },
    /// `subf rt, ra, rb` — `rt = rb - ra`.
    Subf {
        /// Target.
        rt: Gpr,
        /// Subtrahend.
        ra: Gpr,
        /// Minuend.
        rb: Gpr,
    },
    /// `neg rt, ra`.
    Neg {
        /// Target.
        rt: Gpr,
        /// Source.
        ra: Gpr,
    },
    /// `mullw rt, ra, rb` — low 32 bits of the product.
    Mullw {
        /// Target.
        rt: Gpr,
        /// First source.
        ra: Gpr,
        /// Second source.
        rb: Gpr,
    },
    /// `divw rt, ra, rb` — signed division (result undefined on divide by
    /// zero; the executor returns 0 and the timing model charges full
    /// latency, matching how the kernels never divide by zero).
    Divw {
        /// Target.
        rt: Gpr,
        /// Dividend.
        ra: Gpr,
        /// Divisor.
        rb: Gpr,
    },

    // ---- X-form logical / shifts (write RA from RS) ------------------
    /// `and ra, rs, rb`.
    And {
        /// Target.
        ra: Gpr,
        /// Source.
        rs: Gpr,
        /// Second source.
        rb: Gpr,
    },
    /// `or ra, rs, rb` (also `mr` when `rs == rb`).
    Or {
        /// Target.
        ra: Gpr,
        /// Source.
        rs: Gpr,
        /// Second source.
        rb: Gpr,
    },
    /// `xor ra, rs, rb`.
    Xor {
        /// Target.
        ra: Gpr,
        /// Source.
        rs: Gpr,
        /// Second source.
        rb: Gpr,
    },
    /// `ori ra, rs, uimm` (`ori 0,0,0` is the canonical `nop`).
    Ori {
        /// Target.
        ra: Gpr,
        /// Source.
        rs: Gpr,
        /// Unsigned immediate.
        uimm: u16,
    },
    /// `andi. ra, rs, uimm` — the dot form: also sets `cr0`.
    AndiDot {
        /// Target.
        ra: Gpr,
        /// Source.
        rs: Gpr,
        /// Unsigned immediate.
        uimm: u16,
    },
    /// `xori ra, rs, uimm`.
    Xori {
        /// Target.
        ra: Gpr,
        /// Source.
        rs: Gpr,
        /// Unsigned immediate.
        uimm: u16,
    },
    /// `slw ra, rs, rb` — shift left (0 if shift ≥ 32).
    Slw {
        /// Target.
        ra: Gpr,
        /// Source.
        rs: Gpr,
        /// Shift amount register.
        rb: Gpr,
    },
    /// `srw ra, rs, rb` — logical shift right.
    Srw {
        /// Target.
        ra: Gpr,
        /// Source.
        rs: Gpr,
        /// Shift amount register.
        rb: Gpr,
    },
    /// `sraw ra, rs, rb` — arithmetic shift right.
    Sraw {
        /// Target.
        ra: Gpr,
        /// Source.
        rs: Gpr,
        /// Shift amount register.
        rb: Gpr,
    },
    /// `srawi ra, rs, sh` — arithmetic shift right immediate.
    Srawi {
        /// Target.
        ra: Gpr,
        /// Source.
        rs: Gpr,
        /// Shift amount (0–31).
        sh: u8,
    },
    /// `rlwinm ra, rs, sh, mb, me` — rotate left then AND with mask
    /// (`slwi`/`srwi`/bitfield extraction are aliases of this).
    Rlwinm {
        /// Target.
        ra: Gpr,
        /// Source.
        rs: Gpr,
        /// Rotate amount (0–31).
        sh: u8,
        /// Mask begin bit (big-endian numbering, 0–31).
        mb: u8,
        /// Mask end bit.
        me: u8,
    },
    /// `extsb ra, rs` — sign-extend byte.
    Extsb {
        /// Target.
        ra: Gpr,
        /// Source.
        rs: Gpr,
    },
    /// `extsh ra, rs` — sign-extend halfword.
    Extsh {
        /// Target.
        ra: Gpr,
        /// Source.
        rs: Gpr,
    },

    // ---- compares ------------------------------------------------------
    /// `cmpw crf, ra, rb` — signed word compare.
    Cmpw {
        /// Destination CR field.
        crf: CrField,
        /// First source.
        ra: Gpr,
        /// Second source.
        rb: Gpr,
    },
    /// `cmpwi crf, ra, imm`.
    Cmpwi {
        /// Destination CR field.
        crf: CrField,
        /// Source.
        ra: Gpr,
        /// Signed immediate.
        imm: i16,
    },
    /// `cmplw crf, ra, rb` — unsigned word compare.
    Cmplw {
        /// Destination CR field.
        crf: CrField,
        /// First source.
        ra: Gpr,
        /// Second source.
        rb: Gpr,
    },
    /// `cmplwi crf, ra, uimm`.
    Cmplwi {
        /// Destination CR field.
        crf: CrField,
        /// Source.
        ra: Gpr,
        /// Unsigned immediate.
        uimm: u16,
    },

    // ---- predication (the paper's ISA extensions) -----------------------
    /// `isel rt, ra, rb, bc` — `rt = CR[bc] ? (ra|0) : rb`; an `RA` field
    /// of 0 selects the value zero (real `isel` semantics).
    Isel {
        /// Target.
        rt: Gpr,
        /// Taken-source (0 ⇒ literal zero).
        ra: Gpr,
        /// Fallthrough-source.
        rb: Gpr,
        /// CR bit tested.
        bc: CrBit,
    },
    /// `maxw rt, ra, rb` — the paper's hypothetical fused signed maximum:
    /// compare and select in one single-cycle FXU operation.
    Maxw {
        /// Target.
        rt: Gpr,
        /// First source.
        ra: Gpr,
        /// Second source.
        rb: Gpr,
    },

    // ---- branches --------------------------------------------------------
    /// `b target` / `bl target` — I-form unconditional branch, PC-relative
    /// byte offset.
    B {
        /// Signed byte offset from this instruction.
        offset: i32,
        /// Set LR to the return address (`bl`).
        link: bool,
    },
    /// `bc` — B-form conditional branch, PC-relative.
    Bc {
        /// Condition.
        cond: BranchCond,
        /// Signed byte offset from this instruction.
        offset: i16,
        /// Set LR (`bcl`).
        link: bool,
    },
    /// `bclr` — branch conditionally to LR (`blr` when always).
    Bclr {
        /// Condition.
        cond: BranchCond,
    },
    /// `bcctr` — branch conditionally to CTR (`bctr` when always).
    Bcctr {
        /// Condition.
        cond: BranchCond,
    },

    // ---- memory ----------------------------------------------------------
    /// `lwz rt, disp(ra)` — load word (zero-extended; words are 32 bits).
    Lwz {
        /// Target.
        rt: Gpr,
        /// Base (0 ⇒ literal zero).
        ra: Gpr,
        /// Signed displacement.
        disp: i16,
    },
    /// `lwzx rt, ra, rb` — indexed load word.
    Lwzx {
        /// Target.
        rt: Gpr,
        /// Base (0 ⇒ literal zero).
        ra: Gpr,
        /// Index.
        rb: Gpr,
    },
    /// `lbz rt, disp(ra)` — load byte, zero-extended.
    Lbz {
        /// Target.
        rt: Gpr,
        /// Base (0 ⇒ literal zero).
        ra: Gpr,
        /// Signed displacement.
        disp: i16,
    },
    /// `lbzx rt, ra, rb`.
    Lbzx {
        /// Target.
        rt: Gpr,
        /// Base (0 ⇒ literal zero).
        ra: Gpr,
        /// Index.
        rb: Gpr,
    },
    /// `lhz rt, disp(ra)` — load halfword, zero-extended.
    Lhz {
        /// Target.
        rt: Gpr,
        /// Base (0 ⇒ literal zero).
        ra: Gpr,
        /// Signed displacement.
        disp: i16,
    },
    /// `lha rt, disp(ra)` — load halfword, sign-extended.
    Lha {
        /// Target.
        rt: Gpr,
        /// Base (0 ⇒ literal zero).
        ra: Gpr,
        /// Signed displacement.
        disp: i16,
    },
    /// `stw rs, disp(ra)`.
    Stw {
        /// Source.
        rs: Gpr,
        /// Base (0 ⇒ literal zero).
        ra: Gpr,
        /// Signed displacement.
        disp: i16,
    },
    /// `stwx rs, ra, rb`.
    Stwx {
        /// Source.
        rs: Gpr,
        /// Base (0 ⇒ literal zero).
        ra: Gpr,
        /// Index.
        rb: Gpr,
    },
    /// `stb rs, disp(ra)`.
    Stb {
        /// Source.
        rs: Gpr,
        /// Base (0 ⇒ literal zero).
        ra: Gpr,
        /// Signed displacement.
        disp: i16,
    },
    /// `sth rs, disp(ra)`.
    Sth {
        /// Source.
        rs: Gpr,
        /// Base (0 ⇒ literal zero).
        ra: Gpr,
        /// Signed displacement.
        disp: i16,
    },

    // ---- SPR moves ---------------------------------------------------------
    /// `mflr rt`.
    Mflr {
        /// Target.
        rt: Gpr,
    },
    /// `mtlr rs`.
    Mtlr {
        /// Source.
        rs: Gpr,
    },
    /// `mfctr rt`.
    Mfctr {
        /// Target.
        rt: Gpr,
    },
    /// `mtctr rs`.
    Mtctr {
        /// Source.
        rs: Gpr,
    },

    // ---- system -------------------------------------------------------------
    /// `tw 31,0,0` — unconditional trap; the simulator treats it as *halt*
    /// (the kernel's clean exit). Only the trap-always form is encodable.
    Trap,
}

/// The POWER5 execution unit class an instruction issues to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecUnit {
    /// Fixed-point unit (the paper varies the count of these, 2–4).
    Fxu,
    /// Load/store unit (POWER5 has two).
    Lsu,
    /// Branch execution unit.
    Bru,
}

/// Latency class, mapped to cycle counts by the timing model's
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyClass {
    /// Single-cycle integer op (including `maxw` and `isel` — the paper's
    /// hardware section shows `max` fits in one cycle via the carry chain).
    Simple,
    /// Pipelined multiply.
    Mul,
    /// Unpipelined divide.
    Div,
    /// Load (cache hit latency added by the memory model).
    Load,
    /// Store (address + data, retires via the store queue).
    Store,
    /// Branch resolution.
    Branch,
}

impl Instruction {
    /// The canonical no-op (`ori r0, r0, 0`).
    pub fn nop() -> Self {
        Instruction::Ori { ra: Gpr(0), rs: Gpr(0), uimm: 0 }
    }

    /// Which execution unit the instruction issues to.
    pub fn unit(&self) -> ExecUnit {
        use Instruction::*;
        match self {
            Lwz { .. }
            | Lwzx { .. }
            | Lbz { .. }
            | Lbzx { .. }
            | Lhz { .. }
            | Lha { .. }
            | Stw { .. }
            | Stwx { .. }
            | Stb { .. }
            | Sth { .. } => ExecUnit::Lsu,
            B { .. } | Bc { .. } | Bclr { .. } | Bcctr { .. } => ExecUnit::Bru,
            // SPR moves execute in the branch unit on POWER5 (they talk to
            // LR/CTR, which live there).
            Mflr { .. } | Mtlr { .. } | Mfctr { .. } | Mtctr { .. } => ExecUnit::Bru,
            Trap => ExecUnit::Bru,
            _ => ExecUnit::Fxu,
        }
    }

    /// Latency class for the timing model.
    pub fn latency_class(&self) -> LatencyClass {
        use Instruction::*;
        match self {
            Mullw { .. } => LatencyClass::Mul,
            Divw { .. } => LatencyClass::Div,
            Lwz { .. } | Lwzx { .. } | Lbz { .. } | Lbzx { .. } | Lhz { .. } | Lha { .. } => {
                LatencyClass::Load
            }
            Stw { .. } | Stwx { .. } | Stb { .. } | Sth { .. } => LatencyClass::Store,
            B { .. } | Bc { .. } | Bclr { .. } | Bcctr { .. } | Trap => LatencyClass::Branch,
            _ => LatencyClass::Simple,
        }
    }

    /// Whether this is any branch.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Instruction::B { .. }
                | Instruction::Bc { .. }
                | Instruction::Bclr { .. }
                | Instruction::Bcctr { .. }
        )
    }

    /// Whether this is a *conditional* branch (the kind whose direction the
    /// paper's predictor statistics count).
    pub fn is_conditional_branch(&self) -> bool {
        match self {
            Instruction::Bc { cond, .. }
            | Instruction::Bclr { cond }
            | Instruction::Bcctr { cond } => !matches!(cond, BranchCond::Always),
            _ => false,
        }
    }

    /// Whether this is a load.
    pub fn is_load(&self) -> bool {
        matches!(self.latency_class(), LatencyClass::Load)
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        matches!(self.latency_class(), LatencyClass::Store)
    }

    /// Whether this is one of the paper's predicated instructions.
    pub fn is_predicated(&self) -> bool {
        matches!(self, Instruction::Isel { .. } | Instruction::Maxw { .. })
    }

    /// Resources read by this instruction. An `RA` field of 0 in the
    /// base-register position (D-form addressing, `isel`) reads nothing.
    pub fn reads(&self) -> ResList {
        use Instruction::*;
        let mut l = ResList::new();
        let mut gpr = |g: Gpr| l.push(Resource::Gpr(g));
        match *self {
            Addi { ra, .. } | Addis { ra, .. } => {
                if ra.0 != 0 {
                    gpr(ra);
                }
            }
            Add { ra, rb, .. }
            | Subf { ra, rb, .. }
            | Mullw { ra, rb, .. }
            | Divw { ra, rb, .. }
            | Maxw { ra, rb, .. } => {
                gpr(ra);
                gpr(rb);
            }
            Neg { ra, .. } => gpr(ra),
            And { rs, rb, .. }
            | Or { rs, rb, .. }
            | Xor { rs, rb, .. }
            | Slw { rs, rb, .. }
            | Srw { rs, rb, .. }
            | Sraw { rs, rb, .. } => {
                gpr(rs);
                gpr(rb);
            }
            Ori { rs, .. }
            | AndiDot { rs, .. }
            | Xori { rs, .. }
            | Srawi { rs, .. }
            | Rlwinm { rs, .. }
            | Extsb { rs, .. }
            | Extsh { rs, .. } => gpr(rs),
            Cmpw { ra, rb, .. } | Cmplw { ra, rb, .. } => {
                gpr(ra);
                gpr(rb);
            }
            Cmpwi { ra, .. } | Cmplwi { ra, .. } => gpr(ra),
            Isel { ra, rb, bc, .. } => {
                if ra.0 != 0 {
                    gpr(ra);
                }
                gpr(rb);
                l.push(Resource::Cr(bc.field()));
            }
            B { .. } => {}
            Bc { cond, .. } | Bclr { cond } | Bcctr { cond } => {
                match cond {
                    BranchCond::IfFalse(bit) | BranchCond::IfTrue(bit) => {
                        l.push(Resource::Cr(bit.field()));
                    }
                    BranchCond::DecrementNotZero => l.push(Resource::Ctr),
                    BranchCond::Always => {}
                }
                match self {
                    Bclr { .. } => l.push(Resource::Lr),
                    Bcctr { .. } if !l.contains(Resource::Ctr) => {
                        l.push(Resource::Ctr);
                    }
                    _ => {}
                }
            }
            Lwz { ra, .. } | Lbz { ra, .. } | Lhz { ra, .. } | Lha { ra, .. } => {
                if ra.0 != 0 {
                    gpr(ra);
                }
            }
            Lwzx { ra, rb, .. } | Lbzx { ra, rb, .. } => {
                if ra.0 != 0 {
                    gpr(ra);
                }
                gpr(rb);
            }
            Stw { rs, ra, .. } | Stb { rs, ra, .. } | Sth { rs, ra, .. } => {
                gpr(rs);
                if ra.0 != 0 {
                    gpr(ra);
                }
            }
            Stwx { rs, ra, rb } => {
                gpr(rs);
                if ra.0 != 0 {
                    gpr(ra);
                }
                gpr(rb);
            }
            Mflr { .. } => l.push(Resource::Lr),
            Mfctr { .. } => l.push(Resource::Ctr),
            Mtlr { rs } | Mtctr { rs } => gpr(rs),
            Trap => {}
        }
        l
    }

    /// Resources written by this instruction.
    pub fn writes(&self) -> ResList {
        use Instruction::*;
        let mut l = ResList::new();
        match *self {
            Addi { rt, .. }
            | Addis { rt, .. }
            | Add { rt, .. }
            | Subf { rt, .. }
            | Neg { rt, .. }
            | Mullw { rt, .. }
            | Divw { rt, .. }
            | Isel { rt, .. }
            | Maxw { rt, .. } => l.push(Resource::Gpr(rt)),
            And { ra, .. }
            | Or { ra, .. }
            | Xor { ra, .. }
            | Ori { ra, .. }
            | Xori { ra, .. }
            | Slw { ra, .. }
            | Srw { ra, .. }
            | Sraw { ra, .. }
            | Srawi { ra, .. }
            | Rlwinm { ra, .. }
            | Extsb { ra, .. }
            | Extsh { ra, .. } => l.push(Resource::Gpr(ra)),
            AndiDot { ra, .. } => {
                l.push(Resource::Gpr(ra));
                l.push(Resource::Cr(CrField(0)));
            }
            Cmpw { crf, .. } | Cmpwi { crf, .. } | Cmplw { crf, .. } | Cmplwi { crf, .. } => {
                l.push(Resource::Cr(crf))
            }
            B { link, .. } => {
                if link {
                    l.push(Resource::Lr);
                }
            }
            Bc { cond, link, .. } => {
                if link {
                    l.push(Resource::Lr);
                }
                if matches!(cond, BranchCond::DecrementNotZero) {
                    l.push(Resource::Ctr);
                }
            }
            Bclr { cond } | Bcctr { cond } => {
                if matches!(cond, BranchCond::DecrementNotZero) {
                    l.push(Resource::Ctr);
                }
            }
            Lwz { rt, .. }
            | Lwzx { rt, .. }
            | Lbz { rt, .. }
            | Lbzx { rt, .. }
            | Lhz { rt, .. }
            | Lha { rt, .. } => l.push(Resource::Gpr(rt)),
            Stw { .. } | Stwx { .. } | Stb { .. } | Sth { .. } => {}
            Mflr { rt } | Mfctr { rt } => l.push(Resource::Gpr(rt)),
            Mtlr { .. } => l.push(Resource::Lr),
            Mtctr { .. } => l.push(Resource::Ctr),
            Trap => {}
        }
        l
    }

    /// Memory access width in bytes, if this is a load or store.
    pub fn access_bytes(&self) -> Option<u32> {
        use Instruction::*;
        match self {
            Lwz { .. } | Lwzx { .. } | Stw { .. } | Stwx { .. } => Some(4),
            Lhz { .. } | Lha { .. } | Sth { .. } => Some(2),
            Lbz { .. } | Lbzx { .. } | Stb { .. } => Some(1),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_is_ori_zero() {
        assert_eq!(Instruction::nop(), Instruction::Ori { ra: Gpr(0), rs: Gpr(0), uimm: 0 });
        assert_eq!(Instruction::nop().unit(), ExecUnit::Fxu);
    }

    #[test]
    fn units_are_classified() {
        assert_eq!(Instruction::Add { rt: Gpr(1), ra: Gpr(2), rb: Gpr(3) }.unit(), ExecUnit::Fxu);
        assert_eq!(Instruction::Lwz { rt: Gpr(1), ra: Gpr(2), disp: 0 }.unit(), ExecUnit::Lsu);
        assert_eq!(Instruction::B { offset: 8, link: false }.unit(), ExecUnit::Bru);
        assert_eq!(Instruction::Maxw { rt: Gpr(1), ra: Gpr(2), rb: Gpr(3) }.unit(), ExecUnit::Fxu);
        assert_eq!(
            Instruction::Isel { rt: Gpr(1), ra: Gpr(2), rb: Gpr(3), bc: CrBit(1) }.unit(),
            ExecUnit::Fxu
        );
    }

    #[test]
    fn predicated_instructions_are_single_cycle_fxu() {
        let max = Instruction::Maxw { rt: Gpr(1), ra: Gpr(2), rb: Gpr(3) };
        let isel = Instruction::Isel { rt: Gpr(1), ra: Gpr(2), rb: Gpr(3), bc: CrBit(1) };
        assert_eq!(max.latency_class(), LatencyClass::Simple);
        assert_eq!(isel.latency_class(), LatencyClass::Simple);
        assert!(max.is_predicated());
        assert!(isel.is_predicated());
        assert!(!Instruction::nop().is_predicated());
    }

    #[test]
    fn branch_classification() {
        let b = Instruction::B { offset: 4, link: false };
        assert!(b.is_branch());
        assert!(!b.is_conditional_branch());
        let bc = Instruction::Bc { cond: BranchCond::IfTrue(CrBit(0)), offset: 8, link: false };
        assert!(bc.is_branch());
        assert!(bc.is_conditional_branch());
        let bdnz = Instruction::Bc { cond: BranchCond::DecrementNotZero, offset: -8, link: false };
        assert!(bdnz.is_conditional_branch());
        let blr = Instruction::Bclr { cond: BranchCond::Always };
        assert!(blr.is_branch());
        assert!(!blr.is_conditional_branch());
    }

    #[test]
    fn d_form_ra_zero_reads_nothing() {
        let li = Instruction::Addi { rt: Gpr(3), ra: Gpr(0), imm: 5 };
        assert!(li.reads().is_empty());
        let addi = Instruction::Addi { rt: Gpr(3), ra: Gpr(4), imm: 5 };
        assert!(addi.reads().contains(Resource::Gpr(Gpr(4))));
    }

    #[test]
    fn isel_reads_cr_field_and_sources() {
        let isel = Instruction::Isel { rt: Gpr(3), ra: Gpr(4), rb: Gpr(5), bc: CrBit(9) };
        let reads = isel.reads();
        assert!(reads.contains(Resource::Gpr(Gpr(4))));
        assert!(reads.contains(Resource::Gpr(Gpr(5))));
        assert!(reads.contains(Resource::Cr(CrField(2))));
        assert!(isel.writes().contains(Resource::Gpr(Gpr(3))));
    }

    #[test]
    fn cmp_writes_cr_field() {
        let cmp = Instruction::Cmpw { crf: CrField(3), ra: Gpr(1), rb: Gpr(2) };
        assert!(cmp.writes().contains(Resource::Cr(CrField(3))));
        assert_eq!(cmp.reads().len(), 2);
    }

    #[test]
    fn stores_write_no_registers() {
        let st = Instruction::Stw { rs: Gpr(3), ra: Gpr(4), disp: 8 };
        assert!(st.writes().is_empty());
        assert_eq!(st.reads().len(), 2);
        assert!(st.is_store());
        assert_eq!(st.access_bytes(), Some(4));
    }

    #[test]
    fn bdnz_reads_and_writes_ctr() {
        let bdnz = Instruction::Bc { cond: BranchCond::DecrementNotZero, offset: -4, link: false };
        assert!(bdnz.reads().contains(Resource::Ctr));
        assert!(bdnz.writes().contains(Resource::Ctr));
    }

    #[test]
    fn blr_reads_lr() {
        let blr = Instruction::Bclr { cond: BranchCond::Always };
        assert!(blr.reads().contains(Resource::Lr));
    }

    #[test]
    fn bl_writes_lr() {
        let bl = Instruction::B { offset: 100, link: true };
        assert!(bl.writes().contains(Resource::Lr));
    }

    #[test]
    fn andi_dot_writes_cr0() {
        let andi = Instruction::AndiDot { ra: Gpr(5), rs: Gpr(6), uimm: 0xFF };
        assert!(andi.writes().contains(Resource::Cr(CrField(0))));
        assert!(andi.writes().contains(Resource::Gpr(Gpr(5))));
    }

    #[test]
    fn access_bytes_by_width() {
        assert_eq!(Instruction::Lbz { rt: Gpr(1), ra: Gpr(2), disp: 0 }.access_bytes(), Some(1));
        assert_eq!(Instruction::Lhz { rt: Gpr(1), ra: Gpr(2), disp: 0 }.access_bytes(), Some(2));
        assert_eq!(Instruction::nop().access_bytes(), None);
    }

    #[test]
    fn latency_classes() {
        assert_eq!(
            Instruction::Mullw { rt: Gpr(1), ra: Gpr(2), rb: Gpr(3) }.latency_class(),
            LatencyClass::Mul
        );
        assert_eq!(
            Instruction::Divw { rt: Gpr(1), ra: Gpr(2), rb: Gpr(3) }.latency_class(),
            LatencyClass::Div
        );
        assert_eq!(Instruction::Trap.latency_class(), LatencyClass::Branch);
    }
}
