//! Functional semantics: architectural state, memory, and single-stepping.
//!
//! The same executor backs both simulation modes: the fast functional mode
//! (used for SMARTS-style fast-forwarding) steps as quickly as possible,
//! while the timing model steps functionally *and* feeds the returned
//! [`StepEvent`] (branch outcome, memory access) into the pipeline model.
//!
//! Every fault path here is a typed [`MemFault`]; the executor itself
//! never panics on guest behaviour, which is what lets the fault-injection
//! harness promise "detected or contained, never a crash".

#![deny(clippy::unwrap_used)]

use crate::insn::{BranchCond, Instruction};
use crate::reg::{CondReg, Gpr};
use std::fmt;

/// Why a memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFaultKind {
    /// The access runs past the end of simulated memory.
    OutOfBounds,
    /// A halfword/word access whose address is not width-aligned
    /// (program-check on our machine model; real POWER5 would take the
    /// alignment-interrupt slow path).
    Misaligned,
}

/// A memory access fault (out-of-bounds or misaligned address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting byte address.
    pub addr: u32,
    /// Access width in bytes.
    pub bytes: u32,
    /// What was wrong with the access.
    pub kind: MemFaultKind,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            MemFaultKind::OutOfBounds => "out-of-bounds",
            MemFaultKind::Misaligned => "misaligned",
        };
        write!(f, "memory fault: {what} {}-byte access at {:#010x}", self.bytes, self.addr)
    }
}

impl std::error::Error for MemFault {}

/// Flat little-endian simulated memory.
///
/// Real POWER5 memory is big-endian; the byte order is invisible to every
/// experiment in the reproduction (DESIGN.md §7) and little-endian keeps
/// host-side data serialization trivial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    data: Vec<u8>,
}

impl Memory {
    /// Allocate `size` bytes of zeroed memory.
    pub fn new(size: usize) -> Self {
        Memory { data: vec![0; size] }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// The raw byte contents (checkpoint serialization).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw byte contents (host-side checkpoint restore).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    fn check(&self, addr: u32, bytes: u32) -> Result<usize, MemFault> {
        let a = addr as usize;
        if a.checked_add(bytes as usize).is_none_or(|end| end > self.data.len()) {
            Err(MemFault { addr, bytes, kind: MemFaultKind::OutOfBounds })
        } else {
            Ok(a)
        }
    }

    /// Bounds *and* natural-alignment check, for guest halfword/word
    /// accesses (the host-side loaders deliberately skip the alignment
    /// rule: they copy byte images, not architectural accesses).
    fn check_aligned(&self, addr: u32, bytes: u32) -> Result<usize, MemFault> {
        if !addr.is_multiple_of(bytes) {
            return Err(MemFault { addr, bytes, kind: MemFaultKind::Misaligned });
        }
        self.check(addr, bytes)
    }

    /// Load a byte.
    #[inline]
    pub fn load_u8(&self, addr: u32) -> Result<u8, MemFault> {
        let a = self.check(addr, 1)?;
        Ok(self.data[a])
    }

    /// Load a little-endian halfword.
    #[inline]
    pub fn load_u16(&self, addr: u32) -> Result<u16, MemFault> {
        let a = self.check_aligned(addr, 2)?;
        Ok(u16::from_le_bytes([self.data[a], self.data[a + 1]]))
    }

    /// Load a little-endian word.
    #[inline]
    pub fn load_u32(&self, addr: u32) -> Result<u32, MemFault> {
        let a = self.check_aligned(addr, 4)?;
        Ok(u32::from_le_bytes([self.data[a], self.data[a + 1], self.data[a + 2], self.data[a + 3]]))
    }

    /// Store a byte.
    #[inline]
    pub fn store_u8(&mut self, addr: u32, value: u8) -> Result<(), MemFault> {
        let a = self.check(addr, 1)?;
        self.data[a] = value;
        Ok(())
    }

    /// Store a little-endian halfword.
    #[inline]
    pub fn store_u16(&mut self, addr: u32, value: u16) -> Result<(), MemFault> {
        let a = self.check_aligned(addr, 2)?;
        self.data[a..a + 2].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Store a little-endian word.
    #[inline]
    pub fn store_u32(&mut self, addr: u32, value: u32) -> Result<(), MemFault> {
        let a = self.check_aligned(addr, 4)?;
        self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Flip one bit of one byte (fault injection; out-of-range addresses
    /// are ignored rather than faulting — the injector targets simulated
    /// memory, it does not execute on it).
    pub fn flip_bit(&mut self, addr: u32, bit: u32) {
        if let Some(b) = self.data.get_mut(addr as usize) {
            *b ^= 1 << (bit & 7);
        }
    }

    /// Copy a byte slice into memory at `addr` (host-side loader).
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemFault> {
        let a = self.check(addr, bytes.len() as u32)?;
        self.data[a..a + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Copy a slice of `i32`s into memory at `addr` (host-side loader for
    /// score matrices, DP rows, …).
    pub fn write_i32s(&mut self, addr: u32, values: &[i32]) -> Result<(), MemFault> {
        for (i, &v) in values.iter().enumerate() {
            self.store_u32(addr + 4 * i as u32, v as u32)?;
        }
        Ok(())
    }

    /// Read `len` little-endian `i32`s starting at `addr`.
    pub fn read_i32s(&self, addr: u32, len: usize) -> Result<Vec<i32>, MemFault> {
        (0..len).map(|i| self.load_u32(addr + 4 * i as u32).map(|v| v as i32)).collect()
    }
}

/// Architectural register state of the 32-bit PowerPC application model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuState {
    /// General-purpose registers.
    pub gpr: [u32; 32],
    /// Condition register.
    pub cr: CondReg,
    /// Link register.
    pub lr: u32,
    /// Count register.
    pub ctr: u32,
    /// Program counter (byte address of the *next* instruction to execute).
    pub pc: u32,
}

impl CpuState {
    /// Zeroed state with the PC at `entry`.
    pub fn new(entry: u32) -> Self {
        CpuState { gpr: [0; 32], cr: CondReg::default(), lr: 0, ctr: 0, pc: entry }
    }

    /// Read a GPR.
    #[inline]
    pub fn reg(&self, g: Gpr) -> u32 {
        self.gpr[g.index()]
    }

    /// Read a GPR, with the D-form rule that `RA = 0` yields the value 0.
    #[inline]
    pub fn reg_or_zero(&self, g: Gpr) -> u32 {
        if g.0 == 0 {
            0
        } else {
            self.gpr[g.index()]
        }
    }

    /// Write a GPR.
    #[inline]
    pub fn set_reg(&mut self, g: Gpr, v: u32) {
        self.gpr[g.index()] = v;
    }
}

impl Default for CpuState {
    fn default() -> Self {
        CpuState::new(0)
    }
}

/// What happened during one instruction step — the timing model's food.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepEvent {
    /// For branches: `(taken, target_of_taken_path)`. The target is the
    /// architectural next PC when taken; for a not-taken branch it is the
    /// would-have-been target.
    pub branch: Option<(bool, u32)>,
    /// For loads/stores: `(byte_address, width, is_store)`.
    pub mem: Option<(u32, u32, bool)>,
    /// The instruction was `trap` — the kernel's clean exit.
    pub halted: bool,
}

/// The `rlwinm` mask for begin/end bits `mb..=me` in big-endian bit
/// numbering (bit 0 is the MSB). Public so pre-compiled execution tiers
/// (the simulator's fused superinstructions) can bake the mask at
/// decode time instead of recomputing it per retire.
pub fn rlwinm_mask(mb: u8, me: u8) -> u32 {
    // Big-endian bit numbering: bit 0 is the MSB.
    let ones = u32::MAX;
    let a = ones >> mb;
    let b = ones << (31 - me);
    if mb <= me {
        a & b
    } else {
        a | b
    }
}

/// Evaluate a branch condition, applying its side effect (`bdnz`
/// decrements CTR). Public for the same reason as [`rlwinm_mask`]:
/// fused branch superinstructions must reproduce `step`'s semantics
/// exactly, side effects included.
#[inline]
pub fn eval_cond(state: &mut CpuState, cond: BranchCond) -> bool {
    match cond {
        BranchCond::IfFalse(bit) => !state.cr.bit(bit),
        BranchCond::IfTrue(bit) => state.cr.bit(bit),
        BranchCond::DecrementNotZero => {
            state.ctr = state.ctr.wrapping_sub(1);
            state.ctr != 0
        }
        BranchCond::Always => true,
    }
}

/// Execute one instruction, updating `state` (including the PC) and
/// `mem`, and report what happened.
///
/// # Errors
///
/// Returns [`MemFault`] on an out-of-bounds access; `state.pc` is left at
/// the faulting instruction.
pub fn step(
    state: &mut CpuState,
    mem: &mut Memory,
    insn: &Instruction,
) -> Result<StepEvent, MemFault> {
    use Instruction::*;
    let mut ev = StepEvent::default();
    let pc = state.pc;
    let mut next_pc = pc.wrapping_add(4);
    match *insn {
        Addi { rt, ra, imm } => {
            let v = state.reg_or_zero(ra).wrapping_add(imm as i32 as u32);
            state.set_reg(rt, v);
        }
        Addis { rt, ra, imm } => {
            let v = state.reg_or_zero(ra).wrapping_add((imm as i32 as u32) << 16);
            state.set_reg(rt, v);
        }
        Add { rt, ra, rb } => {
            let v = state.reg(ra).wrapping_add(state.reg(rb));
            state.set_reg(rt, v);
        }
        Subf { rt, ra, rb } => {
            let v = state.reg(rb).wrapping_sub(state.reg(ra));
            state.set_reg(rt, v);
        }
        Neg { rt, ra } => state.set_reg(rt, (state.reg(ra) as i32).wrapping_neg() as u32),
        Mullw { rt, ra, rb } => {
            let v = (state.reg(ra) as i32).wrapping_mul(state.reg(rb) as i32);
            state.set_reg(rt, v as u32);
        }
        Divw { rt, ra, rb } => {
            let a = state.reg(ra) as i32;
            let b = state.reg(rb) as i32;
            // Architecturally undefined cases yield 0 here.
            let v = if b == 0 || (a == i32::MIN && b == -1) { 0 } else { a.wrapping_div(b) };
            state.set_reg(rt, v as u32);
        }
        And { ra, rs, rb } => state.set_reg(ra, state.reg(rs) & state.reg(rb)),
        Or { ra, rs, rb } => state.set_reg(ra, state.reg(rs) | state.reg(rb)),
        Xor { ra, rs, rb } => state.set_reg(ra, state.reg(rs) ^ state.reg(rb)),
        Ori { ra, rs, uimm } => state.set_reg(ra, state.reg(rs) | uimm as u32),
        AndiDot { ra, rs, uimm } => {
            let v = state.reg(rs) & uimm as u32;
            state.set_reg(ra, v);
            state.cr.set_signed_cmp(crate::reg::CrField(0), v as i32, 0);
        }
        Xori { ra, rs, uimm } => state.set_reg(ra, state.reg(rs) ^ uimm as u32),
        Slw { ra, rs, rb } => {
            let sh = state.reg(rb) & 0x3F;
            let v = if sh > 31 { 0 } else { state.reg(rs) << sh };
            state.set_reg(ra, v);
        }
        Srw { ra, rs, rb } => {
            let sh = state.reg(rb) & 0x3F;
            let v = if sh > 31 { 0 } else { state.reg(rs) >> sh };
            state.set_reg(ra, v);
        }
        Sraw { ra, rs, rb } => {
            let sh = state.reg(rb) & 0x3F;
            let s = state.reg(rs) as i32;
            let v = if sh > 31 { s >> 31 } else { s >> sh };
            state.set_reg(ra, v as u32);
        }
        Srawi { ra, rs, sh } => {
            state.set_reg(ra, ((state.reg(rs) as i32) >> sh) as u32);
        }
        Rlwinm { ra, rs, sh, mb, me } => {
            let rotated = state.reg(rs).rotate_left(sh as u32);
            state.set_reg(ra, rotated & rlwinm_mask(mb, me));
        }
        Extsb { ra, rs } => state.set_reg(ra, state.reg(rs) as u8 as i8 as i32 as u32),
        Extsh { ra, rs } => state.set_reg(ra, state.reg(rs) as u16 as i16 as i32 as u32),
        Cmpw { crf, ra, rb } => {
            state.cr.set_signed_cmp(crf, state.reg(ra) as i32, state.reg(rb) as i32);
        }
        Cmpwi { crf, ra, imm } => {
            state.cr.set_signed_cmp(crf, state.reg(ra) as i32, imm as i32);
        }
        Cmplw { crf, ra, rb } => {
            state.cr.set_unsigned_cmp(crf, state.reg(ra), state.reg(rb));
        }
        Cmplwi { crf, ra, uimm } => {
            state.cr.set_unsigned_cmp(crf, state.reg(ra), uimm as u32);
        }
        Isel { rt, ra, rb, bc } => {
            let v = if state.cr.bit(bc) { state.reg_or_zero(ra) } else { state.reg(rb) };
            state.set_reg(rt, v);
        }
        Maxw { rt, ra, rb } => {
            let v = (state.reg(ra) as i32).max(state.reg(rb) as i32);
            state.set_reg(rt, v as u32);
        }
        B { offset, link } => {
            if link {
                state.lr = pc.wrapping_add(4);
            }
            next_pc = pc.wrapping_add(offset as u32);
            ev.branch = Some((true, next_pc));
        }
        Bc { cond, offset, link } => {
            if link {
                state.lr = pc.wrapping_add(4);
            }
            let target = pc.wrapping_add(offset as i32 as u32);
            let taken = eval_cond(state, cond);
            if taken {
                next_pc = target;
            }
            ev.branch = Some((taken, target));
        }
        Bclr { cond } => {
            let target = state.lr & !3;
            let taken = eval_cond(state, cond);
            if taken {
                next_pc = target;
            }
            ev.branch = Some((taken, target));
        }
        Bcctr { cond } => {
            // Read CTR *before* a hypothetical decrement; the subset never
            // emits bcctr with the decrement form.
            let target = state.ctr & !3;
            let taken = eval_cond(state, cond);
            if taken {
                next_pc = target;
            }
            ev.branch = Some((taken, target));
        }
        Lwz { rt, ra, disp } => {
            let addr = state.reg_or_zero(ra).wrapping_add(disp as i32 as u32);
            state.set_reg(rt, mem.load_u32(addr)?);
            ev.mem = Some((addr, 4, false));
        }
        Lwzx { rt, ra, rb } => {
            let addr = state.reg_or_zero(ra).wrapping_add(state.reg(rb));
            state.set_reg(rt, mem.load_u32(addr)?);
            ev.mem = Some((addr, 4, false));
        }
        Lbz { rt, ra, disp } => {
            let addr = state.reg_or_zero(ra).wrapping_add(disp as i32 as u32);
            state.set_reg(rt, mem.load_u8(addr)? as u32);
            ev.mem = Some((addr, 1, false));
        }
        Lbzx { rt, ra, rb } => {
            let addr = state.reg_or_zero(ra).wrapping_add(state.reg(rb));
            state.set_reg(rt, mem.load_u8(addr)? as u32);
            ev.mem = Some((addr, 1, false));
        }
        Lhz { rt, ra, disp } => {
            let addr = state.reg_or_zero(ra).wrapping_add(disp as i32 as u32);
            state.set_reg(rt, mem.load_u16(addr)? as u32);
            ev.mem = Some((addr, 2, false));
        }
        Lha { rt, ra, disp } => {
            let addr = state.reg_or_zero(ra).wrapping_add(disp as i32 as u32);
            state.set_reg(rt, mem.load_u16(addr)? as i16 as i32 as u32);
            ev.mem = Some((addr, 2, false));
        }
        Stw { rs, ra, disp } => {
            let addr = state.reg_or_zero(ra).wrapping_add(disp as i32 as u32);
            mem.store_u32(addr, state.reg(rs))?;
            ev.mem = Some((addr, 4, true));
        }
        Stwx { rs, ra, rb } => {
            let addr = state.reg_or_zero(ra).wrapping_add(state.reg(rb));
            mem.store_u32(addr, state.reg(rs))?;
            ev.mem = Some((addr, 4, true));
        }
        Stb { rs, ra, disp } => {
            let addr = state.reg_or_zero(ra).wrapping_add(disp as i32 as u32);
            mem.store_u8(addr, state.reg(rs) as u8)?;
            ev.mem = Some((addr, 1, true));
        }
        Sth { rs, ra, disp } => {
            let addr = state.reg_or_zero(ra).wrapping_add(disp as i32 as u32);
            mem.store_u16(addr, state.reg(rs) as u16)?;
            ev.mem = Some((addr, 2, true));
        }
        Mflr { rt } => state.set_reg(rt, state.lr),
        Mtlr { rs } => state.lr = state.reg(rs),
        Mfctr { rt } => state.set_reg(rt, state.ctr),
        Mtctr { rs } => state.ctr = state.reg(rs),
        Trap => {
            ev.halted = true;
            next_pc = pc;
        }
    }
    state.pc = next_pc;
    Ok(ev)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::reg::{CrBit, CrField};

    fn fresh() -> (CpuState, Memory) {
        (CpuState::new(0x1000), Memory::new(0x1_0000))
    }

    #[test]
    fn addi_li_and_ra_zero_rule() {
        let (mut s, mut m) = fresh();
        s.gpr[0] = 999; // r0 must be ignored in D-form
        step(&mut s, &mut m, &Instruction::Addi { rt: Gpr(3), ra: Gpr(0), imm: -7 }).unwrap();
        assert_eq!(s.reg(Gpr(3)) as i32, -7);
        assert_eq!(s.pc, 0x1004);
        step(&mut s, &mut m, &Instruction::Addi { rt: Gpr(4), ra: Gpr(3), imm: 10 }).unwrap();
        assert_eq!(s.reg(Gpr(4)), 3);
    }

    #[test]
    fn addis_shifts_immediate() {
        let (mut s, mut m) = fresh();
        step(&mut s, &mut m, &Instruction::Addis { rt: Gpr(5), ra: Gpr(0), imm: 2 }).unwrap();
        assert_eq!(s.reg(Gpr(5)), 0x0002_0000);
    }

    #[test]
    fn subf_computes_rb_minus_ra() {
        let (mut s, mut m) = fresh();
        s.gpr[4] = 3;
        s.gpr[5] = 10;
        step(&mut s, &mut m, &Instruction::Subf { rt: Gpr(3), ra: Gpr(4), rb: Gpr(5) }).unwrap();
        assert_eq!(s.reg(Gpr(3)), 7);
    }

    #[test]
    fn maxw_is_signed() {
        let (mut s, mut m) = fresh();
        s.gpr[4] = (-5i32) as u32;
        s.gpr[5] = 3;
        step(&mut s, &mut m, &Instruction::Maxw { rt: Gpr(3), ra: Gpr(4), rb: Gpr(5) }).unwrap();
        assert_eq!(s.reg(Gpr(3)), 3);
        s.gpr[5] = (-9i32) as u32;
        step(&mut s, &mut m, &Instruction::Maxw { rt: Gpr(3), ra: Gpr(4), rb: Gpr(5) }).unwrap();
        assert_eq!(s.reg(Gpr(3)) as i32, -5);
    }

    #[test]
    fn isel_selects_on_cr_bit_with_ra_zero_rule() {
        let (mut s, mut m) = fresh();
        s.gpr[4] = 11;
        s.gpr[5] = 22;
        s.cr.set_bit(CrBit(1), true);
        let isel = Instruction::Isel { rt: Gpr(3), ra: Gpr(4), rb: Gpr(5), bc: CrBit(1) };
        step(&mut s, &mut m, &isel).unwrap();
        assert_eq!(s.reg(Gpr(3)), 11);
        s.cr.set_bit(CrBit(1), false);
        step(&mut s, &mut m, &isel).unwrap();
        assert_eq!(s.reg(Gpr(3)), 22);
        // RA = 0 selects literal zero when the bit is true.
        s.cr.set_bit(CrBit(1), true);
        s.gpr[0] = 77;
        let isel0 = Instruction::Isel { rt: Gpr(3), ra: Gpr(0), rb: Gpr(5), bc: CrBit(1) };
        step(&mut s, &mut m, &isel0).unwrap();
        assert_eq!(s.reg(Gpr(3)), 0);
    }

    #[test]
    fn cmp_then_bc_taken_and_not_taken() {
        let (mut s, mut m) = fresh();
        s.gpr[4] = 5;
        s.gpr[5] = 9;
        step(&mut s, &mut m, &Instruction::Cmpw { crf: CrField(0), ra: Gpr(4), rb: Gpr(5) })
            .unwrap();
        // 5 < 9: LT set. Branch if LT.
        let bc = Instruction::Bc { cond: BranchCond::IfTrue(CrBit(0)), offset: 16, link: false };
        let pc_before = s.pc;
        let ev = step(&mut s, &mut m, &bc).unwrap();
        assert_eq!(ev.branch, Some((true, pc_before + 16)));
        assert_eq!(s.pc, pc_before + 16);
        // Now GT: branch falls through, event still carries the target.
        step(&mut s, &mut m, &Instruction::Cmpw { crf: CrField(0), ra: Gpr(5), rb: Gpr(4) })
            .unwrap();
        let pc_before = s.pc;
        let ev = step(&mut s, &mut m, &bc).unwrap();
        assert_eq!(ev.branch, Some((false, pc_before + 16)));
        assert_eq!(s.pc, pc_before + 4);
    }

    #[test]
    fn bdnz_decrements_ctr() {
        let (mut s, mut m) = fresh();
        s.ctr = 2;
        let bdnz = Instruction::Bc { cond: BranchCond::DecrementNotZero, offset: -8, link: false };
        let pc0 = s.pc;
        let ev = step(&mut s, &mut m, &bdnz).unwrap();
        assert_eq!(s.ctr, 1);
        assert_eq!(ev.branch, Some((true, pc0 - 8)));
        let ev = step(&mut s, &mut m, &bdnz).unwrap();
        assert_eq!(s.ctr, 0);
        assert!(!ev.branch.unwrap().0);
    }

    #[test]
    fn bl_blr_round_trip() {
        let (mut s, mut m) = fresh();
        let pc0 = s.pc;
        step(&mut s, &mut m, &Instruction::B { offset: 0x100, link: true }).unwrap();
        assert_eq!(s.lr, pc0 + 4);
        assert_eq!(s.pc, pc0 + 0x100);
        let ev = step(&mut s, &mut m, &Instruction::Bclr { cond: BranchCond::Always }).unwrap();
        assert_eq!(ev.branch, Some((true, pc0 + 4)));
        assert_eq!(s.pc, pc0 + 4);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let (mut s, mut m) = fresh();
        s.gpr[3] = 0x2000;
        s.gpr[4] = 0xDEAD_BEEF;
        let ev =
            step(&mut s, &mut m, &Instruction::Stw { rs: Gpr(4), ra: Gpr(3), disp: 8 }).unwrap();
        assert_eq!(ev.mem, Some((0x2008, 4, true)));
        step(&mut s, &mut m, &Instruction::Lwz { rt: Gpr(5), ra: Gpr(3), disp: 8 }).unwrap();
        assert_eq!(s.reg(Gpr(5)), 0xDEAD_BEEF);
        step(&mut s, &mut m, &Instruction::Lbz { rt: Gpr(6), ra: Gpr(3), disp: 8 }).unwrap();
        assert_eq!(s.reg(Gpr(6)), 0xEF);
        step(&mut s, &mut m, &Instruction::Lhz { rt: Gpr(7), ra: Gpr(3), disp: 8 }).unwrap();
        assert_eq!(s.reg(Gpr(7)), 0xBEEF);
        step(&mut s, &mut m, &Instruction::Lha { rt: Gpr(8), ra: Gpr(3), disp: 8 }).unwrap();
        assert_eq!(s.reg(Gpr(8)), 0xFFFF_BEEF);
    }

    #[test]
    fn indexed_forms_compute_address() {
        let (mut s, mut m) = fresh();
        s.gpr[3] = 0x2000;
        s.gpr[4] = 0x10;
        s.gpr[5] = 42;
        step(&mut s, &mut m, &Instruction::Stwx { rs: Gpr(5), ra: Gpr(3), rb: Gpr(4) }).unwrap();
        step(&mut s, &mut m, &Instruction::Lwzx { rt: Gpr(6), ra: Gpr(3), rb: Gpr(4) }).unwrap();
        assert_eq!(s.reg(Gpr(6)), 42);
        step(&mut s, &mut m, &Instruction::Lbzx { rt: Gpr(7), ra: Gpr(3), rb: Gpr(4) }).unwrap();
        assert_eq!(s.reg(Gpr(7)), 42);
    }

    #[test]
    fn out_of_bounds_access_faults() {
        let (mut s, mut m) = fresh();
        s.gpr[3] = 0xFFFF_FFF0;
        let err = step(&mut s, &mut m, &Instruction::Lwz { rt: Gpr(4), ra: Gpr(3), disp: 0 })
            .unwrap_err();
        assert_eq!(err.bytes, 4);
        assert_eq!(err.kind, MemFaultKind::OutOfBounds);
        // PC unchanged on fault.
        assert_eq!(s.pc, 0x1000);
    }

    #[test]
    fn misaligned_access_faults() {
        let (mut s, mut m) = fresh();
        s.gpr[3] = 0x2002; // word access off by 2
        let err = step(&mut s, &mut m, &Instruction::Lwz { rt: Gpr(4), ra: Gpr(3), disp: 0 })
            .unwrap_err();
        assert_eq!(err, MemFault { addr: 0x2002, bytes: 4, kind: MemFaultKind::Misaligned });
        assert_eq!(s.pc, 0x1000);
        // Halfword store off by 1 faults too; byte accesses never do.
        assert!(m.store_u16(0x2001, 7).is_err());
        assert!(m.store_u8(0x2001, 7).is_ok());
        // Host-side image loading is exempt from the alignment rule.
        assert!(m.write_bytes(0x2001, b"abc").is_ok());
    }

    #[test]
    fn flip_bit_targets_one_bit_and_ignores_oob() {
        let mut m = Memory::new(64);
        m.flip_bit(10, 3);
        assert_eq!(m.load_u8(10).unwrap(), 1 << 3);
        m.flip_bit(10, 3);
        assert_eq!(m.load_u8(10).unwrap(), 0);
        m.flip_bit(1 << 30, 0); // silently out of range
    }

    #[test]
    fn shifts_behave_architecturally() {
        let (mut s, mut m) = fresh();
        s.gpr[4] = 0x8000_0001;
        s.gpr[5] = 33; // > 31: slw/srw produce 0, sraw produces sign fill
        step(&mut s, &mut m, &Instruction::Slw { ra: Gpr(3), rs: Gpr(4), rb: Gpr(5) }).unwrap();
        assert_eq!(s.reg(Gpr(3)), 0);
        step(&mut s, &mut m, &Instruction::Sraw { ra: Gpr(3), rs: Gpr(4), rb: Gpr(5) }).unwrap();
        assert_eq!(s.reg(Gpr(3)), 0xFFFF_FFFF);
        step(&mut s, &mut m, &Instruction::Srawi { ra: Gpr(3), rs: Gpr(4), sh: 1 }).unwrap();
        assert_eq!(s.reg(Gpr(3)), 0xC000_0000);
    }

    #[test]
    fn rlwinm_slwi_srwi_aliases() {
        let (mut s, mut m) = fresh();
        s.gpr[4] = 0x0000_00FF;
        // slwi r3, r4, 2 == rlwinm r3, r4, 2, 0, 29
        step(&mut s, &mut m, &Instruction::Rlwinm { ra: Gpr(3), rs: Gpr(4), sh: 2, mb: 0, me: 29 })
            .unwrap();
        assert_eq!(s.reg(Gpr(3)), 0x3FC);
        // srwi r3, r4, 4 == rlwinm r3, r4, 28, 4, 31
        step(
            &mut s,
            &mut m,
            &Instruction::Rlwinm { ra: Gpr(3), rs: Gpr(4), sh: 28, mb: 4, me: 31 },
        )
        .unwrap();
        assert_eq!(s.reg(Gpr(3)), 0x0000_000F);
    }

    #[test]
    fn divw_handles_undefined_cases() {
        let (mut s, mut m) = fresh();
        s.gpr[4] = 10;
        s.gpr[5] = 0;
        step(&mut s, &mut m, &Instruction::Divw { rt: Gpr(3), ra: Gpr(4), rb: Gpr(5) }).unwrap();
        assert_eq!(s.reg(Gpr(3)), 0);
        s.gpr[4] = i32::MIN as u32;
        s.gpr[5] = (-1i32) as u32;
        step(&mut s, &mut m, &Instruction::Divw { rt: Gpr(3), ra: Gpr(4), rb: Gpr(5) }).unwrap();
        assert_eq!(s.reg(Gpr(3)), 0);
        s.gpr[5] = (-2i32) as u32;
        step(&mut s, &mut m, &Instruction::Divw { rt: Gpr(3), ra: Gpr(4), rb: Gpr(5) }).unwrap();
        assert_eq!(s.reg(Gpr(3)) as i32, i32::MIN / -2);
    }

    #[test]
    fn andi_dot_sets_cr0() {
        let (mut s, mut m) = fresh();
        s.gpr[4] = 0xF0;
        step(&mut s, &mut m, &Instruction::AndiDot { ra: Gpr(3), rs: Gpr(4), uimm: 0x0F }).unwrap();
        assert_eq!(s.reg(Gpr(3)), 0);
        assert_eq!(s.cr.field(CrField(0)), (false, false, true, false));
    }

    #[test]
    fn trap_halts_without_advancing() {
        let (mut s, mut m) = fresh();
        let ev = step(&mut s, &mut m, &Instruction::Trap).unwrap();
        assert!(ev.halted);
        assert_eq!(s.pc, 0x1000);
    }

    #[test]
    fn mtctr_bctr_indirect_branch() {
        let (mut s, mut m) = fresh();
        s.gpr[4] = 0x3000;
        step(&mut s, &mut m, &Instruction::Mtctr { rs: Gpr(4) }).unwrap();
        let ev = step(&mut s, &mut m, &Instruction::Bcctr { cond: BranchCond::Always }).unwrap();
        assert_eq!(ev.branch, Some((true, 0x3000)));
        assert_eq!(s.pc, 0x3000);
    }

    #[test]
    fn memory_helpers_round_trip() {
        let mut m = Memory::new(256);
        m.write_i32s(16, &[-1, 2, -3]).unwrap();
        assert_eq!(m.read_i32s(16, 3).unwrap(), vec![-1, 2, -3]);
        m.write_bytes(64, b"hello").unwrap();
        assert_eq!(m.load_u8(68).unwrap(), b'o');
        assert!(m.write_bytes(254, b"xyz").is_err());
    }
}
