//! Registers and condition-register plumbing.

use std::fmt;

/// A general-purpose register, `r0`–`r31`.
///
/// Note the PowerPC quirk: in D-form address computation and in `isel`,
/// an `RA` field of 0 means the *value zero*, not the contents of `r0`.
/// That rule lives in the executor; `Gpr(0)` here always names the
/// register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gpr(pub u8);

impl Gpr {
    /// Register index (0–31). Decoded register fields are 5 bits, so
    /// the mask is a no-op for any decoder-produced value; it exists to
    /// let the compiler drop bounds checks on register-file accesses.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & 31) as usize
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One of the eight 4-bit condition-register fields, `cr0`–`cr7`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CrField(pub u8);

impl CrField {
    /// Field index (0–7).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// CR bit number of this field's LT bit (bits are numbered 0..32,
    /// big-endian as in the PowerPC books: bit 0 is cr0's LT).
    #[inline]
    pub fn lt_bit(self) -> CrBit {
        CrBit(self.0 * 4)
    }

    /// CR bit number of this field's GT bit.
    #[inline]
    pub fn gt_bit(self) -> CrBit {
        CrBit(self.0 * 4 + 1)
    }

    /// CR bit number of this field's EQ bit.
    #[inline]
    pub fn eq_bit(self) -> CrBit {
        CrBit(self.0 * 4 + 2)
    }

    /// CR bit number of this field's SO bit.
    #[inline]
    pub fn so_bit(self) -> CrBit {
        CrBit(self.0 * 4 + 3)
    }
}

impl fmt::Display for CrField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cr{}", self.0)
    }
}

/// A single condition-register bit (0–31), as used by `bc` (`BI` field) and
/// `isel` (`BC` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CrBit(pub u8);

impl CrBit {
    /// The field containing this bit.
    pub fn field(self) -> CrField {
        CrField(self.0 / 4)
    }

    /// Bit position within the field: 0 = LT, 1 = GT, 2 = EQ, 3 = SO.
    pub fn within_field(self) -> u8 {
        self.0 % 4
    }
}

impl fmt::Display for CrBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = ["lt", "gt", "eq", "so"];
        write!(f, "4*cr{}+{}", self.0 / 4, names[(self.0 % 4) as usize])
    }
}

/// The 32-bit condition register with PowerPC big-endian bit numbering
/// (bit 0 is the most significant).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct CondReg(pub u32);

impl CondReg {
    /// Read bit `bit` (0 = MSB).
    #[inline]
    pub fn bit(self, bit: CrBit) -> bool {
        (self.0 >> (31 - bit.0)) & 1 != 0
    }

    /// Set bit `bit` to `value`.
    #[inline]
    pub fn set_bit(&mut self, bit: CrBit, value: bool) {
        let mask = 1u32 << (31 - bit.0);
        if value {
            self.0 |= mask;
        } else {
            self.0 &= !mask;
        }
    }

    /// Read a whole 4-bit field as `(LT, GT, EQ, SO)`.
    pub fn field(self, f: CrField) -> (bool, bool, bool, bool) {
        (self.bit(f.lt_bit()), self.bit(f.gt_bit()), self.bit(f.eq_bit()), self.bit(f.so_bit()))
    }

    /// Write a field from a signed comparison of `a` and `b` (SO cleared —
    /// the subset never sets the overflow summary).
    #[inline]
    pub fn set_signed_cmp(&mut self, f: CrField, a: i32, b: i32) {
        self.set_bit(f.lt_bit(), a < b);
        self.set_bit(f.gt_bit(), a > b);
        self.set_bit(f.eq_bit(), a == b);
        self.set_bit(f.so_bit(), false);
    }

    /// Write a field from an unsigned comparison.
    #[inline]
    pub fn set_unsigned_cmp(&mut self, f: CrField, a: u32, b: u32) {
        self.set_bit(f.lt_bit(), a < b);
        self.set_bit(f.gt_bit(), a > b);
        self.set_bit(f.eq_bit(), a == b);
        self.set_bit(f.so_bit(), false);
    }
}

/// A renameable machine resource, used for dependence tracking by the
/// out-of-order timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// General-purpose register.
    Gpr(Gpr),
    /// A condition-register field (CR renames at field granularity on
    /// POWER5).
    Cr(CrField),
    /// The link register.
    Lr,
    /// The count register.
    Ctr,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Gpr(g) => write!(f, "{g}"),
            Resource::Cr(c) => write!(f, "{c}"),
            Resource::Lr => write!(f, "lr"),
            Resource::Ctr => write!(f, "ctr"),
        }
    }
}

/// A fixed-capacity list of up to four [`Resource`]s — the most any subset
/// instruction reads or writes — avoiding heap allocation in the
/// simulator's hot loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResList {
    items: [Option<Resource>; 4],
    len: u8,
}

impl ResList {
    /// The empty list.
    pub fn new() -> Self {
        ResList::default()
    }

    /// Append a resource.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds four resources.
    pub fn push(&mut self, r: Resource) {
        assert!((self.len as usize) < 4, "ResList overflow");
        self.items[self.len as usize] = Some(r);
        self.len += 1;
    }

    /// Number of resources held.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over the resources.
    pub fn iter(&self) -> impl Iterator<Item = Resource> + '_ {
        self.items.iter().take(self.len as usize).map(|r| r.expect("within len"))
    }

    /// Whether the list contains `r`.
    pub fn contains(&self, r: Resource) -> bool {
        self.iter().any(|x| x == r)
    }
}

impl FromIterator<Resource> for ResList {
    fn from_iter<T: IntoIterator<Item = Resource>>(iter: T) -> Self {
        let mut l = ResList::new();
        for r in iter {
            l.push(r);
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cr_bit_numbering_is_big_endian() {
        let mut cr = CondReg::default();
        cr.set_bit(CrBit(0), true); // cr0.lt is the MSB
        assert_eq!(cr.0, 0x8000_0000);
        cr.set_bit(CrBit(31), true); // cr7.so is the LSB
        assert_eq!(cr.0, 0x8000_0001);
    }

    #[test]
    fn cr_field_bits_map_correctly() {
        let f = CrField(2);
        assert_eq!(f.lt_bit(), CrBit(8));
        assert_eq!(f.gt_bit(), CrBit(9));
        assert_eq!(f.eq_bit(), CrBit(10));
        assert_eq!(f.so_bit(), CrBit(11));
        assert_eq!(CrBit(9).field(), f);
        assert_eq!(CrBit(9).within_field(), 1);
    }

    #[test]
    fn signed_cmp_sets_exactly_one_of_lt_gt_eq() {
        let mut cr = CondReg::default();
        cr.set_signed_cmp(CrField(0), -5, 3);
        assert_eq!(cr.field(CrField(0)), (true, false, false, false));
        cr.set_signed_cmp(CrField(0), 7, 3);
        assert_eq!(cr.field(CrField(0)), (false, true, false, false));
        cr.set_signed_cmp(CrField(0), 3, 3);
        assert_eq!(cr.field(CrField(0)), (false, false, true, false));
    }

    #[test]
    fn unsigned_cmp_differs_from_signed_on_negative() {
        let mut cr = CondReg::default();
        cr.set_unsigned_cmp(CrField(1), 0xFFFF_FFFF, 1);
        assert_eq!(cr.field(CrField(1)), (false, true, false, false));
        cr.set_signed_cmp(CrField(1), -1, 1);
        assert_eq!(cr.field(CrField(1)), (true, false, false, false));
    }

    #[test]
    fn set_bit_clears_too() {
        let mut cr = CondReg(u32::MAX);
        cr.set_bit(CrBit(5), false);
        assert!(!cr.bit(CrBit(5)));
        assert!(cr.bit(CrBit(4)));
        assert!(cr.bit(CrBit(6)));
    }

    #[test]
    fn fields_do_not_interfere() {
        let mut cr = CondReg::default();
        cr.set_signed_cmp(CrField(0), 1, 2);
        cr.set_signed_cmp(CrField(7), 2, 1);
        assert_eq!(cr.field(CrField(0)), (true, false, false, false));
        assert_eq!(cr.field(CrField(7)), (false, true, false, false));
        for f in 1..7 {
            assert_eq!(cr.field(CrField(f)), (false, false, false, false));
        }
    }

    #[test]
    fn reslist_push_iter_contains() {
        let mut l = ResList::new();
        assert!(l.is_empty());
        l.push(Resource::Gpr(Gpr(3)));
        l.push(Resource::Lr);
        assert_eq!(l.len(), 2);
        assert!(l.contains(Resource::Lr));
        assert!(!l.contains(Resource::Ctr));
        let v: Vec<Resource> = l.iter().collect();
        assert_eq!(v, vec![Resource::Gpr(Gpr(3)), Resource::Lr]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn reslist_overflow_panics() {
        let mut l = ResList::new();
        for i in 0..5 {
            l.push(Resource::Gpr(Gpr(i)));
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Gpr(31).to_string(), "r31");
        assert_eq!(CrField(3).to_string(), "cr3");
        assert_eq!(CrBit(13).to_string(), "4*cr3+gt");
        assert_eq!(Resource::Ctr.to_string(), "ctr");
    }
}
