//! Textual disassembly (the `Display` impl for [`Instruction`]).
//!
//! Output follows GNU `objdump` conventions for the subset, including the
//! usual simplified mnemonics (`li`, `mr`, `nop`, `blr`, `bctr`, `bdnz`).

use crate::insn::{BranchCond, Instruction};
use std::fmt;

fn cond_suffix(cond: &BranchCond) -> String {
    match cond {
        BranchCond::IfFalse(bit) => format!("f {bit}"),
        BranchCond::IfTrue(bit) => format!("t {bit}"),
        BranchCond::DecrementNotZero => "dnz".to_string(),
        BranchCond::Always => String::new(),
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match *self {
            Addi { rt, ra, imm } if ra.0 == 0 => write!(f, "li {rt}, {imm}"),
            Addi { rt, ra, imm } => write!(f, "addi {rt}, {ra}, {imm}"),
            Addis { rt, ra, imm } if ra.0 == 0 => write!(f, "lis {rt}, {imm}"),
            Addis { rt, ra, imm } => write!(f, "addis {rt}, {ra}, {imm}"),
            Add { rt, ra, rb } => write!(f, "add {rt}, {ra}, {rb}"),
            Subf { rt, ra, rb } => write!(f, "subf {rt}, {ra}, {rb}"),
            Neg { rt, ra } => write!(f, "neg {rt}, {ra}"),
            Mullw { rt, ra, rb } => write!(f, "mullw {rt}, {ra}, {rb}"),
            Divw { rt, ra, rb } => write!(f, "divw {rt}, {ra}, {rb}"),
            And { ra, rs, rb } => write!(f, "and {ra}, {rs}, {rb}"),
            Or { ra, rs, rb } if rs == rb => write!(f, "mr {ra}, {rs}"),
            Or { ra, rs, rb } => write!(f, "or {ra}, {rs}, {rb}"),
            Xor { ra, rs, rb } => write!(f, "xor {ra}, {rs}, {rb}"),
            Ori { ra, rs, uimm } if ra.0 == 0 && rs.0 == 0 && uimm == 0 => write!(f, "nop"),
            Ori { ra, rs, uimm } => write!(f, "ori {ra}, {rs}, {uimm}"),
            AndiDot { ra, rs, uimm } => write!(f, "andi. {ra}, {rs}, {uimm}"),
            Xori { ra, rs, uimm } => write!(f, "xori {ra}, {rs}, {uimm}"),
            Slw { ra, rs, rb } => write!(f, "slw {ra}, {rs}, {rb}"),
            Srw { ra, rs, rb } => write!(f, "srw {ra}, {rs}, {rb}"),
            Sraw { ra, rs, rb } => write!(f, "sraw {ra}, {rs}, {rb}"),
            Srawi { ra, rs, sh } => write!(f, "srawi {ra}, {rs}, {sh}"),
            Rlwinm { ra, rs, sh, mb, me } => {
                write!(f, "rlwinm {ra}, {rs}, {sh}, {mb}, {me}")
            }
            Extsb { ra, rs } => write!(f, "extsb {ra}, {rs}"),
            Extsh { ra, rs } => write!(f, "extsh {ra}, {rs}"),
            Cmpw { crf, ra, rb } => write!(f, "cmpw {crf}, {ra}, {rb}"),
            Cmpwi { crf, ra, imm } => write!(f, "cmpwi {crf}, {ra}, {imm}"),
            Cmplw { crf, ra, rb } => write!(f, "cmplw {crf}, {ra}, {rb}"),
            Cmplwi { crf, ra, uimm } => write!(f, "cmplwi {crf}, {ra}, {uimm}"),
            Isel { rt, ra, rb, bc } => write!(f, "isel {rt}, {ra}, {rb}, {bc}"),
            Maxw { rt, ra, rb } => write!(f, "maxw {rt}, {ra}, {rb}"),
            B { offset, link } => {
                write!(f, "b{} .{:+}", if link { "l" } else { "" }, offset)
            }
            Bc { cond, offset, link } => {
                let l = if link { "l" } else { "" };
                match cond {
                    // Distinct from the I-form `b`: the encoding differs,
                    // so the mnemonic must too for assembler round-trips.
                    BranchCond::Always => write!(f, "bcalways{l} .{offset:+}"),
                    BranchCond::DecrementNotZero => {
                        write!(f, "bdnz{l} .{offset:+}")
                    }
                    BranchCond::IfFalse(bit) => write!(f, "bcf{l} {bit}, .{offset:+}"),
                    BranchCond::IfTrue(bit) => write!(f, "bct{l} {bit}, .{offset:+}"),
                }
            }
            Bclr { cond } => match cond {
                BranchCond::Always => write!(f, "blr"),
                _ => write!(f, "bclr{}", cond_suffix(&cond)),
            },
            Bcctr { cond } => match cond {
                BranchCond::Always => write!(f, "bctr"),
                _ => write!(f, "bcctr{}", cond_suffix(&cond)),
            },
            Lwz { rt, ra, disp } => write!(f, "lwz {rt}, {disp}({ra})"),
            Lwzx { rt, ra, rb } => write!(f, "lwzx {rt}, {ra}, {rb}"),
            Lbz { rt, ra, disp } => write!(f, "lbz {rt}, {disp}({ra})"),
            Lbzx { rt, ra, rb } => write!(f, "lbzx {rt}, {ra}, {rb}"),
            Lhz { rt, ra, disp } => write!(f, "lhz {rt}, {disp}({ra})"),
            Lha { rt, ra, disp } => write!(f, "lha {rt}, {disp}({ra})"),
            Stw { rs, ra, disp } => write!(f, "stw {rs}, {disp}({ra})"),
            Stwx { rs, ra, rb } => write!(f, "stwx {rs}, {ra}, {rb}"),
            Stb { rs, ra, disp } => write!(f, "stb {rs}, {disp}({ra})"),
            Sth { rs, ra, disp } => write!(f, "sth {rs}, {disp}({ra})"),
            Mflr { rt } => write!(f, "mflr {rt}"),
            Mtlr { rs } => write!(f, "mtlr {rs}"),
            Mfctr { rt } => write!(f, "mfctr {rt}"),
            Mtctr { rs } => write!(f, "mtctr {rs}"),
            Trap => write!(f, "trap"),
        }
    }
}

/// Disassemble a slice of instruction words starting at `base`, one line
/// per instruction, undecodable words shown as `.word`.
pub fn disassemble(words: &[u32], base: u32) -> String {
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let addr = base + 4 * i as u32;
        match crate::encode::decode(w) {
            Ok(insn) => out.push_str(&format!("{addr:8x}:  {w:08x}  {insn}\n")),
            Err(_) => out.push_str(&format!("{addr:8x}:  {w:08x}  .word 0x{w:08x}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::reg::{CrBit, CrField, Gpr};

    #[test]
    fn simplified_mnemonics() {
        assert_eq!(Instruction::nop().to_string(), "nop");
        assert_eq!(Instruction::Addi { rt: Gpr(3), ra: Gpr(0), imm: -1 }.to_string(), "li r3, -1");
        assert_eq!(Instruction::Or { ra: Gpr(3), rs: Gpr(4), rb: Gpr(4) }.to_string(), "mr r3, r4");
        assert_eq!(Instruction::Bclr { cond: BranchCond::Always }.to_string(), "blr");
    }

    #[test]
    fn memory_operand_syntax() {
        assert_eq!(
            Instruction::Lwz { rt: Gpr(9), ra: Gpr(1), disp: -8 }.to_string(),
            "lwz r9, -8(r1)"
        );
        assert_eq!(
            Instruction::Stwx { rs: Gpr(3), ra: Gpr(4), rb: Gpr(5) }.to_string(),
            "stwx r3, r4, r5"
        );
    }

    #[test]
    fn branch_syntax() {
        assert_eq!(Instruction::B { offset: -16, link: false }.to_string(), "b .-16");
        assert_eq!(
            Instruction::Bc { cond: BranchCond::IfTrue(CrBit(1)), offset: 8, link: false }
                .to_string(),
            "bct 4*cr0+gt, .+8"
        );
        assert_eq!(
            Instruction::Bc { cond: BranchCond::DecrementNotZero, offset: -8, link: false }
                .to_string(),
            "bdnz .-8"
        );
    }

    #[test]
    fn predicated_syntax() {
        assert_eq!(
            Instruction::Maxw { rt: Gpr(3), ra: Gpr(4), rb: Gpr(5) }.to_string(),
            "maxw r3, r4, r5"
        );
        assert_eq!(
            Instruction::Isel { rt: Gpr(3), ra: Gpr(4), rb: Gpr(5), bc: CrBit(1) }.to_string(),
            "isel r3, r4, r5, 4*cr0+gt"
        );
        assert_eq!(
            Instruction::Cmpw { crf: CrField(0), ra: Gpr(4), rb: Gpr(5) }.to_string(),
            "cmpw cr0, r4, r5"
        );
    }

    #[test]
    fn disassemble_mixed_stream() {
        let words = vec![
            encode(&Instruction::Addi { rt: Gpr(3), ra: Gpr(0), imm: 7 }),
            0xFFFF_FFFF, // undecodable
            encode(&Instruction::Trap),
        ];
        let text = disassemble(&words, 0x1000);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("li r3, 7"));
        assert!(lines[1].contains(".word 0xffffffff"));
        assert!(lines[2].contains("trap"));
        assert!(lines[0].trim_start().starts_with("1000:"));
    }
}
