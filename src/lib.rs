//! Workspace facade for the POWER5 BioPerf reproduction.
//!
//! This crate re-exports the member crates so the examples and
//! integration tests can reach the whole stack through one dependency.
//! Library users should depend on the member crates directly:
//!
//! * [`bioseq`] — sequences, matrices, synthetic workload generation;
//! * [`bioalign`] — the golden-model bioinformatics algorithms;
//! * [`ppc_isa`] / [`ppc_asm`] — the PowerPC-subset ISA and assembler;
//! * [`kernelc`] — the if-converting kernel compiler;
//! * [`power5_sim`] — the cycle-level POWER5 core model;
//! * [`bioarch`] — workloads, validation, and the paper's experiments.

#![forbid(unsafe_code)]

pub use bioalign;
pub use bioarch;
pub use bioseq;
pub use kernelc;
pub use power5_sim;
pub use ppc_asm;
pub use ppc_isa;
