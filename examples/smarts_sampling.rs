//! The paper's measurement methodology (Section V): SystemSim-style
//! uniform sampling à la SMARTS — fast functional forwarding, timed
//! warm-up, short measured windows — compared against the ground truth of
//! full timing simulation.
//!
//! Run with `cargo run --release --example smarts_sampling`.

use power5_sim::machine::SamplingConfig;
use power5_sim::{CoreConfig, Machine};

const PROGRAM: &str = "
// Two program phases with different IPC: a dependent-chain phase and an
// unpredictable-branch phase, iterated alternately.
entry:
    li r14, 60
    li r15, 12345
outer:
    li r4, 1200
    mtctr r4
chain:                      // phase 1: serial dependency chain
    add r3, r3, r3
    xor r3, r3, r4
    addi r3, r3, 1
    bdnz chain
    li r4, 1200
    mtctr r4
noise:                      // phase 2: value-dependent branches
    mullw r15, r15, r16
    addi r15, r15, 12345
    srawi r5, r15, 16
    andi. r5, r5, 1
    beq cr0, skip
    addi r6, r6, 1
skip:
    bdnz noise
    addi r14, r14, -1
    cmpwi cr0, r14, 0
    bgt cr0, outer
    trap
";

fn machine() -> Machine {
    let prog = ppc_asm::assemble(PROGRAM, 0x1000).expect("assembles");
    let mut m = Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 1 << 20);
    m.cpu_mut().gpr[1] = 0xF0000;
    m.cpu_mut().gpr[16] = 1103515245;
    m
}

fn main() {
    // Ground truth: full timing simulation.
    let mut full = machine();
    let t0 = std::time::Instant::now();
    full.run_timed(u64::MAX).expect("runs");
    let full_time = t0.elapsed();
    let truth = full.counters();
    println!(
        "full timing     : {:>9} insns, IPC {:.3}, mispredict rate {:.2}%  ({full_time:.1?})",
        truth.instructions,
        truth.ipc(),
        100.0 * truth.branches.misprediction_rate()
    );

    // SMARTS-style sampling at a few detail budgets.
    for (period, warmup, detail) in [(20_000u64, 800, 400), (10_000, 800, 400), (5_000, 500, 500)] {
        let mut m = machine();
        let t0 = std::time::Instant::now();
        let s = m
            .run_sampled(SamplingConfig { period, warmup, detail }, u64::MAX)
            .expect("sampled run");
        let dt = t0.elapsed();
        let measured_frac = s.measured.instructions as f64 / s.total_instructions as f64;
        println!(
            "sampled 1/{:<5} : {:>9} insns, IPC {:.3} ({:+.1}% error), mispredict {:.2}%, measured {:.1}% of stream  ({dt:.1?})",
            period / detail,
            s.total_instructions,
            s.ipc(),
            100.0 * (s.ipc() / truth.ipc() - 1.0),
            100.0 * s.measured.branches.misprediction_rate(),
            100.0 * measured_frac,
        );
    }
    println!("\nUniform sampling recovers IPC within a few percent while timing only ~5-10% of instructions,");
    println!(
        "which is why the paper could afford cycle-accurate numbers from a full-system simulator."
    );
}
