//! Diff two machine-readable experiment reports and flag regressions.
//!
//! Every table/figure bench target writes a `bioarch-report/v1` JSON
//! document next to its text output (default `target/reports/<slug>.json`,
//! see `BIOARCH_REPORT_DIR`). This tool compares two such files metric by
//! metric: a metric regresses when it moves *against* its recorded
//! direction (`higher`/`lower`; `neutral` metrics are reported but never
//! flagged) by more than the tolerance. `bioarch-metrics/v1` telemetry
//! documents are accepted too: their histograms are flattened to
//! `<name>.p50`-style neutral metrics before diffing, so CI can
//! `--require`-gate telemetry output with the same tool.
//!
//! ```text
//! cargo run --release --example compare_runs -- before.json after.json [tolerance] [--allow-degraded] [--require <metric>]...
//! cargo run --release --example compare_runs -- --demo
//! ```
//!
//! The default tolerance is 0.02 (2 %). Every failing metric is printed
//! with its baseline and current values. `--require <metric>` (repeatable)
//! turns a metric missing from either report into a regression instead of
//! a silent "missing" note — CI gates use it so a metric that stops being
//! recorded cannot slip past the comparison. The exit code tells CI *why*
//! a gate failed:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | no regression beyond tolerance |
//! | 1    | usage or I/O error (bad flags, unreadable/unparsable report) |
//! | 2    | a degraded input report, without `--allow-degraded` |
//! | 3    | at least one metric regression beyond tolerance |
//!
//! A report marked `"degraded": true` (some workload failed while the
//! suite completed) is refused unless `--allow-degraded` is passed —
//! degraded metrics are partial and must not silently pass a gate.
//! `--demo` generates a Table-I-style report pair in memory, injects an
//! IPC regression, and shows the resulting diff (exiting 3 like the real
//! flow).

use bioarch::report::{compare_reports, Comparison, Direction, Report};
use bioarch::telemetry::{parse_metrics_report, METRICS_SCHEMA};
use std::process::ExitCode;

/// Load either report flavour: a `bioarch-report/v1` document verbatim,
/// or a `bioarch-metrics/v1` telemetry document flattened into
/// report-shaped metrics (histograms become `<name>.p50`/`.p99`/… —
/// see `bioarch::telemetry::metrics_json_to_report`), so CI can
/// `--require`-gate telemetry output with the same tool.
fn load(path: &str) -> Report {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    if text.contains(METRICS_SCHEMA) {
        if let Ok(report) = parse_metrics_report(&text) {
            return report;
        }
    }
    Report::parse(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")))
}

/// Exit code for a degraded input without `--allow-degraded`.
const EXIT_DEGRADED: u8 = 2;
/// Exit code for a metric regression beyond tolerance.
const EXIT_REGRESSION: u8 = 3;

fn die(msg: &str) -> ! {
    eprintln!("compare_runs: {msg}");
    std::process::exit(1);
}

fn summarize(cmp: &Comparison, tolerance: f64) -> ExitCode {
    print!("{}", cmp.render());
    let regressions = cmp.regressions();
    if regressions.is_empty() {
        println!("\nNo regressions beyond {:.1}% tolerance.", 100.0 * tolerance);
        ExitCode::SUCCESS
    } else {
        println!(
            "\n{} regression(s) beyond {:.1}% tolerance:",
            regressions.len(),
            100.0 * tolerance
        );
        for d in &regressions {
            println!("  {}: {:.4} -> {:.4}", d.name, d.before, d.after);
        }
        ExitCode::from(EXIT_REGRESSION)
    }
}

fn demo() -> ExitCode {
    let tolerance = 0.02;
    let mut before = Report::new("table1");
    before.push("clustalw.ipc", 0.92, Direction::Higher);
    before.push("clustalw.l1d_miss_rate", 0.011, Direction::Lower);
    before.push("clustalw.direction_fraction", 0.97, Direction::Neutral);

    // Round-trip both reports through the JSON schema, as the real flow
    // does via report files on disk.
    let mut after = Report::parse(&before.render_json()).expect("roundtrip");
    assert_eq!(after.metrics.len(), before.metrics.len());
    // Inject an IPC regression well beyond the tolerance.
    after.metrics[0].value = 0.80;

    println!("demo: injected clustalw.ipc regression 0.92 -> 0.80\n");
    let cmp = compare_reports(&before, &after, tolerance);
    let code = summarize(&cmp, tolerance);
    assert_eq!(cmp.regressions().len(), 1, "demo must flag exactly the injected regression");
    code
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--demo") {
        return demo();
    }
    let allow_degraded = args.iter().any(|a| a == "--allow-degraded");
    args.retain(|a| a != "--allow-degraded");
    let mut required: Vec<String> = Vec::new();
    while let Some(i) = args.iter().position(|a| a == "--require") {
        if i + 1 >= args.len() {
            die("--require needs a metric name");
        }
        required.push(args.remove(i + 1));
        args.remove(i);
    }
    let (before_path, after_path) = match (args.first(), args.get(1)) {
        (Some(b), Some(a)) => (b.as_str(), a.as_str()),
        _ => die("usage: compare_runs <before.json> <after.json> [tolerance] [--allow-degraded] \
             [--require <metric>]... | --demo"),
    };
    let tolerance: f64 = match args.get(2) {
        Some(t) => t.parse().unwrap_or_else(|_| die(&format!("bad tolerance {t:?}"))),
        None => 0.02,
    };
    let before = load(before_path);
    let after = load(after_path);
    for (path, report) in [(before_path, &before), (after_path, &after)] {
        if report.is_degraded() {
            eprintln!("{path} is degraded:");
            for failure in &report.failures {
                eprintln!("  {failure}");
            }
            if !allow_degraded {
                eprintln!("refusing to compare (pass --allow-degraded to override)");
                return ExitCode::from(EXIT_DEGRADED);
            }
        }
    }
    if before.experiment != after.experiment {
        eprintln!(
            "warning: comparing different experiments ({} vs {})",
            before.experiment, after.experiment
        );
    }
    println!(
        "comparing {} ({}) -> {} ({}), tolerance {:.1}%\n",
        before_path,
        before.experiment,
        after_path,
        after.experiment,
        100.0 * tolerance
    );
    let missing_required: Vec<&str> = required
        .iter()
        .map(String::as_str)
        .filter(|name| [&before, &after].iter().any(|r| !r.metrics.iter().any(|m| m.name == *name)))
        .collect();
    if !missing_required.is_empty() {
        for name in &missing_required {
            eprintln!("required metric {name} is missing from a report");
        }
        // Print the ordinary diff for context, then fail as a regression:
        // a gated metric that vanished must not pass the gate.
        let _ = summarize(&compare_reports(&before, &after, tolerance), tolerance);
        return ExitCode::from(EXIT_REGRESSION);
    }
    summarize(&compare_reports(&before, &after, tolerance), tolerance)
}
