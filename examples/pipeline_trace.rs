//! Capture a per-instruction pipeline event trace from a workload run.
//!
//! Demonstrates the simulator's three trace sinks on the Clustalw kernel:
//!
//! 1. a **JSONL** trace of every committed instruction is written to
//!    `target/clustalw_trace.jsonl`, then *replayed* through the offline
//!    parser, which checks sequence continuity and per-instruction stamp
//!    monotonicity and must reproduce the run's committed-instruction
//!    count exactly;
//! 2. a **ring buffer** keeps only the last N instructions — the
//!    "what happened just before the anomaly" view — dumped symbolized;
//! 3. the same ring is rendered in the gem5-O3-pipeview-style text
//!    format via the streaming sink on a second run.
//!
//! Run with `cargo run --release --example pipeline_trace`.

use bioarch::apps::{App, Scale, Variant, Workload};
use power5_sim::trace::{replay_jsonl, JsonlSink, RingSink};
use power5_sim::{CoreConfig, Tracer};
use std::fs::File;
use std::io::BufReader;

fn main() {
    let workload = Workload::new(App::Clustalw, Scale::Test, 42);
    let cfg = CoreConfig::power5();

    // --- 1. JSONL trace, then replay ---------------------------------
    let path = "target/clustalw_trace.jsonl";
    std::fs::create_dir_all("target").expect("target dir");
    let sink = JsonlSink::new(Box::new(File::create(path).expect("create trace file")) as Box<_>);
    let (run, mut tracer) =
        workload.run_traced(Variant::Baseline, &cfg, Tracer::Jsonl(sink)).expect("traced run");
    assert!(run.validated);
    tracer.finish().expect("flush trace");
    println!(
        "traced Clustalw baseline: {} instructions, {} cycles -> {path}",
        run.counters.instructions, run.counters.cycles
    );

    let replay = replay_jsonl(BufReader::new(File::open(path).expect("reopen trace")))
        .expect("trace replays cleanly");
    println!(
        "replay: {} instructions, final commit cycle {}, {} stall cycles attributed",
        replay.instructions, replay.final_commit, replay.stall_cycles
    );
    assert_eq!(
        replay.instructions, run.counters.instructions,
        "replayed instruction count must match the run"
    );
    println!("replayed committed-instruction count matches the simulator's counters\n");

    // --- 2. Ring buffer: the last instructions before the end --------
    let (run, tracer) = workload
        .run_traced(Variant::Baseline, &cfg, Tracer::Ring(RingSink::new(12)))
        .expect("ring-traced run");
    assert!(run.validated);
    if let Some(ring) = tracer.ring() {
        // The per-PC symbol table isn't exposed by AppRun, so the dump
        // uses raw addresses here; Machine users can pass their SymbolMap.
        print!("{}", ring.dump(None));
    }
}
