//! Reproduce the paper's Section III analysis flow: find the exact
//! branches that wreck the pipeline.
//!
//! Runs the Clustalw baseline with per-PC branch profiling and prints the
//! top misprediction sites, mapped back to their functions — then shows
//! that after hand predication those sites are simply gone. Finally, the
//! same analysis is generalized from branches to *every* stall class: a
//! symbolized per-PC heatmap of the completion-stall breakdown.
//!
//! Run with `cargo run --release --example guilty_branches`.

use bioarch::apps::{App, Scale, Variant, Workload};
use power5_sim::CoreConfig;

fn main() {
    let workload = Workload::new(App::Clustalw, Scale::Test, 42);
    let cfg = CoreConfig::power5();

    let base = workload.run_with_branch_sites(Variant::Baseline, &cfg).expect("baseline runs");
    assert!(base.validated);

    let total_mispredicts: u64 = base.branch_sites.iter().map(|s| s.stats.mispredicted).sum();
    println!(
        "Clustalw baseline: {} conditional-branch sites, {} mispredictions total\n",
        base.branch_sites.len(),
        total_mispredicts
    );
    println!("top offenders:");
    println!(
        "{:>10}  {:14} {:>10} {:>8} {:>9}  share",
        "pc", "function", "executed", "taken%", "mispred%"
    );
    for site in base.branch_sites.iter().take(8) {
        let s = &site.stats;
        println!(
            "{:#10x}  {:14} {:>10} {:>7.1}% {:>8.1}%  {:>4.1}%",
            site.pc,
            site.function,
            s.executed,
            100.0 * s.taken as f64 / s.executed.max(1) as f64,
            100.0 * s.mispredicted as f64 / s.executed.max(1) as f64,
            100.0 * s.mispredicted as f64 / total_mispredicts.max(1) as f64,
        );
    }
    let kernel_share: u64 = base
        .branch_sites
        .iter()
        .filter(|s| s.function == "forward_pass")
        .map(|s| s.stats.mispredicted)
        .sum();
    println!(
        "\n{:.1}% of all mispredictions come from forward_pass — the paper's DP kernel.",
        100.0 * kernel_share as f64 / total_mispredicts.max(1) as f64
    );

    // After hand predication, the same analysis shows the sites removed.
    let hand = workload.run_with_branch_sites(Variant::HandMax, &cfg).expect("hand-max runs");
    let hand_mispredicts: u64 = hand.branch_sites.iter().map(|s| s.stats.mispredicted).sum();
    println!(
        "\nwith hand-inserted max: {} sites, {} mispredictions ({:.0}% eliminated), {} maxw/isel ops executed",
        hand.branch_sites.len(),
        hand_mispredicts,
        100.0 * (1.0 - hand_mispredicts as f64 / total_mispredicts.max(1) as f64),
        hand.counters.predicated_ops,
    );

    // Branches are only one stall class. The same per-PC attribution
    // extended to the full CPI stack shows where *all* the lost cycles
    // live, symbolized as function+offset.
    let sites = workload.run_with_stall_sites(Variant::Baseline, &cfg).expect("stall-site run");
    assert!(sites.validated);
    let attributed: u64 = sites.stall_sites.iter().map(|s| s.breakdown.total()).sum();
    println!(
        "\nall-stall-class heatmap ({} completion-stall cycles attributed to {} PCs):\n",
        attributed,
        sites.stall_sites.len()
    );
    print!("{}", sites.stall_heatmap);
}
