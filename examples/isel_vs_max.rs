//! The paper's core ISA question, end to end: what do `isel` and `max`
//! buy on a real dynamic-programming kernel?
//!
//! Compiles Clustalw's `forward_pass` workload in all six code variants,
//! shows the assembly difference at the kernel's hot statement, and runs
//! each variant on the simulated POWER5.
//!
//! Run with `cargo run --release --example isel_vs_max`.

use bioarch::apps::{App, Scale, Variant, Workload};
use kernelc::{compile, Options};
use power5_sim::CoreConfig;

fn main() {
    // First, the instruction-level view on a miniature max statement.
    let snippet = "
fn main(a: int, b: int) -> int {
    if (a < b) { a = b; }
    return a;
}
";
    println!("source:   if (a < b) {{ a = b; }}\n");
    for (name, options) in [
        ("baseline (compare-and-branch)", Options::baseline()),
        ("isel (cmp + select)", Options::compiler_isel()),
        ("max (single fused op)", Options::compiler_max()),
    ] {
        let compiled = compile(snippet, &options).expect("snippet compiles");
        println!("--- {name} ---");
        for line in compiled
            .asm
            .lines()
            .skip_while(|l| !l.starts_with("main:"))
            .filter(|l| !l.trim().is_empty())
            .take(10)
        {
            println!("{line}");
        }
        println!();
    }

    // Then the full Clustalw workload across every variant.
    let workload = Workload::new(App::Clustalw, Scale::Test, 7);
    let baseline = workload.run(Variant::Baseline, &CoreConfig::power5()).expect("baseline runs");
    println!(
        "Clustalw on the simulated POWER5 (baseline: {} cycles, IPC {:.2}):",
        baseline.counters.cycles,
        baseline.counters.ipc()
    );
    for variant in Variant::all() {
        let run = workload.run(variant, &CoreConfig::power5()).expect("variant runs");
        assert!(run.validated);
        let speedup = baseline.counters.cycles as f64 / run.counters.cycles as f64;
        println!(
            "    {:12}  {:>9} cycles  speedup {:+5.1}%  branches {:4.1}%  (converted {:2}, rejected {:2} hammocks)",
            variant.label(),
            run.counters.cycles,
            100.0 * (speedup - 1.0),
            100.0 * run.counters.branch_fraction(),
            run.converted_hammocks,
            run.rejected_hammocks,
        );
    }
    println!(
        "\nThe hand variants beat the compiler here because forward_pass keeps its\n\
         F-row in memory: the store inside `if (DD[j] < t) DD[j] = t;` defeats the\n\
         if-converter's aliasing analysis, exactly as the paper reports."
    );
}
