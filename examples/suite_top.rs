//! `top`-style live viewer (and CI checker) for a suite progress stream.
//!
//! A study run with a progress sink (`BIOARCH_PROGRESS=<path>` on the
//! bench harness, or `TelemetryHub::with_progress` in code) streams
//! JSONL job-lifecycle events and heartbeats while it runs. This tool
//! consumes that stream two ways:
//!
//! ```text
//! # Live: tail a stream another process is writing, render a status
//! # line per event, exit when suite_finished arrives (or the writer
//! # stalls past --idle-secs, default 30).
//! cargo run --example suite_top -- /tmp/progress.jsonl
//!
//! # CI: validate a completed stream — every line parses, seq is
//! # contiguous, elapsed_ms is monotone, every started job reached a
//! # terminal event — and print a summary. Exits non-zero on a
//! # malformed stream or fewer heartbeats than --min-heartbeats.
//! cargo run --example suite_top -- --check /tmp/progress.jsonl [--min-heartbeats <n>]
//! ```

use bioarch::json::Json;
use bioarch::telemetry::check_progress_stream;
use std::io::{Read, Seek, SeekFrom};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn die(msg: &str) -> ! {
    eprintln!("suite_top: {msg}");
    std::process::exit(1);
}

/// One rendered status line per event.
fn render_event(line: &str) -> Option<String> {
    let doc = Json::parse(line).ok()?;
    let event = doc.get("event").and_then(Json::as_str)?;
    let elapsed = doc.get("elapsed_ms").and_then(Json::as_f64).unwrap_or(0.0) / 1e3;
    let job = doc.get("job").and_then(Json::as_str).unwrap_or("-");
    let detail = match event {
        "suite_started" => format!(
            "heartbeat {}ms, profiler period {}",
            doc.get("heartbeat_ms").and_then(Json::as_f64).unwrap_or(0.0),
            doc.get("profiler_period").and_then(Json::as_f64).unwrap_or(0.0),
        ),
        "heartbeat" => format!(
            "{} started, {} done",
            doc.get("started").and_then(Json::as_f64).unwrap_or(0.0),
            doc.get("done").and_then(Json::as_f64).unwrap_or(0.0),
        ),
        "job_started" => job.to_string(),
        "job_retired" => format!(
            "{job} ({} insns, {:.1} ms, attempt {})",
            doc.get("instructions").and_then(Json::as_f64).unwrap_or(0.0),
            doc.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
            doc.get("attempts").and_then(Json::as_f64).unwrap_or(1.0),
        ),
        "job_retried" | "job_quarantined" => {
            format!("{job} ({})", doc.get("class").and_then(Json::as_str).unwrap_or("?"),)
        }
        "job_resumed" => {
            format!("{job} (attempt {})", doc.get("attempt").and_then(Json::as_f64).unwrap_or(0.0),)
        }
        "metrics" => match doc.get("counters") {
            Some(Json::Obj(pairs)) => format!("{} host counter(s)", pairs.len()),
            _ => "no counters".to_string(),
        },
        "suite_finished" => format!(
            "{} retired, {} quarantined, {} retries",
            doc.get("retired").and_then(Json::as_f64).unwrap_or(0.0),
            doc.get("quarantined").and_then(Json::as_f64).unwrap_or(0.0),
            doc.get("retries").and_then(Json::as_f64).unwrap_or(0.0),
        ),
        _ => String::new(),
    };
    Some(format!("[{elapsed:8.3}s] {event:<16} {detail}"))
}

/// Tail `path` until `suite_finished` (or the stream goes idle).
fn live(path: &str, idle_secs: u64) -> ExitCode {
    let mut file =
        std::fs::File::open(path).unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
    let mut pos = 0u64;
    let mut pending = String::new();
    let mut last_progress = Instant::now();
    loop {
        file.seek(SeekFrom::Start(pos)).unwrap_or_else(|e| die(&format!("seek: {e}")));
        let mut chunk = String::new();
        let n =
            file.read_to_string(&mut chunk).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
        pos += n as u64;
        if n > 0 {
            last_progress = Instant::now();
            pending.push_str(&chunk);
            // Render every complete line; keep a trailing partial line.
            while let Some(nl) = pending.find('\n') {
                let line: String = pending.drain(..=nl).collect();
                let line = line.trim_end();
                if line.is_empty() {
                    continue;
                }
                match render_event(line) {
                    Some(text) => println!("{text}"),
                    None => println!("[unparsed] {line}"),
                }
                if line.contains("\"event\":\"suite_finished\"") {
                    return ExitCode::SUCCESS;
                }
            }
        } else {
            if last_progress.elapsed() > Duration::from_secs(idle_secs) {
                eprintln!("suite_top: stream idle for {idle_secs}s without suite_finished");
                return ExitCode::from(2);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

/// Subscribe to a distributed campaign server and print every retired
/// result as it streams in, until `campaign_done`.
fn subscribe(addr: &str) -> ExitCode {
    use bioarch::campaign::remote::{Frame, FramedStream, Role};
    let stream = std::net::TcpStream::connect(addr)
        .unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
    let mut fs = FramedStream::new(stream);
    fs.set_deadlines(Some(30_000), Some(5_000)).unwrap_or_else(|e| die(&format!("deadlines: {e}")));
    fs.send(&Frame::Hello { role: Role::Subscriber, worker: 0 })
        .unwrap_or_else(|e| die(&format!("hello: {e}")));
    match fs.recv() {
        Ok(Frame::HelloAck { .. }) => {}
        other => die(&format!("expected hello_ack, got {other:?}")),
    }
    loop {
        match fs.recv() {
            Ok(Frame::Result { label, report, .. }) => {
                let degraded = report.contains("\"degraded\":true");
                println!("result  {label}{}", if degraded { "  [degraded]" } else { "" });
            }
            Ok(Frame::CampaignDone { completed, quarantined }) => {
                println!("campaign done: {completed} completed, {quarantined} quarantined");
                return ExitCode::SUCCESS;
            }
            Ok(other) => die(&format!("unexpected frame {other:?}")),
            Err(e) => die(&format!("stream: {e}")),
        }
    }
}

/// Validate a completed stream and print a one-screen summary.
fn check(path: &str, min_heartbeats: u64, allow_truncated: bool, stall_factor: f64) -> ExitCode {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let stats = match check_progress_stream(&text) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("suite_top: malformed progress stream: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "progress stream OK: {} events, {} heartbeats (interval {} ms, max gap {:.0} ms)",
        stats.events, stats.heartbeats, stats.heartbeat_ms, stats.max_gap_ms
    );
    println!(
        "jobs: {} started, {} retired, {} quarantined; {} retries, {} resumes; finished: {}",
        stats.jobs_started,
        stats.jobs_retired,
        stats.jobs_quarantined,
        stats.retries,
        stats.resumes,
        stats.finished
    );
    if !stats.host_counters.is_empty() {
        // Surface every counter the stream carried, verbatim — names the
        // checker has never heard of (new fusion rates, cache counters)
        // are printed, not silently dropped.
        println!("host counters:");
        for (name, value) in &stats.host_counters {
            println!("  {name} = {value}");
        }
    }
    let counter = |n: &str| stats.host_counters.iter().find(|(name, _)| name == n).map(|(_, v)| *v);
    if let Some(gangs) = counter("lanes.gang_blocks") {
        // One-line lane-backend digest alongside the fusion.* counters
        // above: how wide the gangs ran and why lanes dropped out.
        println!(
            "lanes: {gangs} gang block(s), occupancy {:.1}%, exits: divergence {} halt {} fault \
             {} smc {} cut {} refetch {}",
            counter("lanes.occupancy_permille").unwrap_or(0.0) / 10.0,
            counter("lanes.exit_divergence").unwrap_or(0.0),
            counter("lanes.exit_halt").unwrap_or(0.0),
            counter("lanes.exit_fault").unwrap_or(0.0),
            counter("lanes.exit_smc").unwrap_or(0.0),
            counter("lanes.exit_cut").unwrap_or(0.0),
            counter("lanes.exit_refetch").unwrap_or(0.0),
        );
    }
    if stats.batch_retires > 0 {
        // Batch-retire bursts are quiet-then-burst progress from a
        // lane-batch worker; their forgiven gaps are reported here and
        // excluded from the stall verdict.
        println!(
            "diagnostic: {} batch-retire burst(s), largest forgiven gap {:.0} ms",
            stats.batch_retires, stats.batch_gap_ms
        );
    }
    if stats.truncated_tail {
        // A torn final line is the signature of a writer killed
        // mid-write — diagnose it explicitly instead of erroring.
        println!("diagnostic: truncated_tail — final line torn (writer killed mid-write)");
    }
    if stats.stalled_with(stall_factor) {
        // Distinct from truncated_tail: the writer kept the file intact
        // but went silent far past its own heartbeat promise.
        eprintln!(
            "suite_top: stalled — max gap {:.0} ms exceeds {stall_factor}x heartbeat ({} ms)",
            stats.max_gap_ms, stats.heartbeat_ms
        );
        return ExitCode::from(2);
    }
    if !stats.finished {
        if allow_truncated && stats.truncated_tail {
            println!("suite_top: accepting unfinished stream (--allow-truncated)");
            return ExitCode::SUCCESS;
        }
        eprintln!("suite_top: stream never reached suite_finished");
        return ExitCode::from(2);
    }
    if stats.heartbeats < min_heartbeats {
        eprintln!("suite_top: {} heartbeat(s), need at least {min_heartbeats}", stats.heartbeats);
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut min_heartbeats = 0u64;
    if let Some(i) = args.iter().position(|a| a == "--min-heartbeats") {
        if i + 1 >= args.len() {
            die("--min-heartbeats needs a count");
        }
        let v = args.remove(i + 1);
        min_heartbeats = v.parse().unwrap_or_else(|_| die(&format!("bad count {v:?}")));
        args.remove(i);
    }
    let mut idle_secs = 30u64;
    if let Some(i) = args.iter().position(|a| a == "--idle-secs") {
        if i + 1 >= args.len() {
            die("--idle-secs needs a count");
        }
        let v = args.remove(i + 1);
        idle_secs = v.parse().unwrap_or_else(|_| die(&format!("bad count {v:?}")));
        args.remove(i);
    }
    let mut stall_factor = bioarch::telemetry::DEFAULT_STALL_FACTOR;
    if let Some(i) = args.iter().position(|a| a == "--stall-factor") {
        if i + 1 >= args.len() {
            die("--stall-factor needs a multiple");
        }
        let v = args.remove(i + 1);
        stall_factor = v.parse().unwrap_or_else(|_| die(&format!("bad factor {v:?}")));
        args.remove(i);
    }
    if let Some(i) = args.iter().position(|a| a == "--subscribe") {
        if i + 1 >= args.len() {
            die("--subscribe needs host:port");
        }
        return subscribe(&args[i + 1]);
    }
    let checking = args.iter().any(|a| a == "--check");
    args.retain(|a| a != "--check");
    let allow_truncated = args.iter().any(|a| a == "--allow-truncated");
    args.retain(|a| a != "--allow-truncated");
    let Some(path) = args.first() else {
        die(concat!(
            "usage: suite_top [--check [--min-heartbeats <n>] [--allow-truncated] ",
            "[--stall-factor <x>]] [--idle-secs <n>] [--subscribe <host:port>] <progress.jsonl>"
        ));
    };
    if checking {
        check(path, min_heartbeats, allow_truncated, stall_factor)
    } else {
        live(path, idle_secs)
    }
}
