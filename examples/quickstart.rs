//! Quickstart: the whole stack in one page.
//!
//! 1. Write a kernel in the kernel language.
//! 2. Compile it twice — stock POWER5 vs. the paper's `max` extension.
//! 3. Run both on the cycle-level POWER5 model and compare.
//!
//! Run with `cargo run --release --example quickstart`.

use kernelc::{compile, Options};
use power5_sim::{CoreConfig, Machine};

const KERNEL: &str = "
// Sum of |v - 16384| over 4096 pseudo-random values: the sign of d flips
// unpredictably, so the abs-via-max hammock mispredicts about half the
// time — a tiny stand-in for the value-dependent max() chains in the
// bioinformatics DP kernels.
fn main(seed: int) -> int {
    let acc = 0;
    let x = seed;
    let i = 0;
    while (i < 4096) {
        x = x * 1103515245 + 12345;
        let v = (x >> 16) & 32767;
        let d = v - 16384;
        let nd = 16384 - v;
        if (d < nd) { d = nd; }   // the hard-to-predict branch
        acc = acc + d;
        i = i + 1;
    }
    return acc;
}
";

fn run(options: &Options) -> (u32, power5_sim::Counters) {
    let compiled = compile(KERNEL, options).expect("kernel compiles");
    let program = ppc_asm::assemble(&compiled.asm, 0x1000).expect("assembles");
    let mut machine = Machine::new(
        CoreConfig::power5(),
        &program.bytes,
        0x1000,
        program.symbols["__start"],
        1 << 20,
    );
    machine.cpu_mut().gpr[1] = 0xF_0000; // stack
    machine.cpu_mut().gpr[3] = 1; // seed argument
    machine.run_timed(u64::MAX).expect("runs to completion");
    (machine.cpu().gpr[3], machine.counters())
}

fn main() {
    let (result_base, base) = run(&Options::baseline());
    let (result_max, with_max) = run(&Options::compiler_max());
    assert_eq!(result_base, result_max, "predication must not change results");

    println!("kernel result: {result_base}");
    println!(
        "baseline POWER5 : {:>9} cycles, IPC {:.2}, {} branch mispredictions",
        base.cycles,
        base.ipc(),
        base.branches.direction_mispredictions
    );
    println!(
        "with maxw       : {:>9} cycles, IPC {:.2}, {} branch mispredictions",
        with_max.cycles,
        with_max.ipc(),
        with_max.branches.direction_mispredictions
    );
    println!(
        "speedup from the max instruction: {:+.1}%",
        100.0 * (base.cycles as f64 / with_max.cycles as f64 - 1.0)
    );
}
