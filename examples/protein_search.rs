//! Protein database search, host-side and simulated.
//!
//! Generates a synthetic protein database with planted homologs, searches
//! it three ways with the golden-model algorithms (rigorous
//! Smith-Waterman, seeded BLAST, profile-HMM scan), then runs the same
//! Smith-Waterman search *inside the simulated POWER5* and shows that the
//! scores match bit-for-bit while reporting the microarchitectural cost.
//!
//! Run with `cargo run --release --example protein_search`.

use bioalign::blast::{blastp, BlastParams};
use bioalign::hmmsearch::{hmmpfam, viterbi_score};
use bioalign::ssearch::search;
use bioarch::apps::{App, Scale, Variant, Workload};
use bioseq::generate::SeqGen;
use bioseq::hmm::ProfileHmm;
use bioseq::{Alphabet, GapPenalties, SubstitutionMatrix};
use power5_sim::CoreConfig;

fn main() {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::new(10, 2);
    let mut generator = SeqGen::new(Alphabet::Protein, 2024);

    // A query and a database with four hidden relatives.
    let query = generator.uniform(120);
    let db = generator.database(&query, 40, 4, 80..160);
    println!("query: {} residues; database: {} sequences", query.len(), db.len());

    // 1. Rigorous Smith-Waterman scan (Fasta's ssearch).
    let results = search(&query, &db, &matrix, gaps, 60);
    println!("\nssearch: top hits (score >= 60)");
    for hit in results.hits.iter().take(5) {
        println!("    db[{:2}]  score {}", hit.db_index, hit.score);
    }

    // 2. Seeded heuristic search (blastp). Same relatives, far fewer cells.
    let (hits, stats) = blastp(&query, &db, &matrix, &BlastParams::default());
    println!(
        "\nblastp: {} hits from {} word hits, {} gapped extensions ({} DP cells vs {} for ssearch)",
        hits.len(),
        stats.word_hits,
        stats.gapped_extensions,
        stats.gapped_cells,
        results.cells
    );
    for hit in hits.iter().take(5) {
        println!("    db[{:2}]  score {}", hit.db_index, hit.score);
    }

    // 3. Profile-HMM scan (hmmpfam) against a model family.
    let models: Vec<ProfileHmm> = (0..6).map(|k| ProfileHmm::random(40, 900 + k)).collect();
    let probe = models[2].consensus();
    let ranked = hmmpfam(&models, &probe, i32::MIN);
    println!("\nhmmpfam: best model for the probe sequence is #{}", ranked[0].hmm_index);
    println!("    viterbi score {} (runner-up {})", ranked[0].score, ranked[1].score);
    assert_eq!(ranked[0].score, viterbi_score(&models[2], &probe));

    // 4. The same ssearch workload inside the simulated POWER5.
    let workload = Workload::new(App::Fasta, Scale::Test, 2024);
    let run = workload.run(Variant::Baseline, &CoreConfig::power5()).expect("simulation runs");
    assert!(run.validated, "simulated scores must equal the host scores");
    println!(
        "\nsimulated POWER5 ssearch: {} instructions, {} cycles, IPC {:.2} — all scores validated",
        run.counters.instructions,
        run.counters.cycles,
        run.counters.ipc()
    );
    println!(
        "    branch mispredictions: {} ({:.1}% of conditional branches)",
        run.counters.branches.direction_mispredictions,
        100.0 * run.counters.branches.misprediction_rate()
    );
}
