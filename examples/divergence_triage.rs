//! Divergence triage walkthrough: catch a semantic fast-path bug with
//! the golden-model oracle, shrink it, and replay the minimal repro.
//!
//! The default mode tells the whole story end to end:
//!
//! 1. build the Clustalw workload's hand-`isel` variant;
//! 2. inject a **wrong-`isel` decode bug** into the fast interpreter's
//!    pre-decoded code table (the condition bit is flipped, so `isel`
//!    selects the wrong operand — memory is untouched, exactly the kind
//!    of fast-path defect the oracle exists to catch);
//! 3. run under `LockstepMode::Sampled` until the oracle flags the first
//!    mismatching architectural field;
//! 4. shrink the divergence with checkpoint bisection to a window of
//!    at most 64 instructions;
//! 5. serialize the minimal repro as a `bioarch-divergence/v1` JSON
//!    document, parse it back, and replay it on a **fresh** machine to
//!    prove the repro is self-contained.
//!
//! ```text
//! cargo run --release --example divergence_triage -- [--seed S] [--out FILE]
//! cargo run --release --example divergence_triage -- --smoke [--seed S]
//! ```
//!
//! `--out FILE` additionally writes the repro document to `FILE`.
//! `--smoke` instead runs every app's baseline and combination binaries
//! for a short sampled-lockstep window with *no* injected bug and fails
//! on any divergence — the CI guard that the fast interpreter agrees
//! with the golden model.
//!
//! Exit codes: 0 on success, 1 when triage or the smoke check fails,
//! 2 on usage errors.

use bioarch::apps::{App, Scale, Variant, Workload};
use bioarch::checkpoint::{self, DivergenceRepro};
use power5_sim::machine::Machine;
use power5_sim::{shrink_divergence, CoreConfig, LockstepMode, StopReason};
use ppc_isa::{CrBit, Instruction};
use std::process::ExitCode;

fn die(msg: &str) -> ! {
    eprintln!("divergence_triage: {msg}");
    std::process::exit(2);
}

/// Every `isel` site in the loaded code region, paired with the
/// wrong-condition variant used as the injected defect (the condition
/// bit is flipped within its CR field: lt↔gt, eq↔so).
fn isel_bugs(m: &Machine, code_base: u32, code_len: u32) -> Vec<(u32, Instruction)> {
    let mut bugs = Vec::new();
    for idx in 0..code_len / 4 {
        let pc = code_base + idx * 4;
        let Ok(word) = m.mem().load_u32(pc) else { continue };
        if let Ok(Instruction::Isel { rt, ra, rb, bc }) = ppc_isa::decode(word) {
            bugs.push((pc, Instruction::Isel { rt, ra, rb, bc: CrBit(bc.0 ^ 1) }));
        }
    }
    bugs
}

fn triage(seed: u64, out: Option<&str>) -> Result<(), String> {
    let config = CoreConfig::power5();
    let app = App::Clustalw;
    let wl = Workload::new(app, Scale::Test, seed);
    let mut prepared =
        wl.prepare(Variant::HandIsel, &config).map_err(|e| format!("{app}: build failed: {e}"))?;
    let bugs = isel_bugs(&prepared.machine, prepared.code_base, prepared.code_len);
    if bugs.is_empty() {
        return Err(format!("{app} hand-isel image contains no isel instructions"));
    }
    let start = prepared.machine.checkpoint();

    // The injection and its re-application after every checkpoint rewind
    // (restoring rebuilds the decode table from memory, silently
    // repairing the bug — the shrinker calls this closure to keep the
    // defect alive across probes).
    let mut reapply = |m: &mut Machine| {
        for &(pc, insn) in &bugs {
            m.inject_decode_bug(pc, insn);
        }
    };
    reapply(&mut prepared.machine);
    println!(
        "injected wrong-isel decode bug at {} site(s) in the {app} hand-isel image",
        bugs.len()
    );

    // Detection: sampled lockstep, the cheap always-on production mode.
    prepared.machine.set_lockstep(LockstepMode::Sampled { period: 10, seed });
    let r = prepared
        .machine
        .run_functional(u64::MAX)
        .map_err(|t| format!("diverging run trapped instead: {t}"))?;
    if !matches!(r.stop, StopReason::Diverged) {
        return Err(format!("oracle failed to catch the injected bug (stop: {:?})", r.stop));
    }
    let detected =
        prepared.machine.take_divergence().ok_or("diverged stop without a divergence record")?;
    println!("\nsampled lockstep caught the bug:\n{detected}\n");

    // Shrink: checkpoint bisection down to a <= 64 instruction window.
    let shrunk =
        shrink_divergence(&mut prepared.machine, &start, &mut reapply, detected.instruction, 64)?;
    println!(
        "shrunk to a {}-instruction window starting at instruction {} (first divergent: {})",
        shrunk.span, shrunk.start.insns_total, shrunk.first_divergent
    );
    if shrunk.span > 64 {
        return Err(format!("shrinker left a window of {} > 64 instructions", shrunk.span));
    }

    // Freeze the minimal repro to its JSON schema and thaw it again.
    let repro = DivergenceRepro {
        seed,
        config_digest: shrunk.start.config_digest,
        start: shrunk.start,
        span: shrunk.span,
        first_divergent: shrunk.first_divergent,
        divergence: shrunk.divergence,
    };
    let text = checkpoint::render_divergence(&repro);
    println!("repro document: {} bytes of bioarch-divergence/v1 JSON", text.len());
    if let Some(path) = out {
        std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("repro written to {path}");
    }
    let parsed = checkpoint::parse_divergence(&text)?;

    // Replay on a fresh machine: restore, re-apply the defect, run the
    // span under full lockstep, and demand the same divergence.
    let mut fresh = wl
        .prepare(Variant::HandIsel, &config)
        .map_err(|e| format!("{app}: rebuild failed: {e}"))?;
    fresh.machine.restore(&parsed.start).map_err(|e| format!("restore failed: {e}"))?;
    reapply(&mut fresh.machine);
    fresh.machine.set_lockstep(LockstepMode::Full);
    let rr = fresh
        .machine
        .run_functional(parsed.span)
        .map_err(|t| format!("replay trapped instead: {t}"))?;
    if !matches!(rr.stop, StopReason::Diverged) {
        return Err(format!("replay did not reproduce the divergence (stop: {:?})", rr.stop));
    }
    let replayed = fresh.machine.take_divergence().ok_or("replay recorded no divergence")?;
    if replayed.pc != parsed.divergence.pc
        || replayed.field != parsed.divergence.field
        || replayed.instruction != parsed.first_divergent
    {
        return Err(format!(
            "replay found a different divergence:\n{replayed}\nexpected:\n{}",
            parsed.divergence
        ));
    }
    println!("\nreplay on a fresh machine reproduced the divergence:\n{replayed}");
    Ok(())
}

/// Adjacent `cmp`+conditional-branch pairs in the loaded image — the
/// sites where the fused tier forms a `CmpBc` superinstruction. Returns
/// the pc of each pair's *branch*, which is what
/// `Machine::inject_fusion_bug` names.
fn cmp_branch_sites(m: &Machine, code_base: u32, code_len: u32) -> Vec<u32> {
    let mut sites = Vec::new();
    for idx in 0..code_len / 4 {
        let pc = code_base + idx * 4;
        let (Ok(w1), Ok(w2)) = (m.mem().load_u32(pc), m.mem().load_u32(pc + 4)) else { continue };
        let (Ok(first), Ok(second)) = (ppc_isa::decode(w1), ppc_isa::decode(w2)) else { continue };
        let is_cmp = matches!(
            first,
            Instruction::Cmpwi { .. }
                | Instruction::Cmpw { .. }
                | Instruction::Cmplwi { .. }
                | Instruction::Cmplw { .. }
        );
        if is_cmp && matches!(second, Instruction::Bc { .. }) {
            sites.push(pc + 4);
        }
    }
    sites
}

/// Second `--smoke` leg: a deliberately broken fusion rule (a sabotaged
/// `CmpBc` pair with its taken/fall-through targets swapped) must be
/// caught by the sampled oracle, shrink to a ≤64-instruction window,
/// and replay on a fresh machine — proving divergence triage covers the
/// fused tier, not just the scalar decode table.
fn fusion_bug_smoke(seed: u64) -> Result<(), String> {
    let config = CoreConfig::power5();
    let app = App::Clustalw;
    let wl = Workload::new(app, Scale::Test, seed);
    let mut prepared =
        wl.prepare(Variant::Baseline, &config).map_err(|e| format!("{app}: build failed: {e}"))?;
    let sites = cmp_branch_sites(&prepared.machine, prepared.code_base, prepared.code_len);
    if sites.is_empty() {
        return Err(format!("{app} image contains no cmp+branch pair to sabotage"));
    }
    let start = prepared.machine.checkpoint();

    // Sabotage sites one at a time until the oracle trips: not every
    // pair is on a hot path, and a swap only shows once the branch
    // actually executes under a due check.
    let mut caught = None;
    for &site in &sites {
        prepared.machine.restore(&start).map_err(|e| format!("restore failed: {e}"))?;
        if !prepared.machine.inject_fusion_bug(site) {
            continue;
        }
        prepared.machine.set_lockstep(LockstepMode::Sampled { period: 10, seed });
        let r = prepared
            .machine
            .run_functional(5_000_000)
            .map_err(|t| format!("sabotaged run trapped instead: {t}"))?;
        if matches!(r.stop, StopReason::Diverged) {
            let d = prepared
                .machine
                .take_divergence()
                .ok_or("diverged stop without a divergence record")?;
            caught = Some((site, d));
            break;
        }
    }
    let Some((site, detected)) = caught else {
        return Err("no sabotaged cmp+branch pair produced a divergence".into());
    };
    println!("  fusion sabotage at pc {site:#010x} caught by the sampled oracle:");
    println!("    {} at instruction {}", detected.field, detected.instruction);

    // `restore` silently repairs the sabotage (the fused cache is reset
    // against the pristine table), so the shrinker's reapply hook must
    // re-inject after every rewind.
    let mut reapply = |m: &mut Machine| {
        m.inject_fusion_bug(site);
    };
    let shrunk =
        shrink_divergence(&mut prepared.machine, &start, &mut reapply, detected.instruction, 64)?;
    if shrunk.span > 64 {
        return Err(format!("shrinker left a window of {} > 64 instructions", shrunk.span));
    }
    println!(
        "    shrunk to a {}-instruction window starting at instruction {}",
        shrunk.span, shrunk.start.insns_total
    );

    // Replay on a fresh machine from the shrunk checkpoint.
    let mut fresh = wl
        .prepare(Variant::Baseline, &config)
        .map_err(|e| format!("{app}: rebuild failed: {e}"))?;
    fresh.machine.restore(&shrunk.start).map_err(|e| format!("replay restore failed: {e}"))?;
    fresh.machine.inject_fusion_bug(site);
    fresh.machine.set_lockstep(LockstepMode::Full);
    let rr = fresh
        .machine
        .run_functional(shrunk.span)
        .map_err(|t| format!("replay trapped instead: {t}"))?;
    if !matches!(rr.stop, StopReason::Diverged) {
        return Err(format!("replay did not reproduce the fusion bug (stop: {:?})", rr.stop));
    }
    let replayed = fresh.machine.take_divergence().ok_or("replay recorded no divergence")?;
    if replayed.pc != shrunk.divergence.pc || replayed.field != shrunk.divergence.field {
        return Err(format!(
            "replay found a different divergence:\n{replayed}\nexpected:\n{}",
            shrunk.divergence
        ));
    }
    println!("    replayed on a fresh machine: same pc, same field");
    Ok(())
}

fn smoke(seed: u64) -> Result<(), String> {
    let config = CoreConfig::power5();
    const WINDOW: u64 = 200_000;
    for app in App::all() {
        let wl = Workload::new(app, Scale::Test, seed);
        for variant in [Variant::Baseline, Variant::Combination] {
            let mut prepared = wl
                .prepare(variant, &config)
                .map_err(|e| format!("{app} {variant:?}: build failed: {e}"))?;
            prepared.machine.set_lockstep(LockstepMode::Sampled { period: 25, seed });
            let r = prepared
                .machine
                .run_functional(WINDOW)
                .map_err(|t| format!("{app} {variant:?}: trapped: {t}"))?;
            if matches!(r.stop, StopReason::Diverged) {
                let detail = prepared
                    .machine
                    .take_divergence()
                    .map_or_else(|| "no record".to_string(), |d| d.to_string());
                return Err(format!("{app} {variant:?}: lockstep divergence:\n{detail}"));
            }
            println!("  {:9} {variant:?}: {} instructions, no divergence", app.name(), r.executed);
        }
    }
    println!("fusion-bug triage: sabotaged CmpBc pair must be caught, shrunk, and replayed");
    fusion_bug_smoke(seed)
}

fn main() -> ExitCode {
    let mut seed = 42u64;
    let mut run_smoke = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => run_smoke = true,
            "--seed" => {
                let v = args.next().unwrap_or_else(|| die("--seed needs a value"));
                seed = v.parse().unwrap_or_else(|_| die(&format!("bad seed {v:?}")));
            }
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            other => {
                die(&format!("unknown argument {other:?} (try --smoke / --seed S / --out FILE)"))
            }
        }
    }
    let result = if run_smoke {
        println!("lockstep smoke: sampled oracle over every app, no injected bugs");
        smoke(seed)
    } else {
        triage(seed, out.as_deref())
    };
    match result {
        Ok(()) => {
            println!("\nOK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("divergence_triage: {e}");
            ExitCode::FAILURE
        }
    }
}
