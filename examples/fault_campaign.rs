//! Seeded fault-injection campaign over the four DP kernels.
//!
//! For each application the campaign builds the baseline workload once,
//! checkpoints the pristine machine, then for every fault in a seeded
//! [`FaultPlan`] restores the checkpoint, runs to the fault's injection
//! point, applies the corruption, and runs to completion under watchdog
//! budgets. Every fault must be classified:
//!
//! * **detected** — the run trapped (typed trap with PC and cycle), or a
//!   watchdog budget cut off a runaway (counted separately as *timeout*
//!   but treated as detected);
//! * **masked** — the run completed and the output matches the golden
//!   model;
//! * **contained** — the run completed with wrong output, but the
//!   counter/stall-partition invariants still hold;
//! * **uncontained** — anything else: an invariant violation (a panic or
//!   hang would abort the process and also fail the campaign).
//!
//! ```text
//! cargo run --release --example fault_campaign -- [--faults N] [--seed S] \
//!     [--lockstep MODE] [--lanes N [--verify]]
//! ```
//!
//! Defaults: 1000 faults total (split across the four apps), seed 7,
//! lockstep off. `--lockstep MODE` runs every faulty simulation under the
//! golden-model oracle — `full`, or a number N for sampled checking with
//! period N. Faults corrupt memory and the repaired decode cache
//! consistently, so the oracle must stay silent; any divergence is a
//! harness bug and fails the campaign (exit 2).
//!
//! `--lanes N` switches to the lane backend (DESIGN §18): instead of
//! re-running the shared clean prefix from the pristine checkpoint for
//! every fault, a [`Trunk`] advances ONE machine monotonically along
//! the clean trajectory (faults sorted by injection point, dispatched
//! in batches of N) and forks a checkpoint per fault — each faulty leg
//! is a lane diverging from the trunk, finished on the ordinary scalar
//! path. Per-fault outcomes and the final table are byte-identical to
//! the scalar campaign; `--verify` proves it by running both backends
//! and comparing outcome-by-outcome and table-byte-for-byte, printing
//! the wall-clock speedup. With `--lockstep`, the oracle attaches to
//! every forked (diverged) leg at its fork point — the clean trunk
//! stays unchecked, which is where the speedup comes from.
//!
//! Exits with status 1 when any fault is uncontained, so CI can gate on
//! the containment contract.

use bioarch::apps::{App, Scale, Variant, Workload};
use bioarch::report::Table;
use power5_sim::fault::{check_invariants, check_stall_partition, FaultKind, FaultPlan};
use power5_sim::machine::{Checkpoint, Machine};
use power5_sim::{
    CoreConfig, FaultSpec, InjectionWindow, LockstepMode, StopReason, Trunk, Watchdog,
};
use std::process::ExitCode;
use std::time::Instant;

/// What happened to one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Detected,
    Timeout,
    Masked,
    Contained,
    Uncontained,
}

#[derive(Default, Clone, Copy)]
struct Tally {
    injected: u64,
    detected: u64,
    timeout: u64,
    masked: u64,
    contained: u64,
    uncontained: u64,
}

impl Tally {
    fn record(&mut self, outcome: Outcome) {
        self.injected += 1;
        match outcome {
            Outcome::Detected => self.detected += 1,
            Outcome::Timeout => self.timeout += 1,
            Outcome::Masked => self.masked += 1,
            Outcome::Contained => self.contained += 1,
            Outcome::Uncontained => self.uncontained += 1,
        }
    }

    fn add(&mut self, other: &Tally) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.timeout += other.timeout;
        self.masked += other.masked;
        self.contained += other.contained;
        self.uncontained += other.uncontained;
    }
}

/// One application's campaign result: the tally plus the per-fault
/// outcome vector in plan order (what `--verify` compares across
/// backends).
struct AppCampaign {
    tally: Tally,
    outcomes: Vec<Outcome>,
}

fn die(msg: &str) -> ! {
    eprintln!("fault_campaign: {msg}");
    std::process::exit(2);
}

/// Classify one corrupted machine by running it to completion (or
/// cut-off) — the shared phase-2 of both the scalar and lane backends,
/// so their outcomes cannot drift apart.
fn classify(
    m: &mut Machine,
    fault: &FaultSpec,
    out_addr: u32,
    out_len: usize,
    golden: &[i32],
) -> Result<Outcome, String> {
    Ok(match m.run_timed(u64::MAX) {
        Err(_trap) => Outcome::Detected,
        Ok(r) => match r.stop {
            StopReason::Watchdog(_) => Outcome::Timeout,
            // A fault corrupts memory and the decode cache consistently,
            // so the oracle disagreeing with the fast path means the
            // harness itself is broken — fail the whole campaign.
            StopReason::Diverged => {
                return Err(divergence_message(m, "faulty run", fault));
            }
            StopReason::Budget | StopReason::Halted => {
                // The run finished: it must still satisfy the counter and
                // stall-partition invariants to count as contained.
                let counters = m.counters();
                let sites = m.stall_sites();
                if let Err(why) = check_invariants(&counters)
                    .and_then(|()| check_stall_partition(&counters.stalls, &sites))
                {
                    eprintln!("  uncontained {fault:?}: {why}");
                    Outcome::Uncontained
                } else {
                    match m.mem().read_i32s(out_addr, out_len) {
                        Ok(out) if out == golden => Outcome::Masked,
                        Ok(_) => Outcome::Contained,
                        // Output vector unreadable counts as detected-at-
                        // readout: the harness saw the corruption.
                        Err(_) => Outcome::Detected,
                    }
                }
            }
        },
    })
}

/// Run one fault against a restored pristine machine; see the module docs
/// for the classification contract.
#[allow(clippy::too_many_arguments)]
fn run_one(
    m: &mut Machine,
    pristine: &Checkpoint,
    fault: &FaultSpec,
    watchdog: Watchdog,
    lockstep: LockstepMode,
    out_addr: u32,
    out_len: usize,
    golden: &[i32],
) -> Result<Outcome, String> {
    m.restore(pristine).map_err(|e| format!("restore failed: {e}"))?;
    m.set_watchdog(watchdog);
    // Fresh checker per fault so the sampling schedule is per-run
    // deterministic (the checker state is not part of the checkpoint).
    m.set_lockstep(lockstep);

    // Phase 1: run cleanly to the injection point.
    let to_fault =
        m.run_timed(fault.at_instruction).map_err(|t| format!("clean prefix trapped: {t}"))?;
    if let StopReason::Watchdog(_) = to_fault.stop {
        return Err("clean prefix hit the watchdog".into());
    }
    if let StopReason::Diverged = to_fault.stop {
        return Err(divergence_message(m, "clean prefix", fault));
    }

    fault.apply(m);

    // Phase 2: run the corrupted machine to completion (or cut-off).
    classify(m, fault, out_addr, out_len, golden)
}

fn divergence_message(m: &mut Machine, phase: &str, fault: &FaultSpec) -> String {
    let detail =
        m.take_divergence().map_or_else(|| "no divergence record".to_string(), |d| d.to_string());
    format!("lockstep divergence in {phase} under fault {fault:?}:\n{detail}")
}

/// The per-app campaign preamble shared by both backends: build the
/// workload, checkpoint pristine, establish the golden output, the
/// watchdog budgets, and the injection plan.
struct Prepared {
    machine: Machine,
    pristine: Checkpoint,
    watchdog: Watchdog,
    plan: FaultPlan,
    out_addr: u32,
    out_len: usize,
    golden: Vec<i32>,
}

fn prepare_campaign(app: App, seed: u64, faults: usize) -> Result<Prepared, String> {
    let config = CoreConfig::power5();
    let wl = Workload::new(app, Scale::Test, seed);
    let mut prepared =
        wl.prepare(Variant::Baseline, &config).map_err(|e| format!("{app}: build failed: {e}"))?;
    prepared.machine.set_stall_site_profiling(true);
    let pristine = prepared.machine.checkpoint();

    // Clean reference run: establishes the injection window and the
    // watchdog budgets (generous multiples of the healthy run).
    let result = prepared
        .machine
        .run_timed(u64::MAX)
        .map_err(|t| format!("{app}: clean run trapped: {t}"))?;
    if !result.halted {
        return Err(format!("{app}: clean run did not halt"));
    }
    let clean_out = prepared
        .machine
        .mem()
        .read_i32s(prepared.out_addr, prepared.out_len)
        .map_err(|e| format!("{app}: cannot read clean output: {e}"))?;
    if clean_out != prepared.golden {
        return Err(format!("{app}: clean run does not match the golden model"));
    }
    let clean = prepared.machine.counters();
    let watchdog = Watchdog {
        max_cycles: Some(clean.cycles * 4 + 200_000),
        max_instructions: Some(clean.instructions * 3 + 50_000),
    };
    let window = InjectionWindow {
        code_base: prepared.code_base,
        code_len: prepared.code_len,
        data_base: prepared.data_base,
        data_len: prepared.data_len,
        max_instruction: clean.instructions,
    };

    let plan = FaultPlan::generate(seed ^ (app as u64).wrapping_mul(0x9E37_79B9), faults, &window);
    Ok(Prepared {
        machine: prepared.machine,
        pristine,
        watchdog,
        plan,
        out_addr: prepared.out_addr,
        out_len: prepared.out_len,
        golden: prepared.golden,
    })
}

/// Scalar backend: restore pristine and re-run the clean prefix for
/// every fault.
fn campaign(
    app: App,
    seed: u64,
    faults: usize,
    lockstep: LockstepMode,
) -> Result<AppCampaign, String> {
    let mut p = prepare_campaign(app, seed, faults)?;
    let mut tally = Tally::default();
    let mut outcomes = Vec::with_capacity(p.plan.faults.len());
    for fault in &p.plan.faults {
        let outcome = run_one(
            &mut p.machine,
            &p.pristine,
            fault,
            p.watchdog,
            lockstep,
            p.out_addr,
            p.out_len,
            &p.golden,
        )
        .map_err(|e| format!("{app}: {e}"))?;
        tally.record(outcome);
        outcomes.push(outcome);
    }
    Ok(AppCampaign { tally, outcomes })
}

/// Lane backend: one trunk machine advances the shared clean prefix
/// monotonically (faults sorted by injection point, dispatched in
/// batches of `lanes`); each fault forks a checkpoint, runs its faulty
/// leg as a diverged lane on the scalar path, and rejoins. Outcomes
/// land back in plan order, so the tally and `--verify` comparison are
/// order-independent of the trunk schedule.
fn campaign_lanes(
    app: App,
    seed: u64,
    faults: usize,
    lockstep: LockstepMode,
    lanes: usize,
) -> Result<AppCampaign, String> {
    let mut p = prepare_campaign(app, seed, faults)?;
    let mut outcomes = vec![Outcome::Uncontained; p.plan.faults.len()];
    let mut order: Vec<usize> = (0..p.plan.faults.len()).collect();
    order.sort_by_key(|&i| p.plan.faults[i].at_instruction);

    p.machine.restore(&p.pristine).map_err(|e| format!("{app}: restore failed: {e}"))?;
    p.machine.set_watchdog(p.watchdog);
    let mut trunk = Trunk::new(&mut p.machine);
    for batch in order.chunks(lanes.max(1)) {
        for &idx in batch {
            let fault = &p.plan.faults[idx];
            let to_fault = trunk
                .advance_to(fault.at_instruction)
                .map_err(|t| format!("{app}: clean prefix trapped: {t}"))?;
            if let StopReason::Watchdog(_) = to_fault.stop {
                return Err(format!("{app}: clean prefix hit the watchdog"));
            }
            let ck = trunk.fork();
            let m = trunk.machine();
            // Fresh checker per forked leg: with `--lockstep` the oracle
            // covers every diverged lane from its fork point on, while
            // the shared trunk stays unchecked.
            m.set_lockstep(lockstep);
            fault.apply(m);
            let outcome = classify(m, fault, p.out_addr, p.out_len, &p.golden)
                .map_err(|e| format!("{app}: {e}"))?;
            outcomes[idx] = outcome;
            trunk.rejoin(&ck).map_err(|e| format!("{app}: rejoin failed: {e}"))?;
            trunk.machine().set_lockstep(LockstepMode::Off);
        }
    }
    let mut tally = Tally::default();
    for &outcome in &outcomes {
        tally.record(outcome);
    }
    Ok(AppCampaign { tally, outcomes })
}

/// Render the per-app/TOTAL table both backends must agree on byte for
/// byte.
fn render_table(rows: &[(App, Tally)], total: &Tally) -> String {
    let mut table = Table::new(vec![
        "App".into(),
        "Injected".into(),
        "Detected".into(),
        "Timeout".into(),
        "Masked".into(),
        "Contained".into(),
        "Uncontained".into(),
    ]);
    for (app, tally) in rows {
        table.row(vec![
            app.name().into(),
            tally.injected.to_string(),
            tally.detected.to_string(),
            tally.timeout.to_string(),
            tally.masked.to_string(),
            tally.contained.to_string(),
            tally.uncontained.to_string(),
        ]);
    }
    table.row(vec![
        "TOTAL".into(),
        total.injected.to_string(),
        total.detected.to_string(),
        total.timeout.to_string(),
        total.masked.to_string(),
        total.contained.to_string(),
        total.uncontained.to_string(),
    ]);
    table.render()
}

fn main() -> ExitCode {
    let mut faults_total = 1000usize;
    let mut seed = 7u64;
    let mut lockstep = LockstepMode::Off;
    let mut lanes = 0usize;
    let mut verify = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--faults" => {
                let v = args.next().unwrap_or_else(|| die("--faults needs a value"));
                faults_total = v.parse().unwrap_or_else(|_| die(&format!("bad fault count {v:?}")));
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| die("--seed needs a value"));
                seed = v.parse().unwrap_or_else(|_| die(&format!("bad seed {v:?}")));
            }
            "--lockstep" => {
                let v = args.next().unwrap_or_else(|| die("--lockstep needs a value"));
                lockstep = match v.as_str() {
                    "off" => LockstepMode::Off,
                    "full" => LockstepMode::Full,
                    n => {
                        let period =
                            n.parse().unwrap_or_else(|_| die(&format!("bad lockstep mode {v:?}")));
                        LockstepMode::Sampled { period, seed }
                    }
                };
            }
            "--lanes" => {
                let v = args.next().unwrap_or_else(|| die("--lanes needs a value"));
                lanes = v.parse().unwrap_or_else(|_| die(&format!("bad lane count {v:?}")));
                if lanes == 0 {
                    die("--lanes needs a count of at least 1");
                }
            }
            "--verify" => verify = true,
            other => die(&format!(
                "unknown argument {other:?} (try --faults N / --seed S / --lockstep off|full|N / \
                 --lanes N / --verify)"
            )),
        }
    }
    if verify && lanes == 0 {
        die("--verify requires --lanes N (it cross-checks the lane backend against scalar)");
    }
    let apps = App::all();
    let per_app = faults_total.div_ceil(apps.len());
    let backend = if lanes > 0 { format!("lanes {lanes}") } else { "scalar".to_string() };
    println!(
        "fault campaign: {} faults per app x {} apps, seed {seed}, lockstep {lockstep:?}, \
         backend {backend}, kinds: {}",
        per_app,
        apps.len(),
        FaultKind::ALL.map(FaultKind::name).join(", ")
    );

    let mut rows: Vec<(App, Tally)> = Vec::new();
    let mut total = Tally::default();
    let mut scalar_rows: Vec<(App, Tally)> = Vec::new();
    let mut scalar_total = Tally::default();
    let mut scalar_wall = 0.0f64;
    let mut lane_wall = 0.0f64;
    for app in apps {
        if verify {
            // Scalar reference leg first: the backend under test must
            // reproduce it outcome by outcome.
            let t0 = Instant::now();
            let reference = match campaign(app, seed, per_app, lockstep) {
                Ok(c) => c,
                Err(e) => die(&e),
            };
            scalar_wall += t0.elapsed().as_secs_f64();
            scalar_total.add(&reference.tally);
            scalar_rows.push((app, reference.tally));

            let t1 = Instant::now();
            let laned = match campaign_lanes(app, seed, per_app, lockstep, lanes) {
                Ok(c) => c,
                Err(e) => die(&e),
            };
            lane_wall += t1.elapsed().as_secs_f64();
            if laned.outcomes != reference.outcomes {
                let first = laned
                    .outcomes
                    .iter()
                    .zip(&reference.outcomes)
                    .position(|(a, b)| a != b)
                    .unwrap_or(0);
                die(&format!(
                    "verify FAILED for {app}: lane backend diverges from scalar at fault {first} \
                     ({:?} vs {:?})",
                    laned.outcomes[first], reference.outcomes[first]
                ));
            }
            total.add(&laned.tally);
            rows.push((app, laned.tally));
        } else {
            let result = if lanes > 0 {
                campaign_lanes(app, seed, per_app, lockstep, lanes)
            } else {
                campaign(app, seed, per_app, lockstep)
            };
            let c = match result {
                Ok(c) => c,
                Err(e) => die(&e),
            };
            total.add(&c.tally);
            rows.push((app, c.tally));
        }
    }
    let rendered = render_table(&rows, &total);
    println!("\n{rendered}");
    if verify {
        let scalar_rendered = render_table(&scalar_rows, &scalar_total);
        if rendered != scalar_rendered {
            die("verify FAILED: lane-backend table is not byte-identical to scalar");
        }
        println!(
            "verify OK: lane backend matches scalar outcome-for-outcome and byte-for-byte \
             (scalar {scalar_wall:.2}s, lanes {lane_wall:.2}s, speedup {:.2}x)",
            scalar_wall / lane_wall.max(1e-9)
        );
    }

    if total.uncontained > 0 {
        println!("{} uncontained fault(s): containment contract violated.", total.uncontained);
        ExitCode::FAILURE
    } else {
        println!(
            "All {} faults detected, masked, or contained; no panics, hangs, or invariant \
             violations.",
            total.injected
        );
        ExitCode::SUCCESS
    }
}
