//! Seeded fault-injection campaign over the four DP kernels.
//!
//! For each application the campaign builds the baseline workload once,
//! checkpoints the pristine machine, then for every fault in a seeded
//! [`FaultPlan`] restores the checkpoint, runs to the fault's injection
//! point, applies the corruption, and runs to completion under watchdog
//! budgets. Every fault must be classified:
//!
//! * **detected** — the run trapped (typed trap with PC and cycle), or a
//!   watchdog budget cut off a runaway (counted separately as *timeout*
//!   but treated as detected);
//! * **masked** — the run completed and the output matches the golden
//!   model;
//! * **contained** — the run completed with wrong output, but the
//!   counter/stall-partition invariants still hold;
//! * **uncontained** — anything else: an invariant violation (a panic or
//!   hang would abort the process and also fail the campaign).
//!
//! ```text
//! cargo run --release --example fault_campaign -- [--faults N] [--seed S] [--lockstep MODE]
//! ```
//!
//! Defaults: 1000 faults total (split across the four apps), seed 7,
//! lockstep off. `--lockstep MODE` runs every faulty simulation under the
//! golden-model oracle — `full`, or a number N for sampled checking with
//! period N. Faults corrupt memory and the repaired decode cache
//! consistently, so the oracle must stay silent; any divergence is a
//! harness bug and fails the campaign (exit 2).
//! Exits with status 1 when any fault is uncontained, so CI can gate on
//! the containment contract.

use bioarch::apps::{App, Scale, Variant, Workload};
use bioarch::report::Table;
use power5_sim::fault::{check_invariants, check_stall_partition, FaultKind, FaultPlan};
use power5_sim::machine::{Checkpoint, Machine};
use power5_sim::{CoreConfig, FaultSpec, InjectionWindow, LockstepMode, StopReason, Watchdog};
use std::process::ExitCode;

/// What happened to one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Detected,
    Timeout,
    Masked,
    Contained,
    Uncontained,
}

#[derive(Default, Clone, Copy)]
struct Tally {
    injected: u64,
    detected: u64,
    timeout: u64,
    masked: u64,
    contained: u64,
    uncontained: u64,
}

impl Tally {
    fn record(&mut self, outcome: Outcome) {
        self.injected += 1;
        match outcome {
            Outcome::Detected => self.detected += 1,
            Outcome::Timeout => self.timeout += 1,
            Outcome::Masked => self.masked += 1,
            Outcome::Contained => self.contained += 1,
            Outcome::Uncontained => self.uncontained += 1,
        }
    }

    fn add(&mut self, other: &Tally) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.timeout += other.timeout;
        self.masked += other.masked;
        self.contained += other.contained;
        self.uncontained += other.uncontained;
    }
}

fn die(msg: &str) -> ! {
    eprintln!("fault_campaign: {msg}");
    std::process::exit(2);
}

/// Run one fault against a restored pristine machine; see the module docs
/// for the classification contract.
#[allow(clippy::too_many_arguments)]
fn run_one(
    m: &mut Machine,
    pristine: &Checkpoint,
    fault: &FaultSpec,
    watchdog: Watchdog,
    lockstep: LockstepMode,
    out_addr: u32,
    out_len: usize,
    golden: &[i32],
) -> Result<Outcome, String> {
    m.restore(pristine).map_err(|e| format!("restore failed: {e}"))?;
    m.set_watchdog(watchdog);
    // Fresh checker per fault so the sampling schedule is per-run
    // deterministic (the checker state is not part of the checkpoint).
    m.set_lockstep(lockstep);

    // Phase 1: run cleanly to the injection point.
    let to_fault =
        m.run_timed(fault.at_instruction).map_err(|t| format!("clean prefix trapped: {t}"))?;
    if let StopReason::Watchdog(_) = to_fault.stop {
        return Err("clean prefix hit the watchdog".into());
    }
    if let StopReason::Diverged = to_fault.stop {
        return Err(divergence_message(m, "clean prefix", fault));
    }

    fault.apply(m);

    // Phase 2: run the corrupted machine to completion (or cut-off).
    let outcome = match m.run_timed(u64::MAX) {
        Err(_trap) => Outcome::Detected,
        Ok(r) => match r.stop {
            StopReason::Watchdog(_) => Outcome::Timeout,
            // A fault corrupts memory and the decode cache consistently,
            // so the oracle disagreeing with the fast path means the
            // harness itself is broken — fail the whole campaign.
            StopReason::Diverged => {
                return Err(divergence_message(m, "faulty run", fault));
            }
            StopReason::Budget | StopReason::Halted => {
                // The run finished: it must still satisfy the counter and
                // stall-partition invariants to count as contained.
                let counters = m.counters();
                let sites = m.stall_sites();
                if let Err(why) = check_invariants(&counters)
                    .and_then(|()| check_stall_partition(&counters.stalls, &sites))
                {
                    eprintln!("  uncontained {fault:?}: {why}");
                    Outcome::Uncontained
                } else {
                    match m.mem().read_i32s(out_addr, out_len) {
                        Ok(out) if out == golden => Outcome::Masked,
                        Ok(_) => Outcome::Contained,
                        // Output vector unreadable counts as detected-at-
                        // readout: the harness saw the corruption.
                        Err(_) => Outcome::Detected,
                    }
                }
            }
        },
    };
    Ok(outcome)
}

fn divergence_message(m: &mut Machine, phase: &str, fault: &FaultSpec) -> String {
    let detail =
        m.take_divergence().map_or_else(|| "no divergence record".to_string(), |d| d.to_string());
    format!("lockstep divergence in {phase} under fault {fault:?}:\n{detail}")
}

fn campaign(app: App, seed: u64, faults: usize, lockstep: LockstepMode) -> Result<Tally, String> {
    let config = CoreConfig::power5();
    let wl = Workload::new(app, Scale::Test, seed);
    let mut prepared =
        wl.prepare(Variant::Baseline, &config).map_err(|e| format!("{app}: build failed: {e}"))?;
    prepared.machine.set_stall_site_profiling(true);
    let pristine = prepared.machine.checkpoint();

    // Clean reference run: establishes the injection window and the
    // watchdog budgets (generous multiples of the healthy run).
    let result = prepared
        .machine
        .run_timed(u64::MAX)
        .map_err(|t| format!("{app}: clean run trapped: {t}"))?;
    if !result.halted {
        return Err(format!("{app}: clean run did not halt"));
    }
    let clean_out = prepared
        .machine
        .mem()
        .read_i32s(prepared.out_addr, prepared.out_len)
        .map_err(|e| format!("{app}: cannot read clean output: {e}"))?;
    if clean_out != prepared.golden {
        return Err(format!("{app}: clean run does not match the golden model"));
    }
    let clean = prepared.machine.counters();
    let watchdog = Watchdog {
        max_cycles: Some(clean.cycles * 4 + 200_000),
        max_instructions: Some(clean.instructions * 3 + 50_000),
    };
    let window = InjectionWindow {
        code_base: prepared.code_base,
        code_len: prepared.code_len,
        data_base: prepared.data_base,
        data_len: prepared.data_len,
        max_instruction: clean.instructions,
    };

    let plan = FaultPlan::generate(seed ^ (app as u64).wrapping_mul(0x9E37_79B9), faults, &window);
    let mut tally = Tally::default();
    for fault in &plan.faults {
        let outcome = run_one(
            &mut prepared.machine,
            &pristine,
            fault,
            watchdog,
            lockstep,
            prepared.out_addr,
            prepared.out_len,
            &prepared.golden,
        )
        .map_err(|e| format!("{app}: {e}"))?;
        tally.record(outcome);
    }
    Ok(tally)
}

fn main() -> ExitCode {
    let mut faults_total = 1000usize;
    let mut seed = 7u64;
    let mut lockstep = LockstepMode::Off;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--faults" => {
                let v = args.next().unwrap_or_else(|| die("--faults needs a value"));
                faults_total = v.parse().unwrap_or_else(|_| die(&format!("bad fault count {v:?}")));
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| die("--seed needs a value"));
                seed = v.parse().unwrap_or_else(|_| die(&format!("bad seed {v:?}")));
            }
            "--lockstep" => {
                let v = args.next().unwrap_or_else(|| die("--lockstep needs a value"));
                lockstep = match v.as_str() {
                    "off" => LockstepMode::Off,
                    "full" => LockstepMode::Full,
                    n => {
                        let period =
                            n.parse().unwrap_or_else(|_| die(&format!("bad lockstep mode {v:?}")));
                        LockstepMode::Sampled { period, seed }
                    }
                };
            }
            other => die(&format!(
                "unknown argument {other:?} (try --faults N / --seed S / --lockstep off|full|N)"
            )),
        }
    }
    let apps = App::all();
    let per_app = faults_total.div_ceil(apps.len());
    println!(
        "fault campaign: {} faults per app x {} apps, seed {seed}, lockstep {lockstep:?}, kinds: {}",
        per_app,
        apps.len(),
        FaultKind::ALL.map(FaultKind::name).join(", ")
    );

    let mut table = Table::new(vec![
        "App".into(),
        "Injected".into(),
        "Detected".into(),
        "Timeout".into(),
        "Masked".into(),
        "Contained".into(),
        "Uncontained".into(),
    ]);
    let mut total = Tally::default();
    for app in apps {
        let tally = match campaign(app, seed, per_app, lockstep) {
            Ok(t) => t,
            Err(e) => die(&e),
        };
        table.row(vec![
            app.name().into(),
            tally.injected.to_string(),
            tally.detected.to_string(),
            tally.timeout.to_string(),
            tally.masked.to_string(),
            tally.contained.to_string(),
            tally.uncontained.to_string(),
        ]);
        total.add(&tally);
    }
    table.row(vec![
        "TOTAL".into(),
        total.injected.to_string(),
        total.detected.to_string(),
        total.timeout.to_string(),
        total.masked.to_string(),
        total.contained.to_string(),
        total.uncontained.to_string(),
    ]);
    println!("\n{}", table.render());

    if total.uncontained > 0 {
        println!("{} uncontained fault(s): containment contract violated.", total.uncontained);
        ExitCode::FAILURE
    } else {
        println!(
            "All {} faults detected, masked, or contained; no panics, hangs, or invariant \
             violations.",
            total.injected
        );
        ExitCode::SUCCESS
    }
}
