//! Regenerate the paper's headline tables in one go (test scale by
//! default so it finishes in seconds; pass `--classc` for the full
//! benchmark scale the EXPERIMENTS.md numbers use).
//!
//! Run with `cargo run --release --example paper_tables [-- --classc]`.

use bioarch::apps::Scale;
use bioarch::experiments::Study;

fn main() {
    let classc = std::env::args().any(|a| a == "--classc");
    let scale = if classc { Scale::ClassC } else { Scale::Test };
    println!("scale: {scale:?} (pass --classc for benchmark scale)\n");
    let mut study = Study::new(scale, 42);

    println!("{}", study.table1().expect("table1").render());
    println!("{}", study.fig1().expect("fig1").render());
    println!("{}", study.fig3().expect("fig3").render());
    println!("{}", study.fig6().expect("fig6").render());
}
