//! Regenerate the paper's headline tables in one go (test scale by
//! default so it finishes in seconds; pass `--classc` for the full
//! benchmark scale the EXPERIMENTS.md numbers use).
//!
//! Besides the tables, the run reports its own wall-clock, host MIPS
//! (target instructions retired per host second), and worker-thread
//! count, so every regeneration doubles as a throughput sanity check
//! against the committed `baselines/BENCH_sim_throughput.json`.
//!
//! Run with `cargo run --release --example paper_tables [-- --classc]`.

use bioarch::apps::Scale;
use bioarch::experiments::Study;

fn main() {
    let classc = std::env::args().any(|a| a == "--classc");
    let scale = if classc { Scale::ClassC } else { Scale::Test };
    println!("scale: {scale:?} (pass --classc for benchmark scale)\n");
    let mut study = Study::new(scale, 42);

    let start = std::time::Instant::now();
    println!("{}", study.table1().expect("table1").render());
    println!("{}", study.fig1().expect("fig1").render());
    println!("{}", study.fig3().expect("fig3").render());
    println!("{}", study.fig6().expect("fig6").render());
    let wall = start.elapsed();

    let insns = study.simulated_instructions();
    let mips = insns as f64 / wall.as_secs_f64().max(1e-9) / 1e6;
    println!(
        "[{insns} target instructions in {wall:.2?} — {mips:.1} MIPS on {} thread(s)]",
        study.threads()
    );
}
