//! `campaignd` — the crash-safe campaign service driver.
//!
//! Modes:
//!
//! ```text
//! # Serve in-process: open (or resume) the campaign at <dir>, submit
//! # the default job set (all four apps, baseline variant, stock
//! # hardware) or an explicit job list, run worker shards to
//! # completion, and write the merged report to <dir>/report.json.
//! cargo run --release --example campaignd -- <dir> \
//!     [--scale test|classc] [--seed <n>] [--workers <n>] [--chunk <insns>] \
//!     [--deadline-secs <n>] [--jobs app/variant/hw/s<seed> ...]
//!
//! # Serve distributed: same submission, but lease jobs to remote
//! # worker shards over TCP (bioarch-wire/v1) and stream retired
//! # results to any number of subscribers (`suite_top --subscribe`).
//! cargo run --release --example campaignd -- <dir> --listen 127.0.0.1:7070 \
//!     [--deadline-secs <n>] [--scale ...] [--jobs ...]
//!
//! # Worker shard: connect to a server (or its chaos proxy), execute
//! # leased jobs, report outcomes, reconnect with seeded backoff.
//! cargo run --release --example campaignd -- --worker 127.0.0.1:7070 \
//!     [--worker-id <n>] [--seed <n>]
//!
//! # Smoke: the CI crash-consistency gate. Runs a small campaign
//! # uninterrupted, re-runs it with a seeded mid-flight kill plus a
//! # torn journal tail, restarts, and requires the merged reports to be
//! # byte-identical; then resubmits everything a third time and
//! # requires pure cache hits (zero execute-phase nanoseconds).
//! cargo run --release --example campaignd -- --smoke <dir> [--seed <n>]
//!
//! # Lane smoke: the batch-backend contract gate. Phase 1 runs a
//! # five-job campaign (two seed-sibling pairs plus one odd job) one
//! # job per claim; phase 2 re-runs it in a fresh directory with
//! # `lanes = 2`, workers claiming whole compatible batches per
//! # dispatch — and requires the merged report byte-identical and the
//! # batch-claim path demonstrably exercised.
//! cargo run --release --example campaignd -- --smoke-lanes <dir> [--seed <n>]
//!
//! # Remote smoke: the distributed contract gate. Phase 1 runs the
//! # reference campaign in-process; phase 2 re-runs it with two worker
//! # *processes* behind a seeded chaos proxy (frame drop / dup / delay /
//! # corruption / truncation), one seeded kill -9 of a worker and one
//! # seeded connection sever, plus a live subscriber — and requires the
//! # merged report byte-identical to phase 1 and the subscriber stream
//! # complete; phase 3 resubmits and requires pure cache hits.
//! cargo run --release --example campaignd -- --smoke-remote <dir> [--seed <n>]
//! ```
//!
//! Exit codes follow the `compare_runs` taxonomy: 0 ok, 1 usage,
//! 2 degraded results, 3 contract violation.

use bioarch::campaign::remote::{
    self, ChaosConfig, ChaosProxy, Frame, FramedStream, Role, ServeOptions, WorkerOptions,
};
use bioarch::campaign::{Campaign, CampaignConfig, JobSpec, JobStatus, SubmitOutcome};
use bioarch::experiments::Hw;
use bioarch::telemetry::{TelemetryConfig, TelemetryHub};
use bioarch::{App, Scale, Variant};
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn die(msg: &str) -> ! {
    eprintln!("campaignd: {msg}");
    std::process::exit(1);
}

/// Parse an `app/variant/hw/s<seed>` job label (the same shape
/// [`JobSpec::label`] renders).
fn parse_job(s: &str, scale: Scale) -> Result<JobSpec, String> {
    let parts: Vec<&str> = s.split('/').collect();
    let [app, variant, hw, seed] = parts[..] else {
        return Err(format!("bad job {s:?} (want app/variant/hw/s<seed>)"));
    };
    let app = App::all()
        .into_iter()
        .find(|a| a.name().to_lowercase() == app)
        .ok_or_else(|| format!("unknown app {app:?}"))?;
    let variant = Variant::all()
        .into_iter()
        .find(|v| v.slug() == variant)
        .ok_or_else(|| format!("unknown variant {variant:?}"))?;
    let hw = Hw::from_slug(hw).ok_or_else(|| format!("unknown hw {hw:?}"))?;
    let seed = seed
        .strip_prefix('s')
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| format!("bad seed in {s:?}"))?;
    Ok(JobSpec { app, variant, hw, scale, seed })
}

/// Open, submit, run (in-process or listening for remote shards), and
/// write `<dir>/report.json`.
#[allow(clippy::too_many_arguments)]
fn serve(
    dir: &str,
    scale: Scale,
    seed: u64,
    workers: usize,
    chunk: u64,
    lanes: usize,
    jobs: &[String],
    listen: Option<&str>,
    deadline_secs: Option<u64>,
) -> ExitCode {
    let mut config = CampaignConfig::new(dir);
    config.workers = workers;
    config.chunk = chunk;
    config.lanes = lanes;
    let mut campaign = Campaign::open(config).unwrap_or_else(|e| die(&e));
    campaign.set_telemetry(TelemetryHub::new(TelemetryConfig::default()));
    let specs: Vec<JobSpec> = if jobs.is_empty() {
        App::all()
            .into_iter()
            .map(|app| JobSpec { app, variant: Variant::Baseline, hw: Hw::Stock, scale, seed })
            .collect()
    } else {
        jobs.iter().map(|j| parse_job(j, scale).unwrap_or_else(|e| die(&e))).collect()
    };
    for spec in &specs {
        let outcome = campaign.submit(*spec).unwrap_or_else(|e| die(&e));
        println!("submit {:>9}  {}", format!("{outcome:?}").to_lowercase(), spec.label());
    }
    let (completed, quarantined);
    if let Some(addr) = listen {
        let listener = TcpListener::bind(addr)
            .unwrap_or_else(|e| die(&format!("cannot listen on {addr}: {e}")));
        println!(
            "campaignd: leasing to remote workers on {}",
            listener.local_addr().map_or_else(|_| addr.to_string(), |a| a.to_string())
        );
        let opts = ServeOptions {
            deadline: deadline_secs.map(Duration::from_secs),
            ..ServeOptions::default()
        };
        let summary = remote::serve(&campaign, listener, &opts)
            .unwrap_or_else(|e| die(&format!("serve: {e}")));
        println!(
            "campaignd: served {} connection(s){}",
            summary.connections,
            if summary.drained { ", drained at deadline" } else { "" }
        );
        (completed, quarantined) = (summary.completed, summary.quarantined);
    } else {
        let summary = std::thread::scope(|s| {
            if let Some(secs) = deadline_secs {
                let c = &campaign;
                s.spawn(move || {
                    // Graceful wall-clock bound: past the deadline the
                    // campaign drains (in-flight jobs checkpoint and
                    // release) instead of being cut off mid-run. The
                    // poll lets the thread retire early when the run
                    // finishes under deadline.
                    let dl = Instant::now() + Duration::from_secs(secs);
                    while Instant::now() < dl {
                        if c.outstanding() == 0 {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    println!("campaignd: deadline reached, draining");
                    c.drain();
                });
            }
            campaign.run()
        });
        (completed, quarantined) = (summary.completed, summary.quarantined);
    }
    let report = campaign.merged_report().unwrap_or_else(|e| die(&e));
    let path = std::path::Path::new(dir).join("report.json");
    bioarch::report::write_atomic(&path, &report.render_json())
        .unwrap_or_else(|e| die(&e.to_string()));
    println!("campaign: {completed} completed, {quarantined} quarantined -> {}", path.display());
    if report.is_degraded() {
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// Run one worker shard against a server (or chaos proxy) address.
fn worker(addr: &str, worker_id: u64, seed: u64) -> ExitCode {
    let mut opts = WorkerOptions::new(addr, worker_id);
    opts.seed ^= seed;
    let summary = remote::run_worker(&opts);
    println!(
        "worker {worker_id}: {} job(s), {} frame(s), {} reconnect(s), {}",
        summary.jobs_run,
        summary.frames_sent,
        summary.reconnects,
        if summary.clean { "server said done" } else { "gave up on server" }
    );
    ExitCode::SUCCESS
}

/// The smoke job set: three jobs, two of which span several checkpoint
/// chunks at Test scale, across two hardware configs.
fn smoke_specs() -> Vec<JobSpec> {
    vec![
        JobSpec {
            app: App::Fasta,
            variant: Variant::Baseline,
            hw: Hw::Stock,
            scale: Scale::Test,
            seed: 42,
        },
        JobSpec {
            app: App::Clustalw,
            variant: Variant::Baseline,
            hw: Hw::Stock,
            scale: Scale::Test,
            seed: 42,
        },
        JobSpec {
            app: App::Hmmer,
            variant: Variant::HandMax,
            hw: Hw::Btac,
            scale: Scale::Test,
            seed: 42,
        },
    ]
}

fn smoke_config(dir: std::path::PathBuf) -> CampaignConfig {
    let mut config = CampaignConfig::new(dir);
    config.workers = 2;
    config.chunk = 20_000;
    config
}

/// Run the kill-and-resume + cache-hit smoke. See the module docs.
fn smoke(dir: &str, seed: u64) -> ExitCode {
    let dir = std::path::Path::new(dir);
    let _ = std::fs::remove_dir_all(dir);
    let fail = |msg: &str| -> ExitCode {
        eprintln!("campaignd: smoke FAILED: {msg}");
        ExitCode::from(3)
    };

    // Phase 1: uninterrupted reference run.
    let campaign =
        Campaign::open(smoke_config(dir.join("uninterrupted"))).unwrap_or_else(|e| die(&e));
    for spec in smoke_specs() {
        campaign.submit(spec).unwrap_or_else(|e| die(&e));
    }
    campaign.run();
    let reference = campaign.merged_report().unwrap_or_else(|e| die(&e)).render_json();
    let appends = campaign.journal_appends();
    drop(campaign);
    bioarch::report::write_atomic(dir.join("report_uninterrupted.json"), &reference)
        .unwrap_or_else(|e| die(&e.to_string()));
    println!("smoke: uninterrupted run made {appends} journal appends");

    // Phase 2: same campaign, killed at a seeded append (plus a torn
    // journal tail), then restarted.
    let resumed_dir = dir.join("resumed");
    let crash_at = 2 + seed % appends.saturating_sub(2).max(1);
    println!("smoke: crashing the next incarnation after {crash_at} appends");
    let campaign = Campaign::open(smoke_config(resumed_dir.clone())).unwrap_or_else(|e| die(&e));
    campaign.crash_after_appends(crash_at);
    for spec in smoke_specs() {
        // Submissions may hit the simulated crash; that is the point.
        let _ = campaign.submit(spec);
    }
    campaign.run();
    if !campaign.crashed() {
        return fail("crash point was never reached");
    }
    drop(campaign);
    // Tear the journal tail: chop a seeded number of bytes off the last
    // record, as a kill mid-`write` would.
    let journal = resumed_dir.join("journal.jsonl");
    let len = std::fs::metadata(&journal).unwrap_or_else(|e| die(&e.to_string())).len();
    let tear = seed % 7;
    if tear > 0 && len > tear {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&journal)
            .unwrap_or_else(|e| die(&e.to_string()));
        file.set_len(len - tear).unwrap_or_else(|e| die(&e.to_string()));
        println!("smoke: tore {tear} bytes off the journal tail");
    }
    // Restart: replay, heal, resubmit (idempotent), finish the work.
    let campaign = Campaign::open(smoke_config(resumed_dir)).unwrap_or_else(|e| die(&e));
    for spec in smoke_specs() {
        campaign.submit(spec).unwrap_or_else(|e| die(&e));
    }
    campaign.run();
    let resumed = campaign.merged_report().unwrap_or_else(|e| die(&e)).render_json();
    drop(campaign);
    bioarch::report::write_atomic(dir.join("report_resumed.json"), &resumed)
        .unwrap_or_else(|e| die(&e.to_string()));
    if resumed != reference {
        return fail("kill-and-resume report differs from the uninterrupted run");
    }
    println!("smoke: kill-and-resume report is byte-identical");

    // Phase 3: resubmit everything; must be pure cache hits with zero
    // simulation (execute-phase) work.
    let mut campaign =
        Campaign::open(smoke_config(dir.join("resumed"))).unwrap_or_else(|e| die(&e));
    campaign.set_telemetry(TelemetryHub::new(TelemetryConfig::default()));
    let specs = smoke_specs();
    for spec in &specs {
        match campaign.submit(*spec) {
            Ok(SubmitOutcome::CacheHit) => {}
            other => {
                return fail(&format!("expected cache hit for {}, got {other:?}", spec.label()))
            }
        }
    }
    campaign.run();
    let report = campaign.merged_report().unwrap_or_else(|e| die(&e));
    let snapshot = campaign.take_telemetry().expect("hub attached").finish();
    let execute_ns = snapshot.host.counter("host.phase.execute_ns");
    let hits = snapshot.host.counter("campaign.cache_hits");
    if execute_ns != 0 {
        return fail(&format!("cache hits still spent {execute_ns} ns in execute phase"));
    }
    if hits != specs.len() as u64 {
        return fail(&format!("expected {} cache hits, counted {hits}", specs.len()));
    }
    println!("smoke: {hits} resubmissions served from cache with zero execute time");
    if report.is_degraded() {
        eprintln!("campaignd: smoke results degraded");
        return ExitCode::from(2);
    }
    println!("smoke: OK");
    ExitCode::SUCCESS
}

/// The lane-smoke job set: two seed-sibling pairs (batchable — same
/// app/variant/hw/scale, differing seed) plus one odd job on different
/// hardware that can never share a batch with the others.
fn lanes_specs(seed: u64) -> Vec<JobSpec> {
    let spec = |app, variant, hw, s| JobSpec { app, variant, hw, scale: Scale::Test, seed: s };
    vec![
        spec(App::Fasta, Variant::Baseline, Hw::Stock, seed),
        spec(App::Fasta, Variant::Baseline, Hw::Stock, seed.wrapping_add(1)),
        spec(App::Clustalw, Variant::Baseline, Hw::Stock, seed),
        spec(App::Clustalw, Variant::Baseline, Hw::Stock, seed.wrapping_add(1)),
        spec(App::Hmmer, Variant::HandMax, Hw::Btac, seed),
    ]
}

/// Run the lane-batch contract smoke. See the module docs.
fn smoke_lanes(dir: &str, seed: u64) -> ExitCode {
    let dir = std::path::Path::new(dir);
    let _ = std::fs::remove_dir_all(dir);
    let fail = |msg: &str| -> ExitCode {
        eprintln!("campaignd: smoke-lanes FAILED: {msg}");
        ExitCode::from(3)
    };

    // Phase 1: reference run, one job per claim (lanes = 1).
    let campaign =
        Campaign::open(smoke_config(dir.join("uninterrupted"))).unwrap_or_else(|e| die(&e));
    for spec in lanes_specs(seed) {
        campaign.submit(spec).unwrap_or_else(|e| die(&e));
    }
    campaign.run();
    let reference = campaign.merged_report().unwrap_or_else(|e| die(&e)).render_json();
    drop(campaign);
    bioarch::report::write_atomic(dir.join("report_uninterrupted.json"), &reference)
        .unwrap_or_else(|e| die(&e.to_string()));
    println!("smoke-lanes: single-claim reference run complete");

    // Phase 2: fresh directory, same submission, lane backend on —
    // workers claim whole compatible batches per dispatch.
    let mut config = smoke_config(dir.join("lanes"));
    config.lanes = 2;
    let mut campaign = Campaign::open(config).unwrap_or_else(|e| die(&e));
    campaign.set_telemetry(TelemetryHub::new(TelemetryConfig::default()));
    for spec in lanes_specs(seed) {
        campaign.submit(spec).unwrap_or_else(|e| die(&e));
    }
    campaign.run();
    let laned = campaign.merged_report().unwrap_or_else(|e| die(&e)).render_json();
    let snapshot = campaign.take_telemetry().expect("hub attached").finish();
    bioarch::report::write_atomic(dir.join("report_lanes.json"), &laned)
        .unwrap_or_else(|e| die(&e.to_string()));
    let batch_claims = snapshot.host.counter("campaign.batch_claims");
    let batch_jobs = snapshot.host.counter("campaign.batch_jobs");
    if laned != reference {
        return fail("lane-batched report differs from the single-claim run");
    }
    if batch_claims == 0 {
        return fail("lane backend never claimed a batch");
    }
    if batch_jobs <= batch_claims {
        // Every batch held exactly one job: the compatible seed-sibling
        // pairs were never actually ganged.
        return fail(&format!(
            "batching never grouped jobs ({batch_jobs} job(s) over {batch_claims} batch claim(s))"
        ));
    }
    println!(
        "smoke-lanes: report byte-identical with {batch_jobs} job(s) retired over \
         {batch_claims} batch claim(s), OK"
    );
    ExitCode::SUCCESS
}

/// Count terminal jobs (the seeded-kill trigger watches this).
fn terminal_jobs(campaign: &Campaign) -> u64 {
    campaign
        .job_ids()
        .iter()
        .filter(|id| {
            matches!(
                campaign.status(id),
                Some(JobStatus::Completed | JobStatus::Quarantined { .. })
            )
        })
        .count() as u64
}

/// Spawn a worker shard child process (this same binary in `--worker`
/// mode) pointed at `addr`.
fn spawn_worker_child(addr: &str, worker_id: u64, seed: u64) -> std::process::Child {
    let exe = std::env::current_exe().unwrap_or_else(|e| die(&format!("current_exe: {e}")));
    std::process::Command::new(exe)
        .args([
            "--worker",
            addr,
            "--worker-id",
            &worker_id.to_string(),
            "--seed",
            &seed.to_string(),
        ])
        .spawn()
        .unwrap_or_else(|e| die(&format!("spawn worker: {e}")))
}

/// Subscribe to `addr` and collect the full result stream.
fn collect_results(addr: std::net::SocketAddr) -> Result<(Vec<String>, u64, u64), String> {
    let stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut fs = FramedStream::new(stream);
    fs.set_deadlines(Some(120_000), Some(5_000)).map_err(|e| e.to_string())?;
    fs.send(&Frame::Hello { role: Role::Subscriber, worker: 0 }).map_err(|e| e.to_string())?;
    match fs.recv() {
        Ok(Frame::HelloAck { .. }) => {}
        other => return Err(format!("expected hello_ack, got {other:?}")),
    }
    let mut labels = Vec::new();
    loop {
        match fs.recv() {
            Ok(Frame::Result { label, .. }) => labels.push(label),
            Ok(Frame::CampaignDone { completed, quarantined }) => {
                return Ok((labels, completed, quarantined))
            }
            Ok(other) => return Err(format!("unexpected frame {other:?}")),
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// Run the distributed chaos smoke. See the module docs.
fn smoke_remote(dir: &str, seed: u64) -> ExitCode {
    let dir = std::path::Path::new(dir);
    let _ = std::fs::remove_dir_all(dir);
    let fail = |msg: &str| -> ExitCode {
        eprintln!("campaignd: smoke-remote FAILED: {msg}");
        ExitCode::from(3)
    };

    // Phase 1: uninterrupted in-process reference run — the merged
    // report the distributed run must reproduce byte for byte.
    let campaign =
        Campaign::open(smoke_config(dir.join("uninterrupted"))).unwrap_or_else(|e| die(&e));
    for spec in smoke_specs() {
        campaign.submit(spec).unwrap_or_else(|e| die(&e));
    }
    campaign.run();
    let reference = campaign.merged_report().unwrap_or_else(|e| die(&e)).render_json();
    drop(campaign);
    bioarch::report::write_atomic(dir.join("report_uninterrupted.json"), &reference)
        .unwrap_or_else(|e| die(&e.to_string()));
    println!("smoke-remote: reference run complete");

    // Phase 2: the same campaign over the wire, through a seeded chaos
    // proxy, with one seeded kill -9 and one seeded connection sever.
    let remote_dir = dir.join("remote");
    let mut config = smoke_config(remote_dir.clone());
    config.lease_timeout_ms = 3_000;
    let mut campaign = Campaign::open(config).unwrap_or_else(|e| die(&e));
    campaign.set_telemetry(TelemetryHub::new(TelemetryConfig::default()));
    for spec in smoke_specs() {
        campaign.submit(spec).unwrap_or_else(|e| die(&e));
    }
    let listener = TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| die(&format!("bind: {e}")));
    let server_addr = listener.local_addr().unwrap_or_else(|e| die(&format!("addr: {e}")));
    let chaos = ChaosConfig {
        seed,
        drop_per_mille: 30,
        dup_per_mille: 30,
        delay_per_mille: 20,
        max_delay_ms: 25,
        corrupt_per_mille: 10,
        truncate_per_mille: 10,
        // One seeded hard sever: cut a worker connection after a couple
        // of server-to-client frames (early, so it lands before the
        // random fault rolls can retire the same connection).
        sever_after_frames: Some((seed % 2, 2 + seed % 3)),
    };
    let proxy =
        ChaosProxy::start(server_addr, chaos).unwrap_or_else(|e| die(&format!("chaos proxy: {e}")));
    let proxy_addr = proxy.addr().to_string();
    println!("smoke-remote: server {server_addr}, chaos proxy {proxy_addr}");

    let mut subscriber_outcome = Err("subscriber never ran".to_string());
    let summary = std::thread::scope(|s| {
        let server = s.spawn(|| {
            remote::serve(&campaign, listener, &ServeOptions { poll_ms: 100, deadline: None })
        });
        let subscriber = s.spawn(move || collect_results(server_addr));
        // Nanny loop: two worker shards through the chaos proxy; one
        // seeded kill -9 once the first job retires, dead shards
        // respawned (same worker id — the lease re-delivery path) while
        // work remains.
        let mut children = vec![
            spawn_worker_child(&proxy_addr, 1, seed),
            spawn_worker_child(&proxy_addr, 2, seed),
        ];
        let mut killed = false;
        while !server.is_finished() {
            if !killed && terminal_jobs(&campaign) >= 1 {
                println!("smoke-remote: kill -9 worker shard 1 (seeded)");
                let _ = children[0].kill();
                killed = true;
            }
            for (i, child) in children.iter_mut().enumerate() {
                if let Ok(Some(_)) = child.try_wait() {
                    if campaign.outstanding() > 0 {
                        println!("smoke-remote: respawning worker shard {}", i + 1);
                        *child = spawn_worker_child(&proxy_addr, i as u64 + 1, seed);
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        if !killed {
            // The campaign finished before the kill trigger fired —
            // that would leave the headline fault untested.
            eprintln!("smoke-remote: warning: kill trigger never fired");
        }
        // Graceful shutdown: workers get `done` (or give up); bound the
        // wait, then reap.
        let grace = Instant::now() + Duration::from_secs(10);
        for child in &mut children {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    _ if Instant::now() >= grace => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    _ => std::thread::sleep(Duration::from_millis(25)),
                }
            }
        }
        subscriber_outcome = subscriber.join().expect("subscriber thread");
        server.join().expect("server thread")
    });
    let summary = summary.unwrap_or_else(|e| die(&format!("serve: {e}")));
    let counts = proxy.counts();
    drop(proxy);
    if counts.severed == 0 {
        eprintln!("smoke-remote: warning: seeded sever never fired");
    }
    println!(
        "smoke-remote: chaos saw {} conn(s), {} frames: {} dropped, {} duped, {} delayed, \
         {} corrupted, {} truncated, {} severed",
        counts.connections,
        counts.frames,
        counts.dropped,
        counts.duplicated,
        counts.delayed,
        counts.corrupted,
        counts.truncated,
        counts.severed
    );
    let remote_report = campaign.merged_report().unwrap_or_else(|e| die(&e)).render_json();
    bioarch::report::write_atomic(dir.join("report_remote.json"), &remote_report)
        .unwrap_or_else(|e| die(&e.to_string()));
    if remote_report != reference {
        return fail("distributed chaos report differs from the uninterrupted run");
    }
    println!(
        "smoke-remote: report byte-identical under chaos ({} completed, {} quarantined, \
         {} connection(s))",
        summary.completed, summary.quarantined, summary.connections
    );
    let (labels, sub_completed, sub_quarantined) = match subscriber_outcome {
        Ok(out) => out,
        Err(e) => return fail(&format!("subscriber stream broke: {e}")),
    };
    let mut want: Vec<String> = smoke_specs().iter().map(|s| s.label()).collect();
    let mut got = labels.clone();
    want.sort();
    got.sort();
    if got != want {
        return fail(&format!("subscriber saw {got:?}, want {want:?}"));
    }
    if (sub_completed, sub_quarantined) != (summary.completed, summary.quarantined) {
        return fail("subscriber campaign_done counts disagree with the server");
    }
    println!("smoke-remote: subscriber streamed all {} results", labels.len());

    // Phase 3: resubmission served entirely from the run cache — zero
    // execute-phase time, same as the in-process smoke.
    let specs = smoke_specs();
    for spec in &specs {
        match campaign.submit(*spec) {
            Ok(SubmitOutcome::CacheHit) => {}
            other => {
                return fail(&format!("expected cache hit for {}, got {other:?}", spec.label()))
            }
        }
    }
    campaign.run();
    let snapshot = campaign.take_telemetry().expect("hub attached").finish();
    let execute_ns = snapshot.host.counter("host.phase.execute_ns");
    if execute_ns != 0 {
        return fail(&format!("cache hits still spent {execute_ns} ns in execute phase"));
    }
    println!("smoke-remote: {} resubmissions served from cache, OK", specs.len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut take_value = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            die(&format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    let seed = take_value("--seed")
        .map_or(7, |v| v.parse().unwrap_or_else(|_| die(&format!("bad seed {v:?}"))));
    let workers = take_value("--workers")
        .map_or(2, |v| v.parse().unwrap_or_else(|_| die(&format!("bad worker count {v:?}"))));
    let chunk = take_value("--chunk")
        .map_or(20_000, |v| v.parse().unwrap_or_else(|_| die(&format!("bad chunk {v:?}"))));
    let lanes = take_value("--lanes")
        .map_or(1, |v| v.parse().unwrap_or_else(|_| die(&format!("bad lane count {v:?}"))));
    let scale = match take_value("--scale").as_deref() {
        None | Some("test") => Scale::Test,
        Some("classc") => Scale::ClassC,
        Some(other) => die(&format!("unknown scale {other:?}")),
    };
    let worker_id = take_value("--worker-id")
        .map_or(1, |v| v.parse().unwrap_or_else(|_| die(&format!("bad worker id {v:?}"))));
    if let Some(addr) = take_value("--worker") {
        return worker(&addr, worker_id, seed);
    }
    let listen = take_value("--listen");
    let deadline_secs = take_value("--deadline-secs")
        .map(|v| v.parse().unwrap_or_else(|_| die(&format!("bad deadline {v:?}"))));
    let smoking = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let smoking_remote = args.iter().any(|a| a == "--smoke-remote");
    args.retain(|a| a != "--smoke-remote");
    let smoking_lanes = args.iter().any(|a| a == "--smoke-lanes");
    args.retain(|a| a != "--smoke-lanes");
    let mut jobs: Vec<String> = Vec::new();
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        jobs = args.split_off(i + 1);
        args.remove(i);
    }
    let Some(dir) = args.first() else {
        die(concat!(
            "usage: campaignd <dir> [--scale test|classc] [--seed <n>] [--workers <n>] ",
            "[--chunk <insns>] [--lanes <n>] [--listen <host:port>] [--deadline-secs <n>] ",
            "[--jobs app/variant/hw/s<seed> ...]\n",
            "       campaignd --worker <host:port> [--worker-id <n>] [--seed <n>]\n",
            "       campaignd --smoke <dir> [--seed <n>]\n",
            "       campaignd --smoke-lanes <dir> [--seed <n>]\n",
            "       campaignd --smoke-remote <dir> [--seed <n>]"
        ));
    };
    if smoking {
        smoke(dir, seed)
    } else if smoking_remote {
        smoke_remote(dir, seed)
    } else if smoking_lanes {
        smoke_lanes(dir, seed)
    } else {
        serve(dir, scale, seed, workers, chunk, lanes, &jobs, listen.as_deref(), deadline_secs)
    }
}
