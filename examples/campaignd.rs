//! `campaignd` — the crash-safe campaign service driver.
//!
//! Two modes:
//!
//! ```text
//! # Serve: open (or resume) the campaign at <dir>, submit the default
//! # job set (all four apps, baseline variant, stock hardware) or an
//! # explicit job list, run worker shards to completion, and write the
//! # merged report to <dir>/report.json.
//! cargo run --release --example campaignd -- <dir> \
//!     [--scale test|classc] [--seed <n>] [--workers <n>] [--chunk <insns>] \
//!     [--jobs app/variant/hw/s<seed> ...]
//!
//! # Smoke: the CI crash-consistency gate. Runs a small campaign
//! # uninterrupted, re-runs it with a seeded mid-flight kill plus a
//! # torn journal tail, restarts, and requires the merged reports to be
//! # byte-identical; then resubmits everything a third time and
//! # requires pure cache hits (zero execute-phase nanoseconds).
//! cargo run --release --example campaignd -- --smoke <dir> [--seed <n>]
//! ```
//!
//! Exit codes follow the `compare_runs` taxonomy: 0 ok, 1 usage,
//! 2 degraded results, 3 contract violation.

use bioarch::campaign::{Campaign, CampaignConfig, JobSpec, SubmitOutcome};
use bioarch::experiments::Hw;
use bioarch::telemetry::{TelemetryConfig, TelemetryHub};
use bioarch::{App, Scale, Variant};
use std::process::ExitCode;

fn die(msg: &str) -> ! {
    eprintln!("campaignd: {msg}");
    std::process::exit(1);
}

/// Parse an `app/variant/hw/s<seed>` job label (the same shape
/// [`JobSpec::label`] renders).
fn parse_job(s: &str, scale: Scale) -> Result<JobSpec, String> {
    let parts: Vec<&str> = s.split('/').collect();
    let [app, variant, hw, seed] = parts[..] else {
        return Err(format!("bad job {s:?} (want app/variant/hw/s<seed>)"));
    };
    let app = App::all()
        .into_iter()
        .find(|a| a.name().to_lowercase() == app)
        .ok_or_else(|| format!("unknown app {app:?}"))?;
    let variant = Variant::all()
        .into_iter()
        .find(|v| v.slug() == variant)
        .ok_or_else(|| format!("unknown variant {variant:?}"))?;
    let hw = Hw::from_slug(hw).ok_or_else(|| format!("unknown hw {hw:?}"))?;
    let seed = seed
        .strip_prefix('s')
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| format!("bad seed in {s:?}"))?;
    Ok(JobSpec { app, variant, hw, scale, seed })
}

/// Open, submit, run, and write `<dir>/report.json`.
fn serve(
    dir: &str,
    scale: Scale,
    seed: u64,
    workers: usize,
    chunk: u64,
    jobs: &[String],
) -> ExitCode {
    let mut config = CampaignConfig::new(dir);
    config.workers = workers;
    config.chunk = chunk;
    let mut campaign = Campaign::open(config).unwrap_or_else(|e| die(&e));
    campaign.set_telemetry(TelemetryHub::new(TelemetryConfig::default()));
    let specs: Vec<JobSpec> = if jobs.is_empty() {
        App::all()
            .into_iter()
            .map(|app| JobSpec { app, variant: Variant::Baseline, hw: Hw::Stock, scale, seed })
            .collect()
    } else {
        jobs.iter().map(|j| parse_job(j, scale).unwrap_or_else(|e| die(&e))).collect()
    };
    for spec in &specs {
        let outcome = campaign.submit(*spec).unwrap_or_else(|e| die(&e));
        println!("submit {:>9}  {}", format!("{outcome:?}").to_lowercase(), spec.label());
    }
    let summary = campaign.run();
    let report = campaign.merged_report().unwrap_or_else(|e| die(&e));
    let path = std::path::Path::new(dir).join("report.json");
    bioarch::report::write_atomic(&path, &report.render_json())
        .unwrap_or_else(|e| die(&e.to_string()));
    println!(
        "campaign: {} completed, {} quarantined -> {}",
        summary.completed,
        summary.quarantined,
        path.display()
    );
    if report.is_degraded() {
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// The smoke job set: three jobs, two of which span several checkpoint
/// chunks at Test scale, across two hardware configs.
fn smoke_specs() -> Vec<JobSpec> {
    vec![
        JobSpec {
            app: App::Fasta,
            variant: Variant::Baseline,
            hw: Hw::Stock,
            scale: Scale::Test,
            seed: 42,
        },
        JobSpec {
            app: App::Clustalw,
            variant: Variant::Baseline,
            hw: Hw::Stock,
            scale: Scale::Test,
            seed: 42,
        },
        JobSpec {
            app: App::Hmmer,
            variant: Variant::HandMax,
            hw: Hw::Btac,
            scale: Scale::Test,
            seed: 42,
        },
    ]
}

fn smoke_config(dir: std::path::PathBuf) -> CampaignConfig {
    let mut config = CampaignConfig::new(dir);
    config.workers = 2;
    config.chunk = 20_000;
    config
}

/// Run the kill-and-resume + cache-hit smoke. See the module docs.
fn smoke(dir: &str, seed: u64) -> ExitCode {
    let dir = std::path::Path::new(dir);
    let _ = std::fs::remove_dir_all(dir);
    let fail = |msg: &str| -> ExitCode {
        eprintln!("campaignd: smoke FAILED: {msg}");
        ExitCode::from(3)
    };

    // Phase 1: uninterrupted reference run.
    let campaign =
        Campaign::open(smoke_config(dir.join("uninterrupted"))).unwrap_or_else(|e| die(&e));
    for spec in smoke_specs() {
        campaign.submit(spec).unwrap_or_else(|e| die(&e));
    }
    campaign.run();
    let reference = campaign.merged_report().unwrap_or_else(|e| die(&e)).render_json();
    let appends = campaign.journal_appends();
    drop(campaign);
    bioarch::report::write_atomic(dir.join("report_uninterrupted.json"), &reference)
        .unwrap_or_else(|e| die(&e.to_string()));
    println!("smoke: uninterrupted run made {appends} journal appends");

    // Phase 2: same campaign, killed at a seeded append (plus a torn
    // journal tail), then restarted.
    let resumed_dir = dir.join("resumed");
    let crash_at = 2 + seed % appends.saturating_sub(2).max(1);
    println!("smoke: crashing the next incarnation after {crash_at} appends");
    let campaign = Campaign::open(smoke_config(resumed_dir.clone())).unwrap_or_else(|e| die(&e));
    campaign.crash_after_appends(crash_at);
    for spec in smoke_specs() {
        // Submissions may hit the simulated crash; that is the point.
        let _ = campaign.submit(spec);
    }
    campaign.run();
    if !campaign.crashed() {
        return fail("crash point was never reached");
    }
    drop(campaign);
    // Tear the journal tail: chop a seeded number of bytes off the last
    // record, as a kill mid-`write` would.
    let journal = resumed_dir.join("journal.jsonl");
    let len = std::fs::metadata(&journal).unwrap_or_else(|e| die(&e.to_string())).len();
    let tear = seed % 7;
    if tear > 0 && len > tear {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&journal)
            .unwrap_or_else(|e| die(&e.to_string()));
        file.set_len(len - tear).unwrap_or_else(|e| die(&e.to_string()));
        println!("smoke: tore {tear} bytes off the journal tail");
    }
    // Restart: replay, heal, resubmit (idempotent), finish the work.
    let campaign = Campaign::open(smoke_config(resumed_dir)).unwrap_or_else(|e| die(&e));
    for spec in smoke_specs() {
        campaign.submit(spec).unwrap_or_else(|e| die(&e));
    }
    campaign.run();
    let resumed = campaign.merged_report().unwrap_or_else(|e| die(&e)).render_json();
    drop(campaign);
    bioarch::report::write_atomic(dir.join("report_resumed.json"), &resumed)
        .unwrap_or_else(|e| die(&e.to_string()));
    if resumed != reference {
        return fail("kill-and-resume report differs from the uninterrupted run");
    }
    println!("smoke: kill-and-resume report is byte-identical");

    // Phase 3: resubmit everything; must be pure cache hits with zero
    // simulation (execute-phase) work.
    let mut campaign =
        Campaign::open(smoke_config(dir.join("resumed"))).unwrap_or_else(|e| die(&e));
    campaign.set_telemetry(TelemetryHub::new(TelemetryConfig::default()));
    let specs = smoke_specs();
    for spec in &specs {
        match campaign.submit(*spec) {
            Ok(SubmitOutcome::CacheHit) => {}
            other => {
                return fail(&format!("expected cache hit for {}, got {other:?}", spec.label()))
            }
        }
    }
    campaign.run();
    let report = campaign.merged_report().unwrap_or_else(|e| die(&e));
    let snapshot = campaign.take_telemetry().expect("hub attached").finish();
    let execute_ns = snapshot.host.counter("host.phase.execute_ns");
    let hits = snapshot.host.counter("campaign.cache_hits");
    if execute_ns != 0 {
        return fail(&format!("cache hits still spent {execute_ns} ns in execute phase"));
    }
    if hits != specs.len() as u64 {
        return fail(&format!("expected {} cache hits, counted {hits}", specs.len()));
    }
    println!("smoke: {hits} resubmissions served from cache with zero execute time");
    if report.is_degraded() {
        eprintln!("campaignd: smoke results degraded");
        return ExitCode::from(2);
    }
    println!("smoke: OK");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut take_value = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            die(&format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    let seed = take_value("--seed")
        .map_or(7, |v| v.parse().unwrap_or_else(|_| die(&format!("bad seed {v:?}"))));
    let workers = take_value("--workers")
        .map_or(2, |v| v.parse().unwrap_or_else(|_| die(&format!("bad worker count {v:?}"))));
    let chunk = take_value("--chunk")
        .map_or(20_000, |v| v.parse().unwrap_or_else(|_| die(&format!("bad chunk {v:?}"))));
    let scale = match take_value("--scale").as_deref() {
        None | Some("test") => Scale::Test,
        Some("classc") => Scale::ClassC,
        Some(other) => die(&format!("unknown scale {other:?}")),
    };
    let smoking = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let mut jobs: Vec<String> = Vec::new();
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        jobs = args.split_off(i + 1);
        args.remove(i);
    }
    let Some(dir) = args.first() else {
        die(concat!(
            "usage: campaignd <dir> [--scale test|classc] [--seed <n>] [--workers <n>] ",
            "[--chunk <insns>] [--jobs app/variant/hw/s<seed> ...]\n",
            "       campaignd --smoke <dir> [--seed <n>]"
        ));
    };
    if smoking {
        smoke(dir, seed)
    } else {
        serve(dir, scale, seed, workers, chunk, &jobs)
    }
}
