//! Differential testing between the compiled+simulated kernels and the
//! pure-Rust golden models, beyond what the workload builders check:
//! direct kernel-language programs compiled in every mode and compared
//! against `bioalign` on randomized inputs.

use bioalign::pairwise::{needleman_wunsch_score, smith_waterman_score};
use bioseq::generate::SeqGen;
use bioseq::{Alphabet, GapPenalties, SubstitutionMatrix};
use kernelc::Options;
use power5_sim::{CoreConfig, Machine};
use proptest::prelude::*;

/// Compile and run a single-kernel program; returns r3 at trap.
fn run_kernel(source: &str, options: &Options, setup: impl FnOnce(&mut Machine)) -> i32 {
    let compiled = kernelc::compile(source, options).expect("compiles");
    let prog = ppc_asm::assemble(&compiled.asm, 0x1000).expect("assembles");
    let mut m =
        Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, prog.symbols["__start"], 1 << 21);
    m.cpu_mut().gpr[1] = 0x1F_0000;
    setup(&mut m);
    let r = m.run_timed(200_000_000).expect("runs");
    assert!(r.halted, "kernel did not halt");
    m.cpu().gpr[3] as i32
}

/// A freestanding Smith-Waterman kernel (same recurrence as Fasta's
/// dropgsw, with everything passed through memory at fixed addresses).
fn sw_kernel_source() -> String {
    "
fn main(pb: ptr) -> int {
    let a: bptr = pb[0];
    let n = pb[1];
    let b: bptr = pb[2];
    let m = pb[3];
    let mat: ptr = pb[4];
    let work: ptr = pb[5];
    let j = 0;
    while (j <= m) {
        work[j] = 0;
        work[m + 1 + j] = -536870912;
        j = j + 1;
    }
    let best = 0;
    let i = 0;
    while (i < n) {
        let ca = a[i] * 24;
        let diag = 0;
        let e = -536870912;
        let vleft = 0;
        let j2 = 1;
        while (j2 <= m) {
            if (e < vleft - pb[6]) { e = vleft - pb[6]; }
            e = e - pb[7];
            let vup = work[j2];
            let f = work[m + 1 + j2];
            if (f < vup - pb[6]) { f = vup - pb[6]; }
            f = f - pb[7];
            let v = diag + mat[ca + b[j2 - 1]];
            if (v < e) { v = e; }
            if (v < f) { v = f; }
            if (v < 0) { v = 0; }
            diag = vup;
            work[j2] = v;
            work[m + 1 + j2] = f;
            vleft = v;
            if (best < v) { best = v; }
            j2 = j2 + 1;
        }
        i = i + 1;
    }
    return best;
}
"
    .to_string()
}

const A_ADDR: u32 = 0x10_0000;
const B_ADDR: u32 = 0x11_0000;
const MAT_ADDR: u32 = 0x12_0000;
const WORK_ADDR: u32 = 0x13_0000;
const PB_ADDR: u32 = 0x14_0000;

fn setup_sw(m: &mut Machine, a: &[u8], b: &[u8], wg: i32, ws: i32) {
    let matrix = SubstitutionMatrix::blosum62();
    m.mem_mut().write_bytes(A_ADDR, a).unwrap();
    m.mem_mut().write_bytes(B_ADDR, b).unwrap();
    m.mem_mut().write_i32s(MAT_ADDR, matrix.as_row_major()).unwrap();
    m.mem_mut()
        .write_i32s(
            PB_ADDR,
            &[
                A_ADDR as i32,
                a.len() as i32,
                B_ADDR as i32,
                b.len() as i32,
                MAT_ADDR as i32,
                WORK_ADDR as i32,
                wg,
                ws,
            ],
        )
        .unwrap();
    m.cpu_mut().gpr[3] = PB_ADDR;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulated_sw_matches_reference_for_all_compiler_modes(
        seed in 0u64..1000,
        alen in 4usize..40,
        blen in 4usize..40,
        wg in 2i32..14,
        ws in 1i32..4,
    ) {
        let mut g = SeqGen::new(Alphabet::Protein, seed);
        let a = g.uniform(alen);
        let b = g.uniform(blen);
        let expected = smith_waterman_score(
            a.codes(),
            b.codes(),
            &SubstitutionMatrix::blosum62(),
            GapPenalties::new(wg, ws),
        );
        let src = sw_kernel_source();
        for options in [
            Options::baseline(),
            Options::compiler_isel(),
            Options::compiler_max(),
        ] {
            let got = run_kernel(&src, &options, |m| setup_sw(m, a.codes(), b.codes(), wg, ws));
            prop_assert_eq!(got, expected, "mode {:?}", options);
        }
    }
}

#[test]
fn nw_reference_agrees_with_simulated_clustalw_kernel() {
    // The workload builder already validates this per-app; here we pin a
    // couple of concrete values so a regression shows the actual numbers.
    let mut g = SeqGen::new(Alphabet::Protein, 404);
    let a = g.uniform(25);
    let b = g.homolog(&a, 0.3, 0.1);
    let score = needleman_wunsch_score(
        a.codes(),
        b.codes(),
        &SubstitutionMatrix::blosum62(),
        GapPenalties::new(10, 2),
    );
    // Global alignment of a 25-residue protein against a close homolog
    // lands in a plausible BLOSUM62 range.
    assert!(score > 0 && score < 150, "score {score}");
}

#[test]
fn hand_and_compiler_binaries_differ_but_agree_semantically() {
    let src = sw_kernel_source();
    let base = kernelc::compile(&src, &Options::baseline()).unwrap();
    let isel = kernelc::compile(&src, &Options::compiler_isel()).unwrap();
    assert!(isel.asm.contains("isel"));
    assert!(!base.asm.contains("isel"));
    assert!(isel.converted_hammocks >= 5, "{}", isel.converted_hammocks);
    let mut g = SeqGen::new(Alphabet::Protein, 9);
    let a = g.uniform(30);
    let b = g.uniform(30);
    let r1 = run_kernel(&src, &Options::baseline(), |m| setup_sw(m, a.codes(), b.codes(), 10, 2));
    let r2 =
        run_kernel(&src, &Options::compiler_isel(), |m| setup_sw(m, a.codes(), b.codes(), 10, 2));
    assert_eq!(r1, r2);
}
