//! Telemetry-layer integration tests: the zero-interference contract
//! (reports are byte-identical with the hub attached), determinism of
//! the guest-side metrics across serial and parallel suite execution,
//! histogram merge algebra, and the streaming progress protocol.

use bioarch::apps::Scale;
use bioarch::experiments::Study;
use bioarch::report::Report;
use bioarch::telemetry::{
    check_progress_stream, metrics_json_to_report, SharedBuffer, TelemetryConfig, TelemetryHub,
};
use power5_sim::telemetry::Histogram;
use power5_sim::XorShift64;
use proptest::prelude::*;

fn hist_of(vals: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Histogram merge is associative and commutative — the property the
    /// parallel suite's metric folding relies on: workers retire jobs in
    /// a nondeterministic order, yet the merged registries must land on
    /// the exact state serial execution produces.
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        seed in 0u64..10_000,
        na in 0usize..40,
        nb in 0usize..40,
        nc in 0usize..40,
    ) {
        let mut rng = XorShift64::new(seed ^ 0xB10A_2C4D);
        let mut draw = |n: usize| -> Vec<u64> {
            (0..n)
                .map(|_| {
                    // Spread values across ~50 bucket magnitudes while
                    // keeping the summed totals clear of u64 overflow.
                    let shift = 14 + rng.below(50) as u32;
                    rng.next_u64() >> shift
                })
                .collect()
        };
        let (a, b, c) = (hist_of(&draw(na)), hist_of(&draw(nb)), hist_of(&draw(nc)));

        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));

        let all = merged(&merged(&a, &b), &c);
        prop_assert_eq!(all.count(), a.count() + b.count() + c.count());
        prop_assert_eq!(all.sum(), a.sum() + b.sum() + c.sum());
    }
}

/// The deterministic guest-side registry (instruction counts, sampling
/// profile, block-length and retire-latency histograms) is identical
/// whether the suite ran serially or across four workers.
#[test]
fn parallel_and_serial_guest_metrics_are_identical() {
    let snapshot = |threads: usize| {
        let mut study = Study::new(Scale::Test, 42);
        study.set_threads(threads);
        study.set_telemetry(TelemetryHub::new(TelemetryConfig::default()));
        study.table1().expect("table1 runs");
        study.take_telemetry().expect("hub attached").finish()
    };
    let serial = snapshot(1);
    let parallel = snapshot(4);

    assert!(serial.guest.counter("guest.instructions") > 0);
    assert_eq!(serial.guest, parallel.guest, "guest metrics diverged across thread counts");
    assert_eq!(serial.profile, parallel.profile, "merged guest profile diverged");
    assert!(!serial.profile.hot_regions.is_empty(), "profiler found no hot regions");

    // Same jobs retired with the same instruction counts (walls differ).
    let key = |s: &bioarch::telemetry::TelemetrySnapshot| {
        s.spans.iter().map(|j| (j.job.clone(), j.instructions)).collect::<Vec<_>>()
    };
    assert_eq!(key(&serial), key(&parallel));
}

/// The zero-interference contract: a suite run with the telemetry hub
/// attached renders byte-identical `bioarch-report/v1` documents to one
/// run without, while also producing a `bioarch-metrics/v1` document
/// with hot regions and job-wall percentiles.
#[test]
fn telemetry_leaves_suite_reports_byte_identical() {
    let run = |telemetry: bool| {
        let mut study = Study::new(Scale::Test, 7);
        study.set_threads(1);
        if telemetry {
            study.set_telemetry(TelemetryHub::new(TelemetryConfig::default()));
        }
        let rendered: Vec<String> =
            study.run_suite().reports.iter().map(Report::render_json).collect();
        (rendered, study.take_telemetry().map(TelemetryHub::finish))
    };
    let (plain, none) = run(false);
    let (instrumented, snapshot) = run(true);
    assert!(none.is_none());
    assert_eq!(plain, instrumented, "telemetry changed a suite report");

    let snapshot = snapshot.expect("hub attached");
    assert!(snapshot.jobs_retired > 0);
    let doc = snapshot.to_json();
    let flat = metrics_json_to_report(&doc).expect("metrics doc flattens");
    for metric in ["job.wall_ms.p50", "job.wall_ms.p99", "guest.instructions"] {
        assert!(flat.get(metric).is_some(), "metrics doc missing {metric}");
    }
    assert!(!snapshot.profile.hot_regions.is_empty());
    assert!(snapshot.profile.folded_stacks().iter().all(|l| l.starts_with("guest;")));
}

/// A real (parallel) study streaming through an in-memory sink produces
/// a well-formed event sequence: contiguous seq, monotone elapsed,
/// every started job retired, heartbeats present, terminal
/// `suite_finished`.
#[test]
fn suite_progress_stream_is_wellformed() {
    let buf = SharedBuffer::new();
    let mut study = Study::new(Scale::Test, 42);
    study.set_threads(2);
    study.set_telemetry(TelemetryHub::with_progress(
        TelemetryConfig { profiler_period: 4096, heartbeat_ms: 5 },
        Box::new(buf.clone()),
    ));
    study.table1().expect("table1 runs");
    let snapshot = study.take_telemetry().expect("hub attached").finish();

    let stats = check_progress_stream(&buf.contents()).expect("stream well-formed");
    assert_eq!(stats.jobs_started, 4, "table1 supervises one job per app");
    assert_eq!(stats.jobs_retired, 4);
    assert_eq!(stats.jobs_quarantined, 0);
    assert!(stats.finished);
    assert!(stats.heartbeats >= 1, "no heartbeat in {} events", stats.events);
    assert_eq!(snapshot.jobs_retired, 4);
    assert_eq!(snapshot.spans.len(), 4);
    assert!(snapshot.spans.iter().all(|s| s.phases.execute > 0));
}
