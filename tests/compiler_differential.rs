//! Differential testing of the whole compilation pipeline: randomly
//! generated kernel-language programs must produce identical results and
//! memory states when
//!
//! 1. interpreted directly on the AST ([`kernelc::interp`]), and
//! 2. compiled under *any* predication mode, assembled, and executed on
//!    the cycle-level POWER5 model.
//!
//! This is the test that guarantees the paper's code variants only change
//! *performance*, never *semantics*.

use kernelc::interp::{self, InterpMemory};
use kernelc::Options;
use power5_sim::{CoreConfig, Machine};
use proptest::prelude::*;

const WORDS_ADDR: u32 = 0x8000;
const BYTES_ADDR: u32 = 0x9000;
const N_WORDS: usize = 64;
const N_BYTES: usize = 64;

/// Build a random but always-terminating kernel from fuzz bytes. The
/// program has three int params, a word buffer and a byte buffer, one
/// bounded outer loop, and a body drawn from assignments, hammocks,
/// if/else, stores, and min/max intrinsics — the statement shapes the
/// if-converter cares about.
fn random_kernel(ops: &[(u8, u8, i16)], iters: u8) -> String {
    let mut body = String::new();
    for (k, (op, sel, imm)) in ops.iter().enumerate() {
        let v = ["x", "y", "z", "a", "b", "c"][(*sel % 6) as usize];
        let w = ["y", "z", "x", "c", "a", "b"][(*op % 6) as usize];
        let line = match op % 14 {
            0 => format!("x = {v} + {w};"),
            1 => format!("y = {v} - {imm};"),
            2 => format!("z = {v} * {w};"),
            3 => format!("x = max(x, {v});"),
            4 => format!("y = min(y, {v} + {imm});"),
            5 => format!("if (x < {v}) {{ x = {v}; }}"),
            6 => format!("if ({v} > {w}) {{ z = {v} - {w}; }} else {{ z = {w} - {v}; }}"),
            7 => format!("wbuf[i & 63] = {v};"),
            8 => format!("x = wbuf[({v} + {k}) & 63];"),
            9 => format!("y = y + sbuf[({v} + {k}) & 63];"),
            10 => "if (y < 0) { y = 0 - y; }".to_string(),
            11 => format!("z = ({v} >> ({imm} & 7)) ^ {w};"),
            12 => format!("if ({v} < {imm} && {w} > 0) {{ x = x + 1; }}"),
            _ => format!("sbuf[({k}) & 63] = {v};"),
        };
        body.push_str("        ");
        body.push_str(&line);
        body.push('\n');
    }
    format!(
        "fn main(a: int, b: int, c: int, wbuf: ptr, sbuf: bptr) -> int {{
    let x = a;
    let y = b;
    let z = c;
    let i = 0;
    while (i < {iters}) {{
{body}        i = i + 1;
    }}
    return x + y * 3 + z * 5 + wbuf[7] + sbuf[11];
}}
"
    )
}

fn all_options() -> [Options; 6] {
    [
        Options::baseline(),
        Options::hand_isel(),
        Options::hand_max(),
        Options::compiler_isel(),
        Options::compiler_max(),
        Options::combination(),
    ]
}

/// Ground truth via the AST interpreter. Returns (result, words, bytes).
fn run_interpreted(src: &str, args: [i32; 3]) -> (i32, Vec<i32>, Vec<u8>) {
    let tokens = kernelc::lexer::lex(src).expect("lexes");
    let program = kernelc::parser::parse(&tokens).expect("parses");
    let mut mem = InterpMemory::new(1 << 16);
    seed_memory_interp(&mut mem);
    let r = interp::run(
        &program,
        &[args[0], args[1], args[2], WORDS_ADDR as i32, BYTES_ADDR as i32],
        &mut mem,
        20_000_000,
    )
    .expect("interprets");
    let words = (0..N_WORDS).map(|i| mem.load_word(WORDS_ADDR + 4 * i as u32)).collect();
    let bytes = (0..N_BYTES).map(|i| mem.load_byte(BYTES_ADDR + i as u32) as u8).collect();
    (r, words, bytes)
}

fn seed_words() -> Vec<i32> {
    (0..N_WORDS as i32).map(|i| i * 37 - 400).collect()
}

fn seed_bytes() -> Vec<u8> {
    (0..N_BYTES as u32).map(|i| (i * 11 % 251) as u8).collect()
}

fn seed_memory_interp(mem: &mut InterpMemory) {
    mem.write_words(WORDS_ADDR, &seed_words());
    mem.write_bytes(BYTES_ADDR, &seed_bytes());
}

/// Compiled + simulated execution under `options`.
fn run_simulated(src: &str, options: &Options, args: [i32; 3]) -> (i32, Vec<i32>, Vec<u8>) {
    let compiled = kernelc::compile(src, options).expect("compiles");
    let prog = ppc_asm::assemble(&compiled.asm, 0x1000).expect("assembles");
    let mut m =
        Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, prog.symbols["__start"], 1 << 20);
    m.cpu_mut().gpr[1] = 0xF_0000;
    m.cpu_mut().gpr[3] = args[0] as u32;
    m.cpu_mut().gpr[4] = args[1] as u32;
    m.cpu_mut().gpr[5] = args[2] as u32;
    m.cpu_mut().gpr[6] = WORDS_ADDR;
    m.cpu_mut().gpr[7] = BYTES_ADDR;
    m.mem_mut().write_i32s(WORDS_ADDR, &seed_words()).unwrap();
    let bytes = seed_bytes();
    m.mem_mut().write_bytes(BYTES_ADDR, &bytes).unwrap();
    let result = m.run_timed(50_000_000).expect("simulates");
    assert!(result.halted, "did not halt under {options:?}");
    let words = m.mem().read_i32s(WORDS_ADDR, N_WORDS).unwrap();
    let out_bytes: Vec<u8> =
        (0..N_BYTES as u32).map(|i| m.mem().load_u8(BYTES_ADDR + i).unwrap()).collect();
    (m.cpu().gpr[3] as i32, words, out_bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn interpreter_and_all_compile_modes_agree(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), -50i16..50), 1..12),
        iters in 1u8..25,
        a in -1000i32..1000,
        b in -1000i32..1000,
        c in -1000i32..1000,
    ) {
        let src = random_kernel(&ops, iters);
        let args = [a, b, c];
        let truth = run_interpreted(&src, args);
        for options in all_options() {
            let got = run_simulated(&src, &options, args);
            prop_assert_eq!(
                &got.0, &truth.0,
                "result mismatch under {:?}\nprogram:\n{}", options, src
            );
            prop_assert_eq!(&got.1, &truth.1, "word memory mismatch under {:?}", options);
            prop_assert_eq!(&got.2, &truth.2, "byte memory mismatch under {:?}", options);
        }
    }
}

#[test]
fn known_tricky_program_agrees_everywhere() {
    // Hammock whose operands are loads, inside a loop with stores — the
    // exact pattern the if-converter's safety analysis wrestles with.
    let src = "
fn main(a: int, b: int, c: int, wbuf: ptr, sbuf: bptr) -> int {
    let x = a;
    let i = 0;
    while (i < 20) {
        let v = wbuf[i & 63];
        if (x < v) { x = v; }
        wbuf[(i + 1) & 63] = x - b;
        if (wbuf[i & 63] < c) { wbuf[i & 63] = c; }
        i = i + 1;
    }
    return x + wbuf[5];
}
";
    let truth = run_interpreted(src, [3, 7, -2]);
    for options in all_options() {
        let got = run_simulated(src, &options, [3, 7, -2]);
        assert_eq!(got, truth, "under {options:?}");
    }
}
