//! Golden-model oracle contract: full lockstep stays silent on healthy
//! workloads (and costs nothing architecturally), and the fault hooks'
//! incremental decode-cache repair is indistinguishable from a fresh
//! machine rebuilt from the same memory image.

use bioarch::apps::{App, Scale, Variant, Workload};
use power5_sim::machine::Machine;
use power5_sim::{CoreConfig, LockstepMode, Watchdog};
use proptest::prelude::*;

/// Every app's baseline at the table-1 configuration completes a full
/// run with the oracle checking *every* retired instruction: zero
/// divergences, validated output, and counters bit-identical to the
/// unchecked run (the checker observes, it never perturbs).
#[test]
fn full_lockstep_agrees_on_every_app() {
    let config = CoreConfig::power5();
    for app in App::all() {
        let wl = Workload::new(app, Scale::Test, 7);
        let plain = wl
            .run(Variant::Baseline, &config)
            .unwrap_or_else(|e| panic!("{app}: plain run failed: {e}"));
        let checked = wl
            .run_with_lockstep(Variant::Baseline, &config, LockstepMode::Full)
            .unwrap_or_else(|e| panic!("{app}: full-lockstep run failed: {e}"));
        assert!(checked.validated, "{app}: output mismatch under lockstep");
        assert_eq!(
            checked.counters, plain.counters,
            "{app}: the oracle must not perturb the timed run"
        );
    }
}

/// Every app's baseline also completes a *functional* full run through
/// the fused direct-threaded tier (DESIGN.md §16) with the oracle
/// checking every retired instruction: zero divergences, the golden
/// output, and a final machine state bit-identical to the scalar
/// (fusion-off) path.
#[test]
fn full_lockstep_functional_agrees_on_every_app_under_fusion() {
    let config = CoreConfig::power5();
    for app in App::all() {
        let wl = Workload::new(app, Scale::Test, 7);
        let mut fused = wl
            .prepare(Variant::Baseline, &config)
            .unwrap_or_else(|e| panic!("{app}: build failed: {e}"));
        fused.machine.set_fusion(true);
        fused.machine.set_lockstep(LockstepMode::Full);
        let rf = fused
            .machine
            .run_functional(u64::MAX)
            .unwrap_or_else(|t| panic!("{app}: fused lockstep run trapped: {t}"));
        assert!(rf.halted, "{app}: fused lockstep run stopped early ({:?})", rf.stop);
        let mut scalar = wl
            .prepare(Variant::Baseline, &config)
            .unwrap_or_else(|e| panic!("{app}: rebuild failed: {e}"));
        scalar.machine.set_fusion(false);
        let rs = scalar
            .machine
            .run_functional(u64::MAX)
            .unwrap_or_else(|t| panic!("{app}: scalar run trapped: {t}"));
        assert_eq!((rf.executed, rf.halted), (rs.executed, rs.halted), "{app}: retire counts");
        assert_eq!(
            fused.machine.checkpoint(),
            scalar.machine.checkpoint(),
            "{app}: fused and scalar final states differ"
        );
        let out = fused
            .machine
            .mem()
            .read_i32s(fused.out_addr, fused.out_len)
            .unwrap_or_else(|e| panic!("{app}: output unreadable: {e}"));
        assert_eq!(out, fused.golden, "{app}: output mismatch under fused lockstep");
    }
}

const BASE: u32 = 0x1000;

/// A small loop touching every structure the decode cache cares about:
/// straight-line runs, a conditional branch splitting a block, `isel`
/// and `maxw` (the predication fast paths), loads/stores, and `bdnz`.
fn program() -> Vec<u8> {
    let asm = "\
entry:
    li r4, 40
    mtctr r4
    lis r9, 8
    li r3, 1
loop:
    addi r3, r3, 3
    cmpwi cr0, r3, 60
    isel r5, r3, r6, 4*cr0+gt
    maxw r6, r3, r5
    bct 4*cr0+gt, skip
    xor r6, r6, r3
    stw r6, 16(r9)
skip:
    lwz r7, 16(r9)
    add r3, r3, r7
    bdnz loop
    trap
";
    ppc_asm::assemble(asm, BASE).expect("program assembles").bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any sequence of `flip_code_bit` / `restore` operations leaves the
    /// incrementally repaired decode and run-length tables byte-identical
    /// in behavior to a fresh machine rebuilt from the same memory image:
    /// same stop, same trap, same counters, same complete checkpoint.
    #[test]
    fn incremental_code_cache_repair_matches_full_rebuild(
        ops in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..24),
    ) {
        let image = program();
        let nwords = (image.len() / 4) as u16;
        let make = || {
            let mut m = Machine::new(CoreConfig::power5(), &image, BASE, BASE, 1 << 20);
            m.cpu_mut().gpr[1] = 0xF0000;
            m
        };
        let mut a = make();
        let pristine = a.checkpoint();
        for &(sel, kind) in &ops {
            if kind % 5 == 0 {
                a.restore(&pristine).expect("restore pristine");
            } else {
                let pc = BASE + u32::from(sel % nwords) * 4;
                prop_assert!(a.flip_code_bit(pc, u32::from(kind) & 31));
            }
        }
        // A fresh machine restored from A's snapshot re-decodes the whole
        // code region from memory; A's patched tables must behave the same.
        let snapshot = a.checkpoint();
        let mut b = make();
        b.restore(&snapshot).expect("restore snapshot");
        let budget = Watchdog { max_cycles: Some(200_000), max_instructions: Some(100_000) };
        a.set_watchdog(budget);
        b.set_watchdog(budget);
        let ra = a.run_timed(u64::MAX);
        let rb = b.run_timed(u64::MAX);
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(a.counters(), b.counters());
        prop_assert_eq!(a.checkpoint(), b.checkpoint());
    }
}
