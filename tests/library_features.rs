//! End-to-end exercise of the library surface a downstream user would
//! touch, spanning the extension features: statistics, trees, rendering,
//! serialization, and CPI reporting.

use bioalign::msa::pairwise_distances;
use bioalign::nj::neighbor_joining;
use bioalign::pairwise::{needleman_wunsch, smith_waterman};
use bioalign::render::{render_global, render_local};
use bioalign::ssearch::search;
use bioalign::stats::{compute_params, robinson_background};
use bioseq::generate::SeqGen;
use bioseq::hmm::ProfileHmm;
use bioseq::{fasta, Alphabet, GapPenalties, SubstitutionMatrix};
use power5_sim::{CoreConfig, Machine};

#[test]
fn a_small_analysis_pipeline_works_end_to_end() {
    let matrix = SubstitutionMatrix::blosum62();
    let gp = GapPenalties::new(10, 2);
    let mut g = SeqGen::new(Alphabet::Protein, 314);

    // 1. Generate a family, write and re-read it as FASTA.
    let family = g.family(5, 70, 0.25, 0.0);
    let text = fasta::to_string(&family);
    let reread = fasta::parse_str(&text, Alphabet::Protein).expect("round trips");
    assert_eq!(family, reread);

    // 2. Search a database and attach E-values to the hits.
    let query = family[0].clone();
    let db = g.database(&query, 30, 3, 50..100);
    let results = search(&query, &db, &matrix, gp, 50);
    assert!(!results.hits.is_empty());
    let params = compute_params(&matrix, &robinson_background()).expect("blosum62 admits stats");
    let db_len: usize = db.iter().map(bioseq::Sequence::len).sum();
    let best_e = params.evalue(results.hits[0].score, query.len(), db_len);
    let worst_e = params.evalue(results.hits.last().unwrap().score, query.len(), db_len);
    assert!(best_e <= worst_e);
    assert!(best_e < 1e-3, "top hit should be significant, E={best_e}");

    // 3. Align the query to its best hit and render the alignment.
    let subject = &db[results.hits[0].db_index];
    let local = smith_waterman(query.codes(), subject.codes(), &matrix, gp);
    let rendered = render_local(&local, &query, subject, &matrix, 60);
    assert!(rendered.identities > rendered.columns / 2);
    assert!(rendered.text.contains('|'));
    let global = needleman_wunsch(query.codes(), subject.codes(), &matrix, gp);
    let grendered = render_global(&global, &query, subject, &matrix, 60);
    assert!(grendered.columns >= query.len().max(subject.len()));

    // 4. Build a guide tree two ways.
    let dist = pairwise_distances(&family, &matrix, gp);
    let nj = neighbor_joining(&dist);
    let newick = nj.to_newick();
    assert!(newick.ends_with(';'));
    let mut leaves = nj.leaves();
    leaves.sort_unstable();
    assert_eq!(leaves, (0..5).collect::<Vec<_>>());

    // 5. Train a profile HMM on the family, serialize it, score with the
    //    reloaded copy.
    let hmm = ProfileHmm::from_family("fam", &family);
    let reloaded = ProfileHmm::from_text(&hmm.to_text()).expect("parses");
    assert_eq!(
        bioalign::hmmsearch::viterbi_score(&hmm, &query),
        bioalign::hmmsearch::viterbi_score(&reloaded, &query)
    );

    // 6. Run a kernel on the simulator and get a CPI stack out.
    let compiled = kernelc::compile(
        "fn main(n: int) -> int {
            let s = 0;
            let i = 0;
            while (i < n) { s = max(s, i * 7 - s); i = i + 1; }
            return s;
        }",
        &kernelc::Options::hand_max(),
    )
    .expect("compiles");
    let prog = ppc_asm::assemble(&compiled.asm, 0x1000).expect("assembles");
    let mut m =
        Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, prog.symbols["__start"], 1 << 20);
    m.cpu_mut().gpr[1] = 0xF0000;
    m.cpu_mut().gpr[3] = 500;
    m.run_timed(u64::MAX).expect("runs");
    let stack = m.counters().cpi_stack();
    assert!(stack.contains("committing"));
    assert!(stack.contains("%"));
}

#[test]
fn mutation_model_matrix_aligns_its_own_families_better_than_random() {
    use bioalign::pairwise::smith_waterman_score;
    let rate = 0.3;
    let m = SubstitutionMatrix::from_mutation_model(rate, 2.0);
    let gp = GapPenalties::new(10, 2);
    let mut g = SeqGen::new(Alphabet::Protein, 2718);
    let a = g.uniform(150);
    let hom = g.mutate(&a, rate);
    let unrelated = g.uniform(150);
    let s_hom = smith_waterman_score(a.codes(), hom.codes(), &m, gp);
    let s_rand = smith_waterman_score(a.codes(), unrelated.codes(), &m, gp);
    assert!(s_hom > 2 * s_rand.max(1), "homolog {s_hom} should dwarf random {s_rand}");
}
