//! The block-batched timed path must be bit-for-bit identical to the
//! per-instruction reference loop.
//!
//! `Machine::run_timed` dispatches to a batched loop that folds counter
//! updates per dispatch block and skips scoreboard scans for
//! dependency-free instructions; `Machine::run_timed_pinned` is the
//! pinned per-instruction reference. These tests drive every application
//! workload at `Scale::Test` through both paths and require identical
//! `Counters`, stall/branch site tables (which must still partition the
//! aggregates), checkpoints, and architectural output — including when
//! the run is split by a mid-stream checkpoint/restore.

use bioarch::apps::{App, Scale, Variant, Workload};
use power5_sim::fault::check_stall_partition;
use power5_sim::{Checkpoint, CoreConfig, Machine};

const BUDGET: u64 = 2_000_000_000;

/// Prepare one app workload and return its machine plus the output
/// window to verify against the golden vector.
fn prepared(app: App) -> (Machine, u32, usize, Vec<i32>) {
    let wl = Workload::new(app, Scale::Test, 7);
    let run = wl.prepare(Variant::Baseline, &CoreConfig::power5()).expect("prepare");
    (run.machine, run.out_addr, run.out_len, run.golden)
}

fn checkpoints_match(app: App, a: &Checkpoint, b: &Checkpoint) {
    // `Checkpoint` derives `PartialEq` over the complete state (registers,
    // sparse memory image, counters, predictor, scoreboard serialization),
    // so one comparison covers everything the timed paths could perturb.
    assert_eq!(a, b, "{}: batched and pinned checkpoints differ", app.name());
}

#[test]
fn batched_path_matches_pinned_reference_for_every_app() {
    for app in App::all() {
        let (mut batched, out_addr, out_len, golden) = prepared(app);
        let (mut pinned, ..) = prepared(app);
        for m in [&mut batched, &mut pinned] {
            m.set_branch_site_profiling(true);
            m.set_stall_site_profiling(true);
        }

        let rb = batched.run_timed(BUDGET).expect("batched run");
        let rp = pinned.run_timed_pinned(BUDGET).expect("pinned run");
        assert!(rb.halted && rp.halted, "{}: both paths must halt", app.name());
        assert_eq!(rb.executed, rp.executed, "{}: executed differs", app.name());

        // Aggregate counters are bit-identical.
        assert_eq!(batched.counters(), pinned.counters(), "{}: counters differ", app.name());

        // Site tables are identical and still partition the aggregates on
        // both sides (the batched path records sites inside the shared
        // scheduling stage, not in the folded per-block counters).
        assert_eq!(batched.stall_sites(), pinned.stall_sites(), "{}: stall sites", app.name());
        assert_eq!(batched.branch_sites(), pinned.branch_sites(), "{}: branch sites", app.name());
        for m in [&batched, &pinned] {
            check_stall_partition(&m.counters().stalls, &m.stall_sites())
                .unwrap_or_else(|e| panic!("{}: stall partition broken: {e}", app.name()));
        }

        // Full-state digest: registers, memory image, predictor tables,
        // scoreboard — everything a checkpoint captures.
        checkpoints_match(app, &batched.checkpoint(), &pinned.checkpoint());

        // And the run actually computed the workload's answer.
        let out = batched.mem().read_i32s(out_addr, out_len).expect("output window");
        assert_eq!(out, golden, "{}: batched output diverges from golden", app.name());
    }
}

/// Splitting the batched run with a checkpoint/restore round trip must
/// not perturb it: the mid-stream checkpoints of both paths agree, and a
/// machine restored from the batched mid-point finishes with the same
/// final state as an uninterrupted pinned run.
#[test]
fn batched_checkpoints_are_exact_at_mid_stream_cuts() {
    for app in App::all() {
        let (mut batched, ..) = prepared(app);
        let (mut pinned, ..) = prepared(app);

        // Cut at an instruction count low enough that no Test-scale app
        // has halted, and odd so it never coincides with a block boundary.
        const CUT: u64 = 100_003;
        let rb = batched.run_timed(CUT).expect("batched first half");
        let rp = pinned.run_timed_pinned(CUT).expect("pinned first half");
        assert_eq!(rb.executed, CUT, "{}: batched budget stop is exact", app.name());
        assert_eq!(rp.executed, CUT, "{}: pinned budget stop is exact", app.name());
        let mid = batched.checkpoint();
        checkpoints_match(app, &mid, &pinned.checkpoint());

        // Resume the batched side from its own checkpoint in a fresh
        // machine; both sides then run to completion on their usual path.
        let mut resumed = prepared(app).0;
        resumed.restore(&mid).expect("restore mid-stream checkpoint");
        let rr = resumed.run_timed(BUDGET).expect("resumed second half");
        let rp2 = pinned.run_timed_pinned(BUDGET).expect("pinned second half");
        assert!(rr.halted && rp2.halted, "{}: both second halves halt", app.name());
        assert_eq!(rr.executed, rp2.executed, "{}: second-half executed", app.name());
        assert_eq!(resumed.counters(), pinned.counters(), "{}: final counters", app.name());
        checkpoints_match(app, &resumed.checkpoint(), &pinned.checkpoint());
    }
}
