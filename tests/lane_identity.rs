//! Lane-gang identity contract, end to end: running N machines through
//! [`run_batch_functional`] must be bit-for-bit identical to N
//! independent [`Machine::run_functional`] calls — same
//! `Result<RunResult, Trap>`, same counters, same full checkpoint
//! (registers, memory, lifetime instruction totals) — across every
//! exit path: branch divergence, halt, memory fault, self-modifying
//! store, budget cut, and mid-block watchdog cut.

use power5_sim::{run_batch_functional, CoreConfig, LaneStats, Machine, Trunk, Watchdog};
use ppc_isa::Gpr;
use proptest::prelude::*;

fn machine(src: &str) -> Machine {
    let prog = ppc_asm::assemble(src, 0x1000).expect("test program assembles");
    let mut m = Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 1 << 20);
    m.cpu_mut().gpr[1] = 0x8_0000;
    m
}

/// A loop whose trip count comes from r5, so seeding lanes with
/// different values makes them leave the gang at different times.
const SEEDED_LOOP: &str = "
entry:
    li r3, 0
    mtctr r5
loop:
    addi r3, r3, 1
    xor r6, r3, r5
    bdnz loop
    trap
";

/// Each iteration loads through r2; a lane seeded with an
/// out-of-range pointer faults mid-loop while its neighbors continue.
const SEEDED_LOAD: &str = "
entry:
    li r3, 0
    mtctr r5
loop:
    addi r3, r3, 1
    lwz r6, 0(r2)
    bdnz loop
    trap
";

/// Each iteration stores r3 through r4; a lane whose pointer lands in
/// its own code image takes the SMC exit (and, here, eventually
/// executes the garbage it wrote over the final `trap`).
const SEEDED_STORE: &str = "
entry:
    li r3, 0
    mtctr r5
loop:
    addi r3, r3, 1
    stw r3, 0(r4)
    bdnz loop
    trap
";

/// Address of the `trap` at the end of [`SEEDED_STORE`]:
/// entry 0x1000 + 5 instructions.
const SEEDED_STORE_TRAP_ADDR: u32 = 0x1014;

/// Run `setups.len()` lanes both ways — scalar reference first, then
/// the ganged batch — and require bit-exact agreement on results,
/// counters, and full checkpoints. Returns the gang stats for extra
/// assertions about which paths were exercised.
fn identity_check(
    src: &str,
    setups: &[&dyn Fn(&mut Machine)],
    watchdog: Option<Watchdog>,
    budget: u64,
) -> LaneStats {
    let build = |setup: &&dyn Fn(&mut Machine)| {
        let mut m = machine(src);
        if let Some(w) = watchdog {
            m.set_watchdog(w);
        }
        setup(&mut m);
        m
    };
    let scalar: Vec<_> = setups
        .iter()
        .map(|s| {
            let mut m = build(s);
            let r = m.run_functional(budget);
            (m, r)
        })
        .collect();
    let gang: Vec<Machine> = setups.iter().map(build).collect();
    let (ganged, stats) = run_batch_functional(gang, budget);
    assert_eq!(stats.lanes, setups.len() as u64);
    for (i, ((sm, sr), (gm, gr))) in scalar.iter().zip(&ganged).enumerate() {
        assert_eq!(format!("{sr:?}"), format!("{gr:?}"), "lane {i} run result");
        assert_eq!(sm.counters(), gm.counters(), "lane {i} counters");
        assert_eq!(sm.insns_total(), gm.insns_total(), "lane {i} lifetime instructions");
        assert_eq!(sm.halted(), gm.halted(), "lane {i} halt state");
        assert!(sm.checkpoint() == gm.checkpoint(), "lane {i} checkpoint (registers/memory)");
    }
    stats
}

fn seed_r5(v: u32) -> impl Fn(&mut Machine) {
    move |m: &mut Machine| m.cpu_mut().gpr[5] = v
}

#[test]
fn staggered_trip_counts_are_bit_exact() {
    let lanes = [3u32, 1000, 250, 999, 4, 500, 251, 1];
    let setups: Vec<_> = lanes.iter().map(|&t| seed_r5(t)).collect();
    let refs: Vec<&dyn Fn(&mut Machine)> = setups.iter().map(|s| s as _).collect();
    let stats = identity_check(SEEDED_LOOP, &refs, None, u64::MAX);
    assert!(stats.ganged, "uniform machines must take the gang path");
    assert!(stats.gang_blocks > 0);
    // Short-trip lanes peel off on the back-edge while long-trip lanes
    // keep going, so the divergence exit must be represented.
    assert!(stats.exit_divergence > 0, "staggered trips must diverge: {stats:?}");
    assert!(stats.exit_halt > 0 || stats.exit_divergence >= 7, "stats: {stats:?}");
}

#[test]
fn faulting_lane_leaves_neighbors_running() {
    // Lane 2 loads through a pointer far past the 1 MiB memory image
    // and must trap; every other lane runs to its trap-halt unharmed.
    let ptrs: [(u32, u32); 4] =
        [(300, 0x8_0000), (500, 0x8_0000), (400, 0x40_0000), (700, 0x8_0000)];
    let setups: Vec<_> = ptrs
        .iter()
        .map(|&(trips, ptr)| {
            move |m: &mut Machine| {
                m.cpu_mut().gpr[5] = trips;
                m.cpu_mut().gpr[2] = ptr;
            }
        })
        .collect();
    let refs: Vec<&dyn Fn(&mut Machine)> = setups.iter().map(|s| s as _).collect();
    let stats = identity_check(SEEDED_LOAD, &refs, None, u64::MAX);
    assert!(stats.ganged);
    assert_eq!(stats.exit_fault, 1, "exactly one lane faults: {stats:?}");
}

#[test]
fn smc_lane_is_repaired_and_bit_exact() {
    // Lane 1 stores over its own final `trap` instruction every
    // iteration; the SMC exit must repair its code and the lane must
    // still match the scalar run exactly (including the trap it takes
    // when it finally executes the overwritten word).
    let ptrs: [(u32, u32); 4] =
        [(64, 0x8_0000), (5, SEEDED_STORE_TRAP_ADDR), (64, 0x8_0100), (64, 0x8_0200)];
    let setups: Vec<_> = ptrs
        .iter()
        .map(|&(trips, ptr)| {
            move |m: &mut Machine| {
                m.cpu_mut().gpr[5] = trips;
                m.cpu_mut().gpr[4] = ptr;
            }
        })
        .collect();
    let refs: Vec<&dyn Fn(&mut Machine)> = setups.iter().map(|s| s as _).collect();
    let stats = identity_check(SEEDED_STORE, &refs, None, u64::MAX);
    assert!(stats.ganged);
    assert_eq!(stats.exit_smc, 1, "exactly one lane self-modifies: {stats:?}");
}

#[test]
fn budget_cuts_are_bit_exact_at_every_offset() {
    // Sweep the shared budget across block boundaries so the cut lands
    // at every offset within the loop block at least once.
    let lanes = [40u32, 200, 120, 77];
    let setups: Vec<_> = lanes.iter().map(|&t| seed_r5(t)).collect();
    let refs: Vec<&dyn Fn(&mut Machine)> = setups.iter().map(|s| s as _).collect();
    for budget in 1..=32u64 {
        identity_check(SEEDED_LOOP, &refs, None, budget);
    }
}

#[test]
fn mid_block_watchdog_cuts_are_bit_exact() {
    // The instruction watchdog counts lifetime instructions, so odd
    // limits force the gang to hand single lanes back to the scalar
    // path mid-block. Sweep limits to cover every phase of the loop.
    let lanes = [500u32, 300, 900, 650];
    let setups: Vec<_> = lanes.iter().map(|&t| seed_r5(t)).collect();
    let refs: Vec<&dyn Fn(&mut Machine)> = setups.iter().map(|s| s as _).collect();
    for limit in (1..=41u64).step_by(4) {
        let w = Watchdog { max_cycles: None, max_instructions: Some(limit) };
        identity_check(SEEDED_LOOP, &refs, Some(w), u64::MAX);
    }
}

#[test]
fn per_lane_watchdogs_cut_independently() {
    // Different lifetime limits per lane: the gang must cut each lane
    // at its own allowance, not the gang minimum.
    let limits = [7u64, 1000, 23, 150];
    let setups: Vec<_> = limits
        .iter()
        .map(|&limit| {
            move |m: &mut Machine| {
                m.cpu_mut().gpr[5] = 400;
                m.set_watchdog(Watchdog { max_cycles: None, max_instructions: Some(limit) });
            }
        })
        .collect();
    let refs: Vec<&dyn Fn(&mut Machine)> = setups.iter().map(|s| s as _).collect();
    let stats = identity_check(SEEDED_LOOP, &refs, None, u64::MAX);
    assert!(stats.ganged);
    assert!(stats.exit_cut > 0, "tight watchdogs must cut lanes: {stats:?}");
}

#[test]
fn trunk_fork_rejoin_matches_fresh_runs() {
    // A trunk that advances, forks a faulty leg, and rejoins must leave
    // the machine bit-exact with a fresh machine driven straight to the
    // same position — the property the lane fault campaign rests on.
    let src = SEEDED_LOOP;
    let seed = |m: &mut Machine| m.cpu_mut().gpr[5] = 5000;
    let mut m = machine(src);
    seed(&mut m);
    let mut trunk = Trunk::new(&mut m);
    trunk.advance_to(100).expect("clean prefix runs");
    let ck = trunk.fork();
    // Faulty leg: corrupt a register, run a while, then abandon it.
    trunk.machine().cpu_mut().gpr[3] ^= 0xdead_beef;
    trunk.machine().run_timed(500).expect("faulty leg runs");
    trunk.rejoin(&ck).expect("rejoin restores the fork point");
    trunk.advance_to(2500).expect("clean run continues");
    assert_eq!(trunk.position(), 2500);

    let mut fresh = machine(src);
    seed(&mut fresh);
    fresh.run_timed(100).expect("fresh prefix");
    fresh.run_timed(2400).expect("fresh continuation");
    assert!(m.checkpoint() == fresh.checkpoint(), "rejoin must be bit-exact");
    assert_eq!(m.counters(), fresh.counters());
    assert_eq!(m.cpu().reg(Gpr(3)), fresh.cpu().reg(Gpr(3)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random lane widths, trip counts, budgets, and watchdog limits:
    /// the gang must stay bit-exact with scalar no matter where the
    /// lanes diverge, halt, or get cut.
    #[test]
    fn random_gangs_are_bit_exact(
        trips in proptest::collection::vec(1u32..600, 2..9),
        budget in 1u64..4000,
        limit in 0u64..2000,
    ) {
        let setups: Vec<_> = trips.iter().map(|&t| seed_r5(t)).collect();
        let refs: Vec<&dyn Fn(&mut Machine)> = setups.iter().map(|s| s as _).collect();
        // limit == 0 means "no watchdog" (the vendored proptest has no
        // Option strategy).
        let watchdog =
            (limit > 0).then_some(Watchdog { max_cycles: None, max_instructions: Some(limit) });
        identity_check(SEEDED_LOOP, &refs, watchdog, budget);
    }

    /// Random mixes where some lanes fault (bad load pointer) while
    /// others run clean, under a random budget.
    #[test]
    fn random_fault_mixes_are_bit_exact(
        lanes in proptest::collection::vec((1u32..400, any::<bool>()), 2..7),
        budget in 1u64..3000,
    ) {
        let setups: Vec<_> = lanes
            .iter()
            .map(|&(trips, faulty)| {
                move |m: &mut Machine| {
                    m.cpu_mut().gpr[5] = trips;
                    m.cpu_mut().gpr[2] = if faulty { 0x40_0000 } else { 0x8_0000 };
                }
            })
            .collect();
        let refs: Vec<&dyn Fn(&mut Machine)> = setups.iter().map(|s| s as _).collect();
        identity_check(SEEDED_LOAD, &refs, None, budget);
    }
}
