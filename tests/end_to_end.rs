//! Cross-crate integration: every application workload, compiled in every
//! code variant, runs on the timing model and reproduces the golden-model
//! results bit-for-bit; simulation is deterministic.

use bioarch::apps::{App, Scale, Variant, Workload};
use power5_sim::config::BtacConfig;
use power5_sim::CoreConfig;

#[test]
fn every_app_and_variant_validates_on_stock_power5() {
    for app in App::all() {
        let wl = Workload::new(app, Scale::Test, 1234);
        for variant in Variant::all() {
            let run = wl
                .run(variant, &CoreConfig::power5())
                .unwrap_or_else(|e| panic!("{app} {variant}: {e}"));
            assert!(run.validated, "{app} {variant} mismatches: {:?}", run.mismatches);
            assert!(run.counters.instructions > 0);
        }
    }
}

#[test]
fn hardware_features_never_change_results() {
    // BTAC, extra FXUs, and SMT are microarchitectural: outputs must be
    // identical, only cycle counts may move.
    let configs = [
        CoreConfig::power5().with_btac(BtacConfig::default()),
        CoreConfig::power5().with_fxus(4),
        CoreConfig::power5().with_smt(true),
        CoreConfig::power5().with_btac(BtacConfig::default()).with_fxus(3),
    ];
    for app in [App::Fasta, App::Hmmer] {
        let wl = Workload::new(app, Scale::Test, 77);
        for (i, cfg) in configs.iter().enumerate() {
            let run = wl.run(Variant::Combination, cfg).unwrap();
            assert!(run.validated, "{app} config {i}: {:?}", run.mismatches);
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let wl = Workload::new(App::Clustalw, Scale::Test, 5);
    let a = wl.run(Variant::Baseline, &CoreConfig::power5()).unwrap();
    let b = wl.run(Variant::Baseline, &CoreConfig::power5()).unwrap();
    assert_eq!(a.counters.cycles, b.counters.cycles);
    assert_eq!(a.counters.instructions, b.counters.instructions);
    assert_eq!(
        a.counters.branches.direction_mispredictions,
        b.counters.branches.direction_mispredictions
    );
    // A fresh workload with the same seed is also identical.
    let wl2 = Workload::new(App::Clustalw, Scale::Test, 5);
    let c = wl2.run(Variant::Baseline, &CoreConfig::power5()).unwrap();
    assert_eq!(a.counters.cycles, c.counters.cycles);
}

#[test]
fn different_seeds_change_the_workload_but_still_validate() {
    for seed in [11, 222, 3333] {
        let wl = Workload::new(App::Blast, Scale::Test, seed);
        let run = wl.run(Variant::CompilerIsel, &CoreConfig::power5()).unwrap();
        assert!(run.validated, "seed {seed}: {:?}", run.mismatches);
    }
}

#[test]
fn predication_shrinks_branches_and_helps_every_app() {
    for app in App::all() {
        let wl = Workload::new(app, Scale::Test, 99);
        let base = wl.run(Variant::Baseline, &CoreConfig::power5()).unwrap();
        let comb = wl.run(Variant::Combination, &CoreConfig::power5()).unwrap();
        assert!(
            comb.counters.branch_fraction() < base.counters.branch_fraction(),
            "{app}: branch fraction did not drop"
        );
        assert!(
            comb.counters.cycles < base.counters.cycles,
            "{app}: no cycle win from predication ({} vs {})",
            comb.counters.cycles,
            base.counters.cycles
        );
    }
}

#[test]
fn smt_taken_bubble_costs_cycles() {
    let wl = Workload::new(App::Fasta, Scale::Test, 31);
    let st = wl.run(Variant::Baseline, &CoreConfig::power5()).unwrap();
    let smt = wl.run(Variant::Baseline, &CoreConfig::power5().with_smt(true)).unwrap();
    assert!(
        smt.counters.cycles > st.counters.cycles,
        "3-cycle bubble should cost more than 2-cycle ({} vs {})",
        smt.counters.cycles,
        st.counters.cycles
    );
}
