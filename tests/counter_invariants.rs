//! Property-based invariants of the timing model's counter architecture,
//! checked over randomly generated (but always-terminating) programs and
//! over the application workloads.

use bioarch::apps::{App, Scale, Variant, Workload};
use power5_sim::fault::check_stall_partition;
use power5_sim::{CoreConfig, Counters, Machine};
use ppc_isa::Gpr;
use proptest::prelude::*;

fn counter_invariants(c: &Counters) {
    assert!(c.cycles >= c.instructions / 5, "commit width is 5/cycle");
    assert!(c.branches.taken <= c.branches.total);
    assert!(c.branches.conditional <= c.branches.total);
    assert!(c.branches.direction_mispredictions <= c.branches.conditional);
    assert!(c.l1d.misses <= c.l1d.accesses);
    assert!(c.l1i.misses <= c.l1i.accesses);
    assert!(c.l2.misses <= c.l2.accesses);
    // Every L2 access is caused by an L1 miss.
    assert!(c.l2.accesses <= c.l1i.misses + c.l1d.misses);
    assert!(c.loads + c.stores == c.lsu_ops);
    assert!(c.predicated_ops <= c.instructions);
    assert!(c.stalls.total() <= c.cycles, "stalls cannot exceed cycles");
    assert!(c.btac.correct + c.btac.incorrect <= c.btac.predictions);
    assert!(c.btac.predictions <= c.btac.lookups);
}

#[test]
fn invariants_hold_for_all_apps_and_variants() {
    for app in App::all() {
        let wl = Workload::new(app, Scale::Test, 7);
        for variant in [Variant::Baseline, Variant::HandMax, Variant::CompilerIsel] {
            let run = wl.run(variant, &CoreConfig::power5()).unwrap();
            counter_invariants(&run.counters);
        }
    }
}

/// A random but guaranteed-terminating program: a counted loop (via CTR)
/// whose body is a random mix of arithmetic, memory, and comparison
/// instructions, followed by `trap`.
fn random_program(body: &[u8], iters: u16) -> String {
    let mut asm = String::from("entry:\n");
    asm.push_str(&format!("    li r4, {}\n    mtctr r4\n", iters.max(1)));
    asm.push_str("    lis r9, 8\n"); // data pointer, 0x80000
    asm.push_str("loop:\n");
    for (i, &b) in body.iter().enumerate() {
        let line = match b % 11 {
            0 => "    addi r3, r3, 7".to_string(),
            1 => "    add r5, r3, r6".to_string(),
            2 => "    xor r6, r5, r3".to_string(),
            3 => "    mullw r7, r3, r5".to_string(),
            4 => "    lwz r8, 16(r9)".to_string(),
            5 => "    stw r3, 32(r9)".to_string(),
            6 => format!("    cmpwi cr0, r3, {}", (b as i32) * 3),
            7 => format!("    bct 4*cr0+gt, .Ls{i}\n.Ls{i}:"),
            8 => "    srawi r5, r3, 2".to_string(),
            9 => "    maxw r6, r3, r5".to_string(),
            _ => "    lbz r7, 5(r9)".to_string(),
        };
        asm.push_str(&line);
        asm.push('\n');
    }
    asm.push_str("    bdnz loop\n    trap\n");
    asm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_uphold_counter_invariants(
        body in proptest::collection::vec(any::<u8>(), 1..40),
        iters in 1u16..200,
    ) {
        let asm = random_program(&body, iters);
        let prog = ppc_asm::assemble(&asm, 0x1000).expect("random program assembles");
        let mut m = Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 1 << 20);
        m.cpu_mut().gpr[1] = 0xF0000;
        let result = m.run_timed(5_000_000).expect("runs");
        prop_assert!(result.halted);
        counter_invariants(&m.counters());
    }

    #[test]
    fn functional_and_timed_states_agree(
        body in proptest::collection::vec(any::<u8>(), 1..30),
        iters in 1u16..100,
    ) {
        let asm = random_program(&body, iters);
        let prog = ppc_asm::assemble(&asm, 0x1000).expect("assembles");
        let mut f = Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 1 << 20);
        let mut t = Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 1 << 20);
        f.cpu_mut().gpr[1] = 0xF0000;
        t.cpu_mut().gpr[1] = 0xF0000;
        let rf = f.run_functional(5_000_000).expect("functional runs");
        let rt = t.run_timed(5_000_000).expect("timed runs");
        prop_assert_eq!(rf.executed, rt.executed);
        for r in 0..32u8 {
            prop_assert_eq!(f.cpu().reg(Gpr(r)), t.cpu().reg(Gpr(r)), "r{} differs", r);
        }
        prop_assert_eq!(f.cpu().pc, t.cpu().pc);
    }

    /// The flat PC-indexed site tables must be invisible relative to the
    /// old hash-map profiling: per-PC sums still partition the aggregate
    /// counters, and the heatmap sort order is unchanged.
    #[test]
    fn site_profiles_partition_the_aggregates(
        body in proptest::collection::vec(any::<u8>(), 1..40),
        iters in 1u16..150,
    ) {
        let asm = random_program(&body, iters);
        let prog = ppc_asm::assemble(&asm, 0x1000).expect("assembles");
        let mut m = Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 1 << 20);
        m.cpu_mut().gpr[1] = 0xF0000;
        m.set_branch_site_profiling(true);
        m.set_stall_site_profiling(true);
        let result = m.run_timed(5_000_000).expect("runs");
        prop_assert!(result.halted);
        let c = m.counters();

        // Per-PC stall breakdowns partition the aggregate CPI stack.
        if let Err(e) = check_stall_partition(&c.stalls, &m.stall_sites()) {
            return Err(TestCaseError::fail(e));
        }

        // Per-PC branch stats partition the aggregate branch counters
        // (sites record conditional branches only, so `taken` is a
        // lower bound on the aggregate, which includes unconditionals).
        let sites = m.branch_sites();
        let executed: u64 = sites.iter().map(|(_, s)| s.executed).sum();
        let taken: u64 = sites.iter().map(|(_, s)| s.taken).sum();
        let mispredicted: u64 = sites.iter().map(|(_, s)| s.mispredicted).sum();
        prop_assert_eq!(executed, c.branches.conditional);
        prop_assert!(taken <= c.branches.taken);
        prop_assert_eq!(mispredicted, c.branches.direction_mispredictions);

        // Heatmap ordering: stall sites by total (desc) then PC (asc);
        // branch sites by mispredictions (desc) then PC (asc). Strict —
        // equal keys must still yield unique, ascending PCs.
        for w in m.stall_sites().windows(2) {
            let (a, b) = (&w[0], &w[1]);
            prop_assert!(
                a.1.total() > b.1.total() || (a.1.total() == b.1.total() && a.0 < b.0),
                "stall heatmap out of order at {:#x}/{:#x}", a.0, b.0
            );
        }
        for w in sites.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            prop_assert!(
                a.1.mispredicted > b.1.mispredicted
                    || (a.1.mispredicted == b.1.mispredicted && a.0 < b.0),
                "branch heatmap out of order at {:#x}/{:#x}", a.0, b.0
            );
        }

        // Every profiled PC is a real instruction slot in the image.
        let code_end = 0x1000 + prog.bytes.len() as u32;
        let stall_sites = m.stall_sites();
        let pcs = stall_sites.iter().map(|e| e.0).chain(sites.iter().map(|e| e.0));
        for pc in pcs {
            prop_assert!(pc >= 0x1000 && pc < code_end && pc.is_multiple_of(4));
        }
    }
}
