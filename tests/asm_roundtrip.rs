//! Assembler ↔ disassembler consistency: disassembling a compiled kernel
//! and re-assembling the text must reproduce the exact instruction words.
//! (Labels are lost, but every branch prints as a PC-relative `.+N`/`.-N`
//! form the assembler accepts, so the encoding round-trips.)

use kernelc::Options;
use proptest::prelude::*;

fn roundtrip_words(words: &[u32]) {
    // Disassemble to bare mnemonics (no address column).
    let text: String =
        words.iter().map(|&w| format!("{}\n", ppc_isa::decode(w).expect("word decodes"))).collect();
    let reassembled = ppc_asm::assemble(&text, 0).expect("disassembly re-assembles");
    let back: Vec<u32> = reassembled
        .bytes
        .chunks(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    assert_eq!(words, &back[..], "round trip changed the encoding");
}

#[test]
fn compiled_kernels_roundtrip_through_the_disassembler() {
    let src = "
fn helper(v: ptr, n: int) -> int {
    let s = 0;
    let i = 0;
    while (i < n) {
        if (s < v[i]) { s = v[i]; }
        i = i + 1;
    }
    return s;
}
fn main(v: ptr, n: int) -> int {
    let best = helper(v, n);
    if (best < 0) { best = 0; }
    return best * 2 - 7;
}
";
    for options in
        [Options::baseline(), Options::hand_max(), Options::compiler_isel(), Options::combination()]
    {
        let compiled = kernelc::compile(src, &options).expect("compiles");
        let prog = ppc_asm::assemble(&compiled.asm, 0).expect("assembles");
        let words: Vec<u32> = prog
            .bytes
            .chunks(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        roundtrip_words(&words);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decode_of_arbitrary_words_never_panics(word in any::<u32>()) {
        // Every u32 is either a valid instruction or a typed DecodeError;
        // the simulator relies on this to turn garbage fetches (e.g. after
        // an injected bit-flip) into recoverable traps instead of panics.
        let _ = ppc_isa::decode(word);
    }

    #[test]
    fn decode_is_the_inverse_of_encode(word in any::<u32>()) {
        // For any word that decodes, re-encoding the instruction and
        // decoding again must reproduce the same instruction exactly.
        if let Ok(insn) = ppc_isa::decode(word) {
            let reencoded = ppc_isa::encode(&insn);
            let back = ppc_isa::decode(reencoded).expect("re-encoded instruction decodes");
            prop_assert_eq!(&insn, &back, "decode(encode(insn)) != insn");
            // Encoding is a fixed point after one normalization pass.
            prop_assert_eq!(ppc_isa::encode(&back), reencoded);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_decodable_words_roundtrip(raw in proptest::collection::vec(any::<u32>(), 1..40)) {
        // Keep only words that decode; the rest of the stream is data.
        let words: Vec<u32> = raw
            .into_iter()
            .filter(|&w| ppc_isa::decode(w).is_ok())
            .collect();
        if !words.is_empty() {
            // Re-encode through the decoded form first (decode normalizes
            // reserved bits), then text-round-trip.
            let normalized: Vec<u32> = words
                .iter()
                .map(|&w| ppc_isa::encode(&ppc_isa::decode(w).expect("decodes")))
                .collect();
            roundtrip_words(&normalized);
        }
    }
}
