//! Campaign crash-consistency contract: kill the service at an
//! arbitrary seeded point (plus a torn journal tail), restart it, and
//! the merged report is byte-identical to an uninterrupted run; a
//! duplicate submission is served entirely from the run cache with zero
//! simulation work.

use bioarch::campaign::{Campaign, CampaignConfig, JobSpec, JobStatus, SubmitOutcome};
use bioarch::experiments::Hw;
use bioarch::telemetry::{TelemetryConfig, TelemetryHub};
use bioarch::{App, Scale, Variant};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bioarch-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn chunked_config(dir: PathBuf) -> CampaignConfig {
    let mut config = CampaignConfig::new(dir);
    config.workers = 2;
    config.chunk = 20_000;
    config
}

/// Two jobs that span several 20k-instruction checkpoint chunks each.
fn jobs() -> Vec<JobSpec> {
    vec![
        JobSpec {
            app: App::Fasta,
            variant: Variant::Baseline,
            hw: Hw::Stock,
            scale: Scale::Test,
            seed: 42,
        },
        JobSpec {
            app: App::Clustalw,
            variant: Variant::Baseline,
            hw: Hw::Stock,
            scale: Scale::Test,
            seed: 42,
        },
    ]
}

/// Run the job set in `dir` uninterrupted and return the merged report
/// bytes (plus the append count, the crash-point coordinate space).
fn uninterrupted(dir: PathBuf) -> (String, u64) {
    let campaign = Campaign::open(chunked_config(dir)).expect("open");
    for spec in jobs() {
        assert_eq!(campaign.submit(spec).expect("submit"), SubmitOutcome::Accepted);
    }
    let summary = campaign.run();
    assert_eq!(summary.completed, jobs().len() as u64);
    assert_eq!(summary.quarantined, 0);
    (campaign.merged_report().expect("merge").render_json(), campaign.journal_appends())
}

#[test]
fn kill_and_resume_is_byte_identical() {
    let (reference, appends) = uninterrupted(tmp("campaign-ref"));
    assert!(appends > 6, "need a few appends to pick crash points from ({appends})");

    // Kill at three seeded points across the journal's lifetime; one
    // iteration additionally tears bytes off the journal tail.
    for (i, seed) in [3u64, 17, 40].into_iter().enumerate() {
        let dir = tmp(&format!("campaign-kill{i}"));
        let crash_at = 1 + seed % (appends - 1);
        let campaign = Campaign::open(chunked_config(dir.clone())).expect("open");
        campaign.crash_after_appends(crash_at);
        for spec in jobs() {
            let _ = campaign.submit(spec); // may hit the simulated crash
        }
        campaign.run();
        assert!(campaign.crashed(), "crash point {crash_at} of {appends} never reached");
        drop(campaign);

        if i == 1 {
            // Torn write: chop into the final record.
            let journal = dir.join("journal.jsonl");
            let len = std::fs::metadata(&journal).expect("journal exists").len();
            let tear = 3.min(len.saturating_sub(1));
            std::fs::OpenOptions::new()
                .write(true)
                .open(&journal)
                .expect("reopen journal")
                .set_len(len - tear)
                .expect("truncate");
        }

        // Restart: replay + heal, resubmit idempotently, finish.
        let campaign = Campaign::open(chunked_config(dir.clone())).expect("reopen after crash");
        for spec in jobs() {
            campaign.submit(spec).expect("resubmit");
        }
        let summary = campaign.run();
        assert!(!summary.crashed);
        let resumed = campaign.merged_report().expect("merge").render_json();
        assert_eq!(
            resumed, reference,
            "crash at append {crash_at} (iteration {i}) changed the merged report"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(tmp("campaign-ref"));
}

#[test]
fn duplicate_submission_is_served_from_cache_with_zero_execute_time() {
    let dir = tmp("campaign-cache");
    let (reference, _) = uninterrupted(dir.clone());

    let mut campaign = Campaign::open(chunked_config(dir.clone())).expect("reopen");
    campaign.set_telemetry(TelemetryHub::new(TelemetryConfig::default()));
    for spec in jobs() {
        assert_eq!(campaign.submit(spec).expect("resubmit"), SubmitOutcome::CacheHit);
    }
    campaign.run();
    let report = campaign.merged_report().expect("merge").render_json();
    assert_eq!(report, reference, "cache-served report must match the original");
    let snapshot = campaign.take_telemetry().expect("hub").finish();
    assert_eq!(
        snapshot.host.counter("host.phase.execute_ns"),
        0,
        "a cache hit must perform zero simulation work"
    );
    assert_eq!(snapshot.host.counter("campaign.cache_hits"), jobs().len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_quarantine_is_deterministic_and_cached() {
    // A budget far below the kernel's length quarantines after the
    // attempt limit — and the degraded report is byte-stable across a
    // fresh re-run in a different directory.
    let run = |dir: PathBuf| -> String {
        let mut config = CampaignConfig::new(dir.clone());
        config.chunk = 2_000;
        config.budget = Some(5_000);
        config.max_attempts = 2;
        let campaign = Campaign::open(config).expect("open");
        let spec = jobs()[0];
        assert_eq!(campaign.submit(spec).expect("submit"), SubmitOutcome::Accepted);
        let summary = campaign.run();
        assert_eq!(summary.quarantined, 1);
        match campaign.status(&spec.id()) {
            Some(JobStatus::Quarantined { class, .. }) => assert_eq!(class, "timeout"),
            other => panic!("expected quarantine, got {other:?}"),
        }
        // Resubmission of a quarantined job is still a cache hit: the
        // degraded report is served without re-simulating.
        assert_eq!(campaign.submit(spec).expect("resubmit"), SubmitOutcome::CacheHit);
        let text = campaign.merged_report().expect("merge").render_json();
        let _ = std::fs::remove_dir_all(&dir);
        text
    };
    let a = run(tmp("campaign-quarantine-a"));
    let b = run(tmp("campaign-quarantine-b"));
    assert_eq!(a, b, "quarantine reports must be deterministic");
    assert!(a.contains("timeout"), "degraded report names the failure class");
}

#[test]
fn drain_checkpoints_and_resumes_cleanly() {
    let reference = {
        let dir = tmp("campaign-drain-ref");
        let campaign = Campaign::open(chunked_config(dir.clone())).expect("open");
        campaign.submit(jobs()[1]).expect("submit");
        campaign.run();
        let text = campaign.merged_report().expect("merge").render_json();
        let _ = std::fs::remove_dir_all(&dir);
        text
    };

    let dir = tmp("campaign-drain");
    let campaign = Campaign::open(chunked_config(dir.clone())).expect("open");
    campaign.submit(jobs()[1]).expect("submit");
    // Drain before running: workers claim nothing and return at once,
    // leaving the job pending — "finish-or-checkpoint, never abandon"
    // degenerates to "never start".
    campaign.drain();
    let summary = campaign.run();
    assert_eq!(summary.completed, 0);
    assert_eq!(campaign.status(&jobs()[1].id()), Some(JobStatus::Pending));
    drop(campaign);

    // A later incarnation picks the job back up and finishes it.
    let campaign = Campaign::open(chunked_config(dir.clone())).expect("reopen");
    let summary = campaign.run();
    assert_eq!(summary.completed, 1);
    assert_eq!(campaign.merged_report().expect("merge").render_json(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}
