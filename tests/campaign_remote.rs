//! Integration tests for the distributed campaign service: remote
//! worker shards over the `bioarch-wire/v1` protocol.
//!
//! The contract under test is the in-process crash-consistency contract
//! extended over TCP: however jobs reach workers — through a chaos
//! proxy, across worker kills, after a graceful drain — the merged
//! report must be byte-identical to an uninterrupted in-process run,
//! and every server-side transition must be idempotent under replay.
//!
//! Worker *processes* are spawned by re-invoking this test binary with
//! `BIOARCH_TEST_WORKER_ADDR` set: the [`worker_shard_entry`] test is a
//! no-op in a normal run and becomes the shard's main loop in a child.

use bioarch::campaign::remote::{
    self, ChaosConfig, ChaosProxy, Frame, FramedStream, Role, ServeOptions, WorkerOptions,
};
use bioarch::campaign::{Campaign, CampaignConfig, JobSpec, JobStatus};
use bioarch::experiments::Hw;
use bioarch::{App, Scale, Variant};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bioarch_remote_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn specs() -> Vec<JobSpec> {
    vec![
        JobSpec {
            app: App::Fasta,
            variant: Variant::Baseline,
            hw: Hw::Stock,
            scale: Scale::Test,
            seed: 42,
        },
        JobSpec {
            app: App::Clustalw,
            variant: Variant::Baseline,
            hw: Hw::Stock,
            scale: Scale::Test,
            seed: 42,
        },
    ]
}

fn config(dir: std::path::PathBuf) -> CampaignConfig {
    let mut config = CampaignConfig::new(dir);
    config.workers = 2;
    config.chunk = 20_000;
    config.lease_timeout_ms = 2_000;
    config
}

/// Reference run: the same submission executed in-process, whose merged
/// report every distributed variant must reproduce byte for byte.
fn reference_report(tag: &str) -> String {
    let campaign = Campaign::open(config(tmpdir(tag))).expect("open");
    for spec in specs() {
        campaign.submit(spec).expect("submit");
    }
    campaign.run();
    campaign.merged_report().expect("report").render_json()
}

/// Worker-shard entry point for child processes (no-op in a normal test
/// run). The child is this same binary re-invoked with an exact filter
/// on this test's name and the address in the environment.
#[test]
fn worker_shard_entry() {
    let Ok(addr) = std::env::var("BIOARCH_TEST_WORKER_ADDR") else { return };
    let worker: u64 = std::env::var("BIOARCH_TEST_WORKER_ID")
        .expect("worker id set")
        .parse()
        .expect("numeric worker id");
    let mut opts = WorkerOptions::new(addr, worker);
    opts.max_net_attempts = 20;
    remote::run_worker(&opts);
    // Exit without letting libtest print a summary the parent would
    // mistake for its own.
    std::process::exit(0);
}

fn spawn_worker_child(addr: &str, worker: u64) -> std::process::Child {
    let exe = std::env::current_exe().expect("current_exe");
    std::process::Command::new(exe)
        .args(["worker_shard_entry", "--exact", "--nocapture", "--test-threads=1"])
        .env("BIOARCH_TEST_WORKER_ADDR", addr)
        .env("BIOARCH_TEST_WORKER_ID", worker.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn worker child")
}

/// Two worker shard processes behind a seeded chaos proxy, one of them
/// kill -9'd mid-campaign and respawned: the merged report must be
/// byte-identical to the uninterrupted in-process run.
#[test]
fn chaos_and_a_killed_worker_preserve_byte_identity() {
    let reference = reference_report("ref_chaos");
    let campaign = Campaign::open(config(tmpdir("chaos"))).expect("open");
    for spec in specs() {
        campaign.submit(spec).expect("submit");
    }
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server_addr = listener.local_addr().expect("addr");
    let chaos = ChaosConfig {
        seed: 11,
        drop_per_mille: 25,
        dup_per_mille: 25,
        delay_per_mille: 15,
        max_delay_ms: 10,
        corrupt_per_mille: 8,
        truncate_per_mille: 8,
        sever_after_frames: Some((0, 3)),
    };
    let proxy = ChaosProxy::start(server_addr, chaos).expect("proxy");
    let proxy_addr = proxy.addr().to_string();
    std::thread::scope(|s| {
        let server = s.spawn(|| {
            remote::serve(&campaign, listener, &ServeOptions { poll_ms: 50, deadline: None })
        });
        let mut children =
            vec![spawn_worker_child(&proxy_addr, 1), spawn_worker_child(&proxy_addr, 2)];
        let mut killed = false;
        while !server.is_finished() {
            let terminal = campaign
                .job_ids()
                .iter()
                .filter(|id| {
                    matches!(
                        campaign.status(id),
                        Some(JobStatus::Completed | JobStatus::Quarantined { .. })
                    )
                })
                .count();
            if !killed && terminal >= 1 {
                let _ = children[0].kill();
                killed = true;
            }
            for (i, child) in children.iter_mut().enumerate() {
                if let Ok(Some(_)) = child.try_wait() {
                    if campaign.outstanding() > 0 {
                        *child = spawn_worker_child(&proxy_addr, i as u64 + 1);
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let grace = Instant::now() + Duration::from_secs(10);
        for child in &mut children {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    _ if Instant::now() >= grace => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    _ => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        }
        server.join().expect("server thread").expect("serve");
    });
    let remote_report = campaign.merged_report().expect("report").render_json();
    assert_eq!(remote_report, reference, "chaos run must be byte-identical");
}

/// A worker that retires the same job twice (reconnect replay) gets an
/// `ack` both times and the job is counted once — idempotent
/// re-delivery keyed by the content-addressed digest.
#[test]
fn double_retire_is_a_cache_hit_not_a_double_count() {
    let campaign = Campaign::open(config(tmpdir("dup"))).expect("open");
    let spec = specs().remove(0);
    campaign.submit(spec).expect("submit");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::scope(|s| {
        let server = s.spawn(|| {
            remote::serve(&campaign, listener, &ServeOptions { poll_ms: 50, deadline: None })
        });
        let stream = TcpStream::connect(addr).expect("connect");
        let mut fs = FramedStream::new(stream);
        fs.set_deadlines(Some(5_000), Some(5_000)).expect("deadlines");
        fs.send(&Frame::Hello { role: Role::Worker, worker: 9 }).expect("hello");
        assert!(matches!(fs.recv(), Ok(Frame::HelloAck { .. })));
        fs.send(&Frame::Fetch { worker: 9 }).expect("fetch");
        let Ok(Frame::Job { job, .. }) = fs.recv() else { panic!("expected a job") };
        // A parseable (empty) report document: merged_report is not the
        // subject here, idempotent state transitions are.
        let report = bioarch::report::Report::new("job").render_json();
        let retire = Frame::Retire { job: job.clone(), insns: 1, report: report.clone() };
        fs.send(&retire).expect("retire 1");
        fs.send(&retire).expect("retire 2");
        assert!(
            matches!(fs.recv(), Ok(Frame::Ack { job: j, .. }) if j == job),
            "first retire must ack"
        );
        assert!(
            matches!(fs.recv(), Ok(Frame::Ack { job: j, .. }) if j == job),
            "replayed retire must ack as a duplicate, not fail"
        );
        server.join().expect("server thread").expect("serve");
        assert_eq!(campaign.status(&job), Some(JobStatus::Completed));
        let cache_file = campaign.config().dir.join("cache").join(format!("{job}.json"));
        let cached = std::fs::read_to_string(cache_file).expect("cache");
        assert_eq!(cached, report, "cache must hold the retired bytes exactly once");
    });
}

/// A subscriber — even one that connects after jobs have retired — gets
/// every result exactly once, then `campaign_done` with the server's
/// terminal counts.
#[test]
fn late_subscriber_replays_the_full_backlog() {
    let reference = reference_report("ref_sub");
    let campaign = Campaign::open(config(tmpdir("sub"))).expect("open");
    for spec in specs() {
        campaign.submit(spec).expect("submit");
    }
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::scope(|s| {
        let server = s.spawn(|| {
            remote::serve(&campaign, listener, &ServeOptions { poll_ms: 50, deadline: None })
        });
        let worker = s.spawn(move || {
            let mut opts = WorkerOptions::new(addr.to_string(), 1);
            opts.max_net_attempts = 20;
            remote::run_worker(&opts)
        });
        // Late subscriber: wait until at least one job is already
        // terminal before connecting, so the replay path is exercised.
        while campaign
            .job_ids()
            .iter()
            .all(|id| !matches!(campaign.status(id), Some(JobStatus::Completed)))
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        let stream = TcpStream::connect(addr).expect("connect");
        let mut fs = FramedStream::new(stream);
        fs.set_deadlines(Some(30_000), Some(5_000)).expect("deadlines");
        fs.send(&Frame::Hello { role: Role::Subscriber, worker: 0 }).expect("hello");
        assert!(matches!(fs.recv(), Ok(Frame::HelloAck { .. })));
        let mut labels = Vec::new();
        let (completed, quarantined) = loop {
            match fs.recv() {
                Ok(Frame::Result { label, .. }) => labels.push(label),
                Ok(Frame::CampaignDone { completed, quarantined }) => {
                    break (completed, quarantined)
                }
                other => panic!("unexpected subscriber frame: {other:?}"),
            }
        };
        let summary = worker.join().expect("worker thread");
        assert!(summary.clean, "worker must end on the server's done");
        server.join().expect("server thread").expect("serve");
        let mut want: Vec<String> = specs().iter().map(|s| s.label()).collect();
        labels.sort();
        want.sort();
        assert_eq!(labels, want, "subscriber must see every result exactly once");
        assert_eq!(completed + quarantined, want.len() as u64);
    });
    assert_eq!(campaign.merged_report().expect("report").render_json(), reference);
}

/// Graceful drain over the wire: a deadline of zero releases in-flight
/// work (degraded report), and a second serve finishes the campaign
/// with a report byte-identical to the uninterrupted run.
#[test]
fn deadline_drain_then_resume_completes_byte_identically() {
    let reference = reference_report("ref_drain");
    let dir = tmpdir("drain");
    {
        let campaign = Campaign::open(config(dir.clone())).expect("open");
        for spec in specs() {
            campaign.submit(spec).expect("submit");
        }
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let summary = remote::serve(
            &campaign,
            listener,
            &ServeOptions { poll_ms: 50, deadline: Some(Duration::from_secs(0)) },
        )
        .expect("serve");
        assert!(summary.drained, "zero deadline must drain");
        let report = campaign.merged_report().expect("report");
        assert!(report.is_degraded(), "drained campaign must report degraded");
    }
    // Re-open (journal replay) and finish the remaining work remotely.
    let campaign = Campaign::open(config(dir)).expect("reopen");
    for spec in specs() {
        campaign.submit(spec).expect("resubmit");
    }
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::scope(|s| {
        let server = s.spawn(|| {
            remote::serve(&campaign, listener, &ServeOptions { poll_ms: 50, deadline: None })
        });
        let worker = s.spawn(move || {
            let mut opts = WorkerOptions::new(addr.to_string(), 3);
            opts.max_net_attempts = 20;
            remote::run_worker(&opts)
        });
        assert!(worker.join().expect("worker thread").clean);
        server.join().expect("server thread").expect("serve");
    });
    assert_eq!(campaign.merged_report().expect("report").render_json(), reference);
}
