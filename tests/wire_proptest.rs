//! Property-based coverage of the `bioarch-wire/v1` frame codec: every
//! frame round-trips byte-exactly, and the strict parser answers
//! truncation, oversizing, and byte corruption with typed errors —
//! never a panic, never a silently wrong frame.

use bioarch::campaign::remote::{
    decode_frame, encode_frame, frame_span, Frame, Role, WireError, MAX_FRAME,
};
use bioarch::campaign::JobSpec;
use bioarch::experiments::Hw;
use bioarch::{App, Scale, Variant};
use proptest::prelude::*;

/// A string off a random byte vector: lossy-decoded so every input is
/// valid UTF-8, salted with the characters the escaper must handle
/// (quotes, backslashes, newlines, braces, control bytes).
fn wire_string(bytes: &[u8]) -> String {
    let mut s = String::from_utf8_lossy(bytes).into_owned();
    for (i, b) in bytes.iter().enumerate() {
        match b % 7 {
            0 => s.push('"'),
            1 => s.push('\\'),
            2 => s.push('\n'),
            3 => s.push('{'),
            4 => s.push('\u{1}'),
            5 => s.push('\t'),
            _ => s.push(char::from(b'a' + (i % 26) as u8)),
        }
    }
    s
}

fn arbitrary_spec(pick: u64) -> JobSpec {
    let apps = App::all();
    let variants = Variant::all();
    let hws = [Hw::Stock, Hw::Btac, Hw::BtacFxus(3)];
    JobSpec {
        app: apps[(pick % apps.len() as u64) as usize],
        variant: variants[(pick / 7 % variants.len() as u64) as usize],
        hw: hws[(pick / 31 % hws.len() as u64) as usize],
        scale: Scale::Test,
        seed: pick,
    }
}

/// One frame of every kind, fields driven by the RNG-provided scalars.
fn arbitrary_frame(kind: u8, a: u64, b: u64, text: &[u8]) -> Frame {
    let s = wire_string(text);
    match kind % 15 {
        0 => Frame::Hello {
            role: if a & 1 == 0 { Role::Worker } else { Role::Subscriber },
            worker: a,
        },
        1 => Frame::HelloAck { lease_timeout_ms: a },
        2 => Frame::Fetch { worker: a },
        3 => Frame::Job {
            job: s.clone(),
            spec: arbitrary_spec(a),
            attempts: (b % 100) as u32,
            chunk: a,
            budget: if b & 1 == 0 { None } else { Some(b) },
            max_attempts: (a % 10) as u32,
            resume: if b & 2 == 0 { None } else { Some(s) },
        },
        4 => Frame::Idle,
        5 => Frame::Done,
        6 => Frame::Heartbeat { worker: a, job: s },
        7 => Frame::Progress { job: s.clone(), insns: a, checkpoint: s },
        8 => Frame::Retry {
            job: s.clone(),
            attempt: (a % 50) as u32,
            class: "timeout".to_string(),
            checkpoint: if b & 1 == 0 { None } else { Some(s) },
        },
        9 => Frame::Retire { job: s.clone(), insns: b, report: s },
        10 => Frame::Quarantine { job: s.clone(), class: "trap".to_string(), message: s },
        11 => Frame::Release { job: s, worker: a },
        12 => Frame::Ack { job: s, drain: b & 1 == 0 },
        13 => Frame::Result { job: s.clone(), label: s.clone(), report: s },
        _ => Frame::CampaignDone { completed: a, quarantined: b },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode → decode is the identity for every frame kind, whatever
    /// bytes its string fields carry. Numeric fields are drawn from the
    /// f64-exact integer domain (below 2^53): the JSON layer carries
    /// numbers as doubles, which is the wire format's documented numeric
    /// range and leaves nine orders of magnitude of headroom over any
    /// real instruction count.
    #[test]
    fn every_frame_roundtrips_byte_exactly(
        kind in any::<u8>(),
        a in 0u64..(1 << 53),
        b in 0u64..(1 << 53),
        text in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let frame = arbitrary_frame(kind, a, b, &text);
        let bytes = encode_frame(&frame);
        let (decoded, used) = decode_frame(&bytes).expect("round-trip");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    /// Every proper prefix of a valid frame is a typed `Truncated` with
    /// an honest byte count — the framing layer never guesses.
    #[test]
    fn every_prefix_is_typed_truncation(
        kind in any::<u8>(),
        a in any::<u64>(),
        text in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let bytes = encode_frame(&arbitrary_frame(kind, a, a, &text));
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated { have, need }) => {
                    prop_assert_eq!(have, cut);
                    prop_assert!(need > cut);
                }
                other => return Err(TestCaseError::fail(format!("prefix {cut}: {other:?}"))),
            }
        }
    }

    /// Flipping any single byte of a framed message either still decodes
    /// to *some* frame (the flip landed in a string payload) or yields a
    /// typed error — never a panic, and framing errors are classified.
    #[test]
    fn single_byte_corruption_never_panics(
        kind in any::<u8>(),
        a in any::<u64>(),
        text in proptest::collection::vec(any::<u8>(), 0..60),
        victim in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_frame(&arbitrary_frame(kind, a, a, &text));
        let at = victim % bytes.len();
        bytes[at] ^= flip;
        match decode_frame(&bytes) {
            Ok((_, used)) => prop_assert!(used <= bytes.len()),
            Err(
                WireError::Truncated { .. }
                | WireError::Oversized { .. }
                | WireError::BadLength(_)
                | WireError::Unterminated
                | WireError::BadJson(_)
                | WireError::MissingField(_)
                | WireError::UnknownFrame(_)
                | WireError::UnknownRole(_)
                | WireError::Unsupported(_),
            ) => {}
            Err(other) => return Err(TestCaseError::fail(format!("untyped error: {other}"))),
        }
    }

    /// Random garbage — arbitrary bytes that never came from the encoder
    /// — is always rejected with a typed error or honestly truncated.
    #[test]
    fn arbitrary_garbage_is_rejected_not_panicked(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        if let Ok((_, used)) = decode_frame(&bytes) {
            prop_assert!(used <= bytes.len());
        }
        // The framing-only scanner must agree with the strict decoder on
        // whether a complete frame is even present.
        if let Ok(span) = frame_span(&bytes) {
            prop_assert!(span <= bytes.len());
        }
    }

    /// Length prefixes above the frame cap are `Oversized`, not an
    /// attempted multi-megabyte allocation.
    #[test]
    fn oversized_lengths_are_rejected(len in (MAX_FRAME as u64 + 1)..=0xffff_ffff) {
        let mut bytes = format!("{len:08x}").into_bytes();
        bytes.extend_from_slice(b"{}");
        match frame_span(&bytes) {
            Err(WireError::Oversized { len: l, max }) => {
                prop_assert_eq!(l, len as usize);
                prop_assert_eq!(max, MAX_FRAME);
            }
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }
}
