//! Robustness contract: faults, watchdogs, and per-app failures must
//! degrade gracefully — typed errors, schema-valid `degraded` reports,
//! and a suite that always completes — never a panic, hang, or abort.

use bioarch::apps::{App, RunError, Scale, Variant, Workload};
use bioarch::checkpoint;
use bioarch::experiments::Study;
use bioarch::report::{Report, REPORT_SCHEMA};
use power5_sim::fault::{check_invariants, check_stall_partition, FaultPlan, InjectionWindow};
use power5_sim::{CoreConfig, StallBreakdown, StopReason, Watchdog};

/// A watchdog-expired run returns a graceful `Timeout` carrying partial
/// counters and a stall profile, and that failure renders as a
/// schema-valid `degraded: true` report.
#[test]
fn watchdog_timeout_degrades_instead_of_hanging() {
    let wl = Workload::new(App::Fasta, Scale::Test, 42);
    let tight = Watchdog { max_cycles: Some(2_000), max_instructions: None };
    let err = wl
        .run_with_watchdog(Variant::Baseline, &CoreConfig::power5(), tight)
        .expect_err("a 2k-cycle budget must expire mid-kernel");
    let RunError::Timeout { kind, partial, .. } = &err else {
        panic!("expected Timeout, got {err:?}");
    };
    // The partial run is a usable heatmap, not a husk: counters advanced
    // and the budget that fired is identified.
    assert!(partial.counters.cycles > 0 && partial.counters.cycles <= 2_000 + 64);
    assert!(partial.counters.instructions > 0);
    let _ = kind;

    // The failure round-trips through the report schema as degraded.
    let mut report = Report::new("fig1");
    report.degrade(format!("fasta baseline: {err}"));
    let text = report.render_json();
    assert!(text.contains(REPORT_SCHEMA));
    let parsed = Report::parse(&text).expect("degraded report parses");
    assert!(parsed.is_degraded());
    assert!(parsed.failures[0].message.contains("watchdog"));
}

/// With an impossible budget every experiment fails, yet `run_suite`
/// still completes and yields one well-formed degraded document per
/// table/figure.
#[test]
fn suite_completes_with_degraded_reports_under_per_app_failures() {
    let mut study = Study::new(Scale::Test, 42);
    study.set_watchdog(Watchdog { max_cycles: Some(500), max_instructions: None });
    let suite = study.run_suite();
    assert_eq!(suite.reports.len(), 8, "every experiment must produce a document");
    assert!(suite.is_degraded());
    assert!(!suite.failures().is_empty());
    for report in &suite.reports {
        assert!(report.is_degraded(), "{}: budget made success impossible", report.experiment);
        let parsed = Report::parse(&report.render_json())
            .unwrap_or_else(|e| panic!("{}: degraded report must parse: {e}", report.experiment));
        assert_eq!(parsed.failures, report.failures);
        // Suite context survives degradation.
        assert!(parsed.context.iter().any(|(k, _)| k == "seed"));
    }
}

/// Checkpoint a workload mid-run, serialize it to JSON text, restore it
/// into a fresh machine, and finish: the result is bit-exact with an
/// uninterrupted run.
#[test]
fn workload_checkpoint_resume_is_bit_exact() {
    let config = CoreConfig::power5();
    let wl = Workload::new(App::Clustalw, Scale::Test, 7);

    // Uninterrupted reference run.
    let mut gold = wl.prepare(Variant::Baseline, &config).expect("prepare");
    let done = gold.machine.run_timed(u64::MAX).expect("clean run");
    assert!(done.halted);
    let gold_counters = gold.machine.counters();
    let gold_out = gold.machine.mem().read_i32s(gold.out_addr, gold.out_len).expect("output");
    assert_eq!(gold_out, gold.golden);

    // Same workload, stopped partway, frozen to text, thawed elsewhere.
    let mut first = wl.prepare(Variant::Baseline, &config).expect("prepare");
    let part = first.machine.run_timed(gold_counters.instructions / 2).expect("first half");
    assert!(matches!(part.stop, StopReason::Budget));
    let frozen = checkpoint::render(&first.machine.checkpoint());

    let mut second = wl.prepare(Variant::Baseline, &config).expect("prepare");
    let thawed = checkpoint::parse(&frozen).expect("checkpoint text parses");
    second.machine.restore(&thawed).expect("restore");
    let fin = second.machine.run_timed(u64::MAX).expect("second half");
    assert!(fin.halted);
    assert_eq!(second.machine.counters(), gold_counters, "counters must match bit-exactly");
    let out = second.machine.mem().read_i32s(second.out_addr, second.out_len).expect("output");
    assert_eq!(out, gold_out);
}

/// A watchdog-expired run's *partial* counters and stall-site heatmap
/// still satisfy the counter invariants and the stall-partition identity
/// — the timeout path must carry complete in-flight accounting, not a
/// truncated husk.
#[test]
fn timeout_partial_counters_satisfy_the_stall_partition() {
    let config = CoreConfig::power5();
    for (app, budget) in [(App::Fasta, 2_000u64), (App::Hmmer, 30_000)] {
        let wl = Workload::new(app, Scale::Test, 42);
        let tight = Watchdog { max_cycles: Some(budget), max_instructions: None };
        let err = wl
            .run_with_watchdog(Variant::Baseline, &config, tight)
            .expect_err("budget must expire mid-kernel");
        let RunError::Timeout { partial, .. } = &err else {
            panic!("{app}: expected Timeout, got {err:?}");
        };
        check_invariants(&partial.counters)
            .unwrap_or_else(|e| panic!("{app}: partial counter invariants: {e}"));
        let sites: Vec<(u32, StallBreakdown)> =
            partial.stall_sites.iter().map(|s| (s.pc, s.breakdown)).collect();
        check_stall_partition(&partial.counters.stalls, &sites)
            .unwrap_or_else(|e| panic!("{app}: partial stall partition: {e}"));
        assert!(!partial.stall_sites.is_empty(), "{app}: timeout must carry the stall heatmap");
    }
}

/// Kill a suite after three experiments, persist the finished reports
/// through the JSON schema, resume them in a *fresh* `Study`, and the
/// merged suite is byte-identical to an uninterrupted serial run — both
/// with one worker thread and with four.
#[test]
fn interrupted_suite_resumes_byte_identical() {
    let seed = 42;
    let mut reference = Study::new(Scale::Test, seed);
    reference.set_threads(1);
    let golden: Vec<String> =
        reference.run_suite().reports.iter().map(Report::render_json).collect();

    for threads in [1usize, 4] {
        let mut first = Study::new(Scale::Test, seed);
        first.set_threads(threads);
        let done: Vec<Report> =
            Study::experiment_slugs()[..3].iter().map(|slug| first.run_experiment(slug)).collect();
        drop(first); // the "kill": nothing survives but the rendered reports
        let done: Vec<Report> = done
            .iter()
            .map(|r| Report::parse(&r.render_json()).expect("persisted report parses"))
            .collect();

        let mut resumed = Study::new(Scale::Test, seed);
        resumed.set_threads(threads);
        let suite = resumed.run_suite_from(done);
        assert_eq!(suite.reports.len(), 8);
        assert!(!suite.is_degraded(), "threads={threads}: resumed suite degraded");
        let rendered: Vec<String> = suite.reports.iter().map(Report::render_json).collect();
        assert_eq!(rendered, golden, "threads={threads}: resumed suite differs from serial run");
    }
}

/// A small seeded fault burst: every injected fault is classified and the
/// counter/stall-partition invariants hold whenever a run completes.
#[test]
fn seeded_fault_burst_never_breaks_invariants() {
    let config = CoreConfig::power5();
    let wl = Workload::new(App::Blast, Scale::Test, 11);
    let mut prepared = wl.prepare(Variant::Baseline, &config).expect("prepare");
    prepared.machine.set_stall_site_profiling(true);
    let pristine = prepared.machine.checkpoint();

    let clean = prepared.machine.run_timed(u64::MAX).expect("clean run");
    assert!(clean.halted);
    let counters = prepared.machine.counters();
    let watchdog = Watchdog {
        max_cycles: Some(counters.cycles * 4 + 100_000),
        max_instructions: Some(counters.instructions * 3 + 20_000),
    };
    let window = InjectionWindow {
        code_base: prepared.code_base,
        code_len: prepared.code_len,
        data_base: prepared.data_base,
        data_len: prepared.data_len,
        max_instruction: counters.instructions,
    };
    let plan = FaultPlan::generate(11, 25, &window);
    assert_eq!(plan.faults.len(), 25);

    for fault in &plan.faults {
        prepared.machine.restore(&pristine).expect("restore");
        prepared.machine.set_watchdog(watchdog);
        let pre = prepared.machine.run_timed(fault.at_instruction).expect("clean prefix");
        assert!(!matches!(pre.stop, StopReason::Watchdog(_)));
        fault.apply(&mut prepared.machine);
        match prepared.machine.run_timed(u64::MAX) {
            Err(trap) => {
                // Detected: the trap names where and when.
                assert!(trap.cycle > 0 || trap.pc > 0);
            }
            Ok(_) => {
                let c = prepared.machine.counters();
                check_invariants(&c).expect("counter invariants");
                check_stall_partition(&c.stalls, &prepared.machine.stall_sites())
                    .expect("stall partition");
            }
        }
    }
}
