//! Campaign store invariants: the content-address digest is stable
//! across field ordering (and platform — it is pure integer
//! arithmetic), journal replay after truncation at *every* byte offset
//! yields a prefix-consistent state, and every document parser rejects
//! unsupported schemas with the one uniform message.

use bioarch::campaign::{digest_fields, replay_journal, JobSpec, JobStatus, JOURNAL_SCHEMA};
use bioarch::checkpoint;
use bioarch::experiments::Hw;
use bioarch::json::Json;
use bioarch::report::Report;
use bioarch::schema::{check_schema, UnsupportedVersion};
use bioarch::telemetry::parse_metrics_report;
use bioarch::{App, Scale, Variant};
use proptest::prelude::*;

fn spec() -> JobSpec {
    JobSpec {
        app: App::Clustalw,
        variant: Variant::HandMax,
        hw: Hw::BtacFxus(4),
        scale: Scale::Test,
        seed: 42,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The digest is a pure function of the *set* of fields: hashing
    /// them in any order gives the same value.
    #[test]
    fn digest_is_field_order_independent(perm in proptest::collection::vec(any::<u64>(), 6..7)) {
        let fields = spec().canonical_fields();
        // Order the fields by the random keys — a random permutation.
        let mut shuffled: Vec<(u64, (String, String))> =
            perm.iter().copied().zip(fields.iter().cloned()).collect();
        shuffled.sort_by_key(|(k, _)| *k);
        let shuffled: Vec<(String, String)> = shuffled.into_iter().map(|(_, f)| f).collect();
        prop_assert_eq!(digest_fields(&shuffled), digest_fields(&fields));
    }
}

/// The digest is platform-stable: pure u64 arithmetic pinned by a
/// golden value. If this changes, every existing run cache is silently
/// invalidated — bump deliberately.
#[test]
fn digest_of_plain_fields_is_pinned() {
    let fields = vec![
        ("app".to_string(), "clustalw".to_string()),
        ("hw".to_string(), "stock".to_string()),
        ("seed".to_string(), "42".to_string()),
    ];
    assert_eq!(digest_fields(&fields), 0x2283_5f8f_1e79_0296);
}

/// Distinct specs get distinct digests (over a small dense grid, where
/// a collision would be a construction bug, not bad luck).
#[test]
fn digests_distinguish_the_job_grid() {
    let mut seen = std::collections::HashSet::new();
    for app in App::all() {
        for variant in [Variant::Baseline, Variant::HandMax] {
            for hw in [Hw::Stock, Hw::Btac, Hw::Fxus(4)] {
                for seed in [1u64, 2] {
                    let spec = JobSpec { app, variant, hw, scale: Scale::Test, seed };
                    assert!(seen.insert(spec.digest()), "digest collision at {}", spec.label());
                }
            }
        }
    }
}

/// A small complete journal for the truncation sweep.
fn small_journal() -> String {
    let spec = spec();
    let id = spec.id();
    let records = [
        Json::obj()
            .set("rec", Json::Str("header".into()))
            .set("schema", Json::Str(JOURNAL_SCHEMA.into()))
            .set("segment", Json::Num(0.0)),
        Json::obj()
            .set("rec", Json::Str("submitted".into()))
            .set("job", Json::Str(id.clone()))
            .set("spec", spec.to_json()),
        Json::obj()
            .set("rec", Json::Str("lease".into()))
            .set("job", Json::Str(id.clone()))
            .set("worker", Json::Num(1.0))
            .set("hb", Json::Num(100.0)),
        Json::obj()
            .set("rec", Json::Str("progress".into()))
            .set("job", Json::Str(id.clone()))
            .set("insns", Json::Num(20000.0))
            .set("hb", Json::Num(200.0)),
        Json::obj()
            .set("rec", Json::Str("retry".into()))
            .set("job", Json::Str(id.clone()))
            .set("attempt", Json::Num(1.0))
            .set("class", Json::Str("timeout".into())),
        Json::obj().set("rec", Json::Str("completed".into())).set("job", Json::Str(id)),
    ];
    let mut text = String::new();
    for r in &records {
        text.push_str(&r.render_compact());
        text.push('\n');
    }
    text
}

/// Replay after truncation at EVERY byte offset yields exactly the
/// state of the complete-line prefix: the torn line contributes
/// nothing, and nothing before it is lost.
#[test]
fn replay_is_prefix_consistent_at_every_truncation_offset() {
    let text = small_journal();
    for cut in 0..=text.len() {
        let prefix = &text[..cut];
        // The expected state: replay of the parseable record prefix. A
        // cut exactly at end-of-line-minus-newline leaves a *complete*
        // final record (only the newline was torn), which must count.
        let lines: Vec<&str> = prefix.lines().filter(|l| !l.trim().is_empty()).collect();
        let torn = lines.last().is_some_and(|l| Json::parse(l).is_err());
        let complete = if torn { &lines[..lines.len() - 1] } else { &lines[..] };
        let got = replay_journal(prefix);
        if complete.is_empty() {
            // No complete record survives: an empty journal (error) or
            // a torn lone header (empty state, flagged).
            match got {
                Err(e) => assert!(e.contains("empty journal"), "cut {cut}: {e}"),
                Ok(replay) => {
                    assert!(replay.truncated_tail, "cut {cut}");
                    assert!(replay.jobs.is_empty(), "cut {cut}");
                }
            }
            continue;
        }
        let complete = complete.join("\n");
        let want = replay_journal(&complete).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        let got = got.unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert_eq!(got.truncated_tail, torn, "cut {cut}");
        assert_eq!(got.records, want.records, "cut {cut}");
        assert_eq!(got.order, want.order, "cut {cut}");
        for (id, job) in &want.jobs {
            let g = &got.jobs[id];
            assert_eq!(g.status, job.status, "cut {cut}");
            assert_eq!(g.attempts, job.attempts, "cut {cut}");
            assert_eq!(g.insns, job.insns, "cut {cut}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property form over random cut points *and* random journaled
    /// seeds.
    #[test]
    fn replay_truncation_property(cut in any::<usize>(), seed in any::<u64>()) {
        let mut text = small_journal();
        // Vary the journal slightly: a second submitted job.
        let extra = JobSpec { seed, ..spec() };
        let sub = Json::obj()
            .set("rec", Json::Str("submitted".into()))
            .set("job", Json::Str(extra.id()))
            .set("spec", extra.to_json());
        text.push_str(&sub.render_compact());
        text.push('\n');
        let cut = cut % (text.len() + 1);
        let prefix = &text[..cut];
        let lines: Vec<&str> = prefix.lines().filter(|l| !l.trim().is_empty()).collect();
        let torn = lines.last().is_some_and(|l| Json::parse(l).is_err());
        let complete = if torn { &lines[..lines.len() - 1] } else { &lines[..] };
        if !complete.is_empty() {
            let want = replay_journal(&complete.join("\n")).unwrap();
            let got = replay_journal(prefix).unwrap();
            prop_assert_eq!(got.order, want.order);
            prop_assert_eq!(got.records, want.records);
        }
    }
}

/// The journal survives a JSON round-trip of its spec payloads.
#[test]
fn replayed_spec_matches_submitted_spec() {
    let replay = replay_journal(&small_journal()).unwrap();
    let job = &replay.jobs[&spec().id()];
    assert_eq!(job.spec, spec());
    assert_eq!(job.status, JobStatus::Completed);
    assert_eq!(job.attempts, 1);
    assert_eq!(job.insns, 20000);
}

/// Every parser family rejects a wrong schema marker with the uniform
/// [`UnsupportedVersion`] wording, and a missing marker with the
/// uniform missing-marker wording.
#[test]
fn schema_rejection_is_uniform_across_parsers() {
    let reject = |err: &str, want: &str| {
        assert!(
            err.contains("unsupported schema") && err.contains(want),
            "non-uniform schema error: {err:?}"
        );
    };
    reject(
        &checkpoint::parse(r#"{"schema":"bioarch-checkpoint/v9"}"#).unwrap_err(),
        "bioarch-checkpoint/v1",
    );
    reject(
        &checkpoint::parse_divergence(r#"{"schema":"bioarch-divergence/v9"}"#).unwrap_err(),
        "bioarch-divergence/v1",
    );
    reject(&Report::parse(r#"{"schema":"bioarch-report/v9"}"#).unwrap_err(), "bioarch-report/v1");
    reject(
        &parse_metrics_report(r#"{"schema":"bioarch-metrics/v9"}"#).unwrap_err(),
        "bioarch-metrics/v1",
    );
    reject(
        &replay_journal(r#"{"rec":"header","schema":"bioarch-journal/v9"}"#).unwrap_err(),
        "bioarch-journal/v1",
    );
    // Missing marker: same typed error, dedicated wording.
    let missing = Report::parse("{}").unwrap_err();
    assert!(missing.contains("missing schema marker"), "{missing:?}");
    // The typed error carries both sides.
    let err: UnsupportedVersion =
        check_schema(&Json::parse(r#"{"schema":"x/v2"}"#).unwrap(), "x/v1").unwrap_err();
    assert_eq!(err.found, "x/v2");
    assert_eq!(err.supported, "x/v1");
}
