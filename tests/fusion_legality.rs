//! Property tests for the fused direct-threaded functional tier
//! (DESIGN.md §16): on randomized guest programs, execution with fusion
//! enabled must be bit-identical to the scalar per-instruction path —
//! the same checkpoint at every budget cut, the same `Counters`, and
//! the same guest-profiler tables — including runs whose instruction
//! budget expires mid-block and programs that store into their own code
//! image from inside a fused region.

use power5_sim::{Checkpoint, CoreConfig, Machine};
use proptest::prelude::*;

const BASE: u32 = 0x1000;
const MEM_SIZE: usize = 1 << 20;
const DATA: u32 = 0x8_0000;

/// Scratch registers the generated body cycles through (`r1` holds the
/// data base, `r8` stages the loop count).
const REGS: [u32; 5] = [3, 4, 5, 6, 7];

fn reg(i: usize) -> u32 {
    REGS[i % REGS.len()]
}

/// One rendered body statement. Each variant deliberately forms (or
/// narrowly misses) one of the fusion idioms, so random programs mix
/// fused pairs, hammocks, and unfusible stragglers.
#[derive(Debug, Clone)]
enum Stmt {
    /// `addi rd, ra, imm`
    AddImm { rd: usize, ra: usize, imm: i16 },
    /// Three-operand ALU op (`add`/`xor`/`and`/`or`/`subf`).
    Alu { op: usize, rd: usize, ra: usize, rb: usize },
    /// `lwz rd, disp(r1)` then a dependent `add` — the load+ALU pair.
    LoadAlu { rd: usize, disp: u16 },
    /// `addi rd, rd, imm` then `stw rd, disp(r1)` — the ALU+store pair.
    AluStore { rd: usize, imm: i16, disp: u16 },
    /// `cmpwi` + conditional forward branch over one `addi` — the DP
    /// hammock (fused only while no profiler is attached).
    Hammock { rd: usize, k: i16, taken_if_gt: bool },
    /// `cmpwi` + `isel` — the cmp+select pair.
    CmpIsel { rd: usize, ra: usize, rb: usize, k: i16 },
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0usize..5, 0usize..5, -64i16..64).prop_map(|(rd, ra, imm)| Stmt::AddImm { rd, ra, imm }),
        (0usize..5, 0usize..5, 0usize..5, 0usize..5).prop_map(|(op, rd, ra, rb)| Stmt::Alu {
            op,
            rd,
            ra,
            rb
        }),
        (0usize..5, 0u16..64).prop_map(|(rd, disp)| Stmt::LoadAlu { rd, disp: disp * 4 }),
        (0usize..5, -32i16..32, 0u16..64).prop_map(|(rd, imm, disp)| Stmt::AluStore {
            rd,
            imm,
            disp: disp * 4
        }),
        (0usize..5, -8i16..8, any::<bool>()).prop_map(|(rd, k, taken_if_gt)| Stmt::Hammock {
            rd,
            k,
            taken_if_gt
        }),
        (0usize..5, 0usize..5, 0usize..5, -8i16..8).prop_map(|(rd, ra, rb, k)| Stmt::CmpIsel {
            rd,
            ra,
            rb,
            k
        }),
    ]
}

/// Render the statement list as a counted loop ending in `trap`.
fn render(stmts: &[Stmt], iters: u32) -> String {
    let mut out = String::from("entry:\n");
    for (i, r) in REGS.iter().enumerate() {
        out.push_str(&format!("    li r{r}, {}\n", (i as i32 + 1) * 3));
    }
    out.push_str(&format!("    li r8, {iters}\n    mtctr r8\nloop:\n"));
    for (i, s) in stmts.iter().enumerate() {
        match *s {
            Stmt::AddImm { rd, ra, imm } => {
                out.push_str(&format!("    addi r{}, r{}, {imm}\n", reg(rd), reg(ra)));
            }
            Stmt::Alu { op, rd, ra, rb } => {
                let mn = ["add", "xor", "and", "or", "subf"][op % 5];
                out.push_str(&format!("    {mn} r{}, r{}, r{}\n", reg(rd), reg(ra), reg(rb)));
            }
            Stmt::LoadAlu { rd, disp } => {
                out.push_str(&format!("    lwz r{}, {disp}(r1)\n", reg(rd)));
                out.push_str(&format!("    add r{}, r{}, r3\n", reg(rd), reg(rd)));
            }
            Stmt::AluStore { rd, imm, disp } => {
                out.push_str(&format!("    addi r{}, r{}, {imm}\n", reg(rd), reg(rd)));
                out.push_str(&format!("    stw r{}, {disp}(r1)\n", reg(rd)));
            }
            Stmt::Hammock { rd, k, taken_if_gt } => {
                let bc = if taken_if_gt { "bgt" } else { "ble" };
                out.push_str(&format!("    cmpwi cr0, r{}, {k}\n", reg(rd)));
                out.push_str(&format!("    {bc} cr0, skip{i}\n"));
                out.push_str(&format!("    addi r{}, r{}, 1\n", reg(rd), reg(rd)));
                out.push_str(&format!("skip{i}:\n"));
            }
            Stmt::CmpIsel { rd, ra, rb, k } => {
                out.push_str(&format!("    cmpwi cr0, r{}, {k}\n", reg(rd)));
                out.push_str(&format!(
                    "    isel r{}, r{}, r{}, 4*cr0+gt\n",
                    reg(rd),
                    reg(ra),
                    reg(rb)
                ));
            }
        }
    }
    out.push_str("    bdnz loop\n    trap\n");
    out
}

fn machine_for(asm: &str) -> Machine {
    let prog = ppc_asm::assemble(asm, BASE).expect("generated program assembles");
    let mut m = Machine::new(CoreConfig::power5(), &prog.bytes, BASE, BASE, MEM_SIZE);
    m.cpu_mut().gpr[1] = DATA;
    m
}

/// Run through a schedule of small budgets (forcing mid-block cuts),
/// checkpointing after each, then run to `trap`. Returns the checkpoint
/// trail and total executed count.
fn run_chunked(m: &mut Machine, chunks: &[u64]) -> (Vec<Checkpoint>, u64) {
    let mut trail = Vec::new();
    let mut total = 0u64;
    let mut halted = false;
    for &c in chunks {
        let r = m.run_functional(c).expect("generated program cannot trap");
        total += r.executed;
        trail.push(m.checkpoint());
        if r.halted {
            halted = true;
            break;
        }
    }
    while !halted {
        let r = m.run_functional(10_000_000).expect("generated program cannot trap");
        total += r.executed;
        halted = r.halted;
    }
    trail.push(m.checkpoint());
    (trail, total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Core legality property: for random programs under a random
    /// budget-cut schedule, the fused tier and the scalar loop retire
    /// the same instruction counts and land on bit-identical machine
    /// checkpoints at every cut, with identical `Counters`.
    #[test]
    fn fused_and_scalar_execution_are_bit_identical(
        stmts in proptest::collection::vec(stmt_strategy(), 1..10),
        iters in 1u32..60,
        chunks in proptest::collection::vec(1u64..40, 0..6),
    ) {
        let asm = render(&stmts, iters);
        let mut fused = machine_for(&asm);
        fused.set_fusion(true);
        let mut scalar = machine_for(&asm);
        scalar.set_fusion(false);
        let (tf, ts) = {
            let (cf, tf) = run_chunked(&mut fused, &chunks);
            let (cs, ts) = run_chunked(&mut scalar, &chunks);
            prop_assert_eq!(cf.len(), cs.len());
            for (i, (a, b)) in cf.iter().zip(&cs).enumerate() {
                prop_assert_eq!(a, b, "checkpoint {i} diverged");
            }
            (tf, ts)
        };
        prop_assert_eq!(tf, ts);
        prop_assert_eq!(fused.counters(), scalar.counters());
        let stats = fused.fusion_stats();
        prop_assert!(stats.fused_blocks + stats.scalar_blocks > 0);
        prop_assert_eq!(scalar.fusion_stats().fused_insns, 0);
    }

    /// The guest profiler must see the exact same retired-block stream
    /// (same block pcs, same lengths) whether or not fusion is on —
    /// hot-region tables and histograms compare equal. Attaching the
    /// profiler also disables hammock fusion, so this exercises the
    /// pairs-only compile path.
    #[test]
    fn profiler_tables_are_identical_under_fusion(
        stmts in proptest::collection::vec(stmt_strategy(), 1..8),
        iters in 1u32..40,
        period in 1u64..64,
    ) {
        let asm = render(&stmts, iters);
        let mut fused = machine_for(&asm);
        fused.set_fusion(true);
        fused.set_sampling_profiler(period);
        let mut scalar = machine_for(&asm);
        scalar.set_fusion(false);
        scalar.set_sampling_profiler(period);
        run_chunked(&mut fused, &[]);
        run_chunked(&mut scalar, &[]);
        let pf = fused.take_profiler().expect("profiler attached").report(None);
        let ps = scalar.take_profiler().expect("profiler attached").report(None);
        prop_assert_eq!(pf, ps);
    }

    /// Restoring a mid-run checkpoint into a fresh machine (whose fused
    /// cache starts cold) and continuing must converge to the same final
    /// state as the original machine — `restore` resets the fused cache
    /// against the incoming code image.
    #[test]
    fn restore_into_fused_machine_resumes_exactly(
        stmts in proptest::collection::vec(stmt_strategy(), 1..8),
        iters in 2u32..40,
        warmup in 1u64..200,
    ) {
        let asm = render(&stmts, iters);
        let mut original = machine_for(&asm);
        original.run_functional(warmup).expect("generated program cannot trap");
        let ck = original.checkpoint();
        let mut resumed = machine_for(&asm);
        resumed.restore(&ck).expect("checkpoint restores");
        let (co, _) = run_chunked(&mut original, &[]);
        let (cr, _) = run_chunked(&mut resumed, &[]);
        prop_assert_eq!(co.last(), cr.last());
    }

    /// Self-modifying code inside a fused region: a fused ALU+store pair
    /// overwrites one of the `addi` slots *behind* it in the same basic
    /// block. The fused tier must cut at the store, repair the decode
    /// table, and recompile — finishing with the same architectural
    /// state as the scalar path and the patched instruction's effect.
    #[test]
    fn smc_repair_inside_a_fused_block_matches_scalar(
        slot in 0usize..4,
        k in 1i16..100,
    ) {
        // Encode `addi r3, r3, k` exactly as the machine's memory will
        // read it back (round-trip through a scratch machine so the
        // byte order is the simulator's own).
        let patch = ppc_asm::assemble(&format!("addi r3, r3, {k}"), BASE).expect("assembles");
        let word = {
            let scratch = Machine::new(CoreConfig::power5(), &patch.bytes, BASE, BASE, MEM_SIZE);
            scratch.mem().load_u32(BASE).expect("code readable")
        };
        let hi = (word >> 16) as i16;
        let lo = word & 0xFFFF;
        let src = format!(
            "entry:\n\
             \x20   li r3, 0\n\
             \x20   lis r10, {hi}\n\
             \x20   ori r10, r10, {lo}\n\
             \x20   li r9, TARGET\n\
             \x20   addi r10, r10, 0\n\
             \x20   stw r10, 0(r9)\n\
             p0: addi r3, r3, 1\n\
             p1: addi r3, r3, 2\n\
             p2: addi r3, r3, 3\n\
             p3: addi r3, r3, 4\n\
             \x20   trap\n"
        );
        // Resolve the patch slot's address from the labels, then splice
        // it in as the immediate (two-pass: assemble once for symbols).
        let probe = ppc_asm::assemble(&src.replace("TARGET", "0"), BASE).expect("assembles");
        let target = probe.symbols[&format!("p{slot}")];
        let src = src.replace("TARGET", &target.to_string());
        let mut fused = machine_for(&src);
        fused.set_fusion(true);
        let mut scalar = machine_for(&src);
        scalar.set_fusion(false);
        let (cf, tf) = run_chunked(&mut fused, &[]);
        let (cs, ts) = run_chunked(&mut scalar, &[]);
        prop_assert_eq!(tf, ts);
        prop_assert_eq!(cf.last(), cs.last());
        let mut expected = 0i32;
        for i in 0..4usize {
            expected += if i == slot { i32::from(k) } else { i as i32 + 1 };
        }
        prop_assert_eq!(fused.cpu().gpr[3] as i32, expected);
    }
}
