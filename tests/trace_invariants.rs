//! Invariants of the pipeline event trace layer.
//!
//! * every committed instruction emits exactly one commit event, in
//!   sequence order;
//! * each traced instruction's cycle stamps are monotonic through the
//!   pipeline stages (fetch ≤ dispatch ≤ issue ≤ execute ≤ commit);
//! * with per-PC stall attribution on, the aggregate
//!   `StallBreakdown::total()` equals the sum of per-PC attributed
//!   stalls — nothing is double-counted or dropped;
//! * a JSONL trace replays offline to the same committed-instruction
//!   count and total stall cycles the simulator counted.

use power5_sim::machine::Machine;
use power5_sim::trace::{replay_jsonl, JsonlSink, RingSink};
use power5_sim::{CoreConfig, Tracer};
use std::cell::RefCell;
use std::io::{self, BufReader, Write};
use std::rc::Rc;

/// A branchy, loady kernel: data-dependent branches force mispredicts,
/// loads exercise the LSU, the inner loop exercises taken-branch bubbles.
const PROGRAM: &str = "
__start:
    li r3, 0          # sum
    li r4, 0          # i
    li r5, 200        # n
    li r9, 0x4000     # table base
outer:
    mullw r6, r4, r4
    andi. r7, r6, 7
    cmpwi cr0, r7, 3
    ble cr0, skip
    addi r3, r3, 5
skip:
    slwi r8, r7, 2
    add r8, r8, r9
    lwz r10, 0(r8)
    add r3, r3, r10
    stw r3, 32(r9)
    addi r4, r4, 1
    cmpw cr0, r4, r5
    blt cr0, outer
    trap
";

fn machine_with(tracer: Tracer) -> Machine {
    let prog = ppc_asm::assemble(PROGRAM, 0x1000).expect("assembles");
    let mut m = Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 0x80000);
    m.set_tracer(tracer);
    m
}

#[test]
fn every_committed_instruction_traces_exactly_once_with_monotonic_stamps() {
    let mut m = machine_with(Tracer::Ring(RingSink::new(1 << 20)));
    let result = m.run_timed(u64::MAX).expect("runs");
    assert!(result.halted);
    let committed = m.counters().instructions;
    let tracer = m.take_tracer();
    let ring = tracer.ring().expect("ring sink");
    // One record per committed instruction — no duplicates, no drops.
    assert_eq!(ring.total_seen(), committed);
    assert_eq!(ring.len() as u64, committed, "capacity exceeds run length");
    for (i, t) in ring.entries().enumerate() {
        assert_eq!(t.seq, i as u64 + 1, "commit events out of order");
        assert!(t.stamps_monotonic(), "stamps regress at seq {}: {t:?}", t.seq);
    }
}

#[test]
fn ring_keeps_only_the_last_n() {
    let mut m = machine_with(Tracer::Ring(RingSink::new(16)));
    m.run_timed(u64::MAX).expect("runs");
    let committed = m.counters().instructions;
    let tracer = m.take_tracer();
    let ring = tracer.ring().expect("ring sink");
    assert_eq!(ring.total_seen(), committed);
    assert_eq!(ring.len(), 16);
    let first = ring.entries().next().expect("non-empty").seq;
    assert_eq!(first, committed - 15, "ring must hold the final window");
}

#[test]
fn aggregate_stalls_equal_sum_of_per_pc_attribution() {
    let mut m = machine_with(Tracer::Off);
    m.set_stall_site_profiling(true);
    m.run_timed(u64::MAX).expect("runs");
    let aggregate = m.counters().stalls.total();
    let attributed: u64 = m.stall_sites().iter().map(|(_, b)| b.total()).sum();
    assert!(aggregate > 0, "kernel must stall somewhere");
    assert_eq!(aggregate, attributed, "per-PC attribution must partition the CPI stack");
}

/// `Write` adapter sharing a buffer with the test body, since the JSONL
/// sink owns its writer.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_trace_replays_to_the_same_counts() {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()) as Box<dyn Write>);
    let mut m = machine_with(Tracer::Jsonl(sink));
    m.run_timed(u64::MAX).expect("runs");
    m.take_tracer().finish().expect("flush");
    let bytes = buf.0.borrow().clone();
    assert!(!bytes.is_empty());
    let replay = replay_jsonl(BufReader::new(&bytes[..])).expect("replays");
    assert_eq!(replay.instructions, m.counters().instructions);
    assert_eq!(replay.stall_cycles, m.counters().stalls.total());
    assert_eq!(replay.final_commit, m.counters().cycles);
}

#[test]
fn corrupted_trace_is_rejected() {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()) as Box<dyn Write>);
    let mut m = machine_with(Tracer::Jsonl(sink));
    m.run_timed(u64::MAX).expect("runs");
    m.take_tracer().finish().expect("flush");
    let text = String::from_utf8(buf.0.borrow().clone()).expect("utf-8");
    // Drop a line from the middle: the seq gap must be detected.
    let truncated: Vec<&str> =
        text.lines().enumerate().filter(|(i, _)| *i != 100).map(|(_, l)| l).collect();
    let mangled = truncated.join("\n");
    assert!(replay_jsonl(BufReader::new(mangled.as_bytes())).is_err());
}
